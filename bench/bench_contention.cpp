// Cross-slot bandwidth contention: private ports vs one shared master.
//
// PR 3 showed processor-partitioning fair share collapsing under
// quadratic jobs because platform slices pay the w·X^alpha cost
// superlinearly. That experiment still granted every concurrent slot a
// PRIVATE master port (per-slot engine runs). This bench re-runs the
// comparison with the master's bounded-multiport capacity genuinely
// shared across slots (online::MasterMode::kSharedMaster: one engine run
// per busy period multiplexing time-released chunks), crossing
//
//   traffic class  pure linear (alpha = 1) vs pure quadratic (alpha = 2),
//   scheduler      FCFS-exclusive, fair share, SPMF,
//   master mode    private-port vs shared-master,
//
// at a fixed load factor under one capped master. Each traffic class is
// ONE pre-generated Poisson stream replayed pathwise through every
// (scheduler, master) cell, so per-cell deltas are same-stream
// comparisons. Exclusive schedulers (FCFS, SPMF) are bit-identical
// across master modes — single-job busy periods cannot contend — which
// doubles as a runtime sanity check; fair share's quadratic collapse
// gets measurably worse once its slots stop enjoying private ports: no
// free lunch, again. Results stream to BENCH_contention.json under the
// bench::Harness serial-vs-parallel bitwise self-check.
//
// --trace=FILE re-runs the headline cell (quadratic traffic, fair share,
// shared master) with an obs::TraceRecorder attached, proves the traced
// metrics bit-identical to the sweep's own cell (part of the exit code),
// exports the timeline as Chrome trace-event JSON to FILE, and prints
// the ASCII time-attribution summary.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <vector>

#include "bench/harness.hpp"
#include "obs/critical_path.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "online/arrivals.hpp"
#include "online/metrics.hpp"
#include "online/scheduler.hpp"
#include "online/server.hpp"
#include "platform/platform.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/sweep.hpp"
#include "util/table.hpp"

using namespace nldl;

namespace {

const std::vector<double> kAlphas{1.0, 2.0};
const std::vector<online::SchedulerKind> kSchedulers{
    online::SchedulerKind::kFcfs, online::SchedulerKind::kFairShare,
    online::SchedulerKind::kSpmf};
const std::vector<online::MasterMode> kMasterModes{
    online::MasterMode::kPrivatePort, online::MasterMode::kSharedMaster};

constexpr std::size_t kFairShareSlots = 4;
constexpr double kBoundedCapacity = 2.0;
constexpr double kLoadFactor = 0.7;

online::JobMix job_mix(double alpha) {
  online::JobMix mix;
  mix.load_lo = 50.0;
  mix.load_hi = 150.0;
  mix.alphas = {alpha};
  mix.alpha_weights = {1.0};
  return mix;
}

struct PointResult {
  std::size_t alpha = 0;
  std::size_t scheduler = 0;
  std::size_t master = 0;
  std::size_t jobs = 0;
  online::ServiceMetrics metrics;
};

struct ContentionResults {
  std::vector<PointResult> points;

  [[nodiscard]] std::vector<double> signature() const {
    std::vector<double> sig;
    for (const PointResult& point : points) {
      sig.push_back(static_cast<double>(point.alpha));
      sig.push_back(static_cast<double>(point.scheduler));
      sig.push_back(static_cast<double>(point.master));
      sig.push_back(static_cast<double>(point.jobs));
      const auto metrics = point.metrics.signature();
      sig.insert(sig.end(), metrics.begin(), metrics.end());
    }
    return sig;
  }
};

ContentionResults compute_all(std::size_t threads,
                              const platform::Platform& plat,
                              double jobs_target, std::uint64_t seed) {
  // One pre-generated stream per traffic class, replayed pathwise
  // through every (scheduler, master) cell: the load factor maps to an
  // arrival rate against the class's own exclusive-service capacity, so
  // "load 0.7" stresses the linear and quadratic cells equally.
  std::vector<std::vector<online::Job>> streams;
  for (const double alpha : kAlphas) {
    const double t_ref =
        online::mean_predicted_makespan(job_mix(alpha), plat);
    const double rate = kLoadFactor / t_ref;
    const double horizon = jobs_target / rate;
    util::Rng rng(seed + streams.size());
    streams.push_back(online::PoissonArrivals(rate, job_mix(alpha))
                          .generate(horizon, rng));
  }

  util::Grid grid;
  grid.axis("alpha", kAlphas.size())
      .axis("sched", kSchedulers.size())
      .axis("master", kMasterModes.size());
  util::SweepOptions options;
  options.threads = threads;
  options.seed = seed;

  ContentionResults results;
  results.points =
      util::Sweep(std::move(grid), options)
          .map<PointResult>([&](const util::SweepPoint& point, util::Rng&) {
            PointResult result;
            result.alpha = point.index_of("alpha");
            result.scheduler = point.index_of("sched");
            result.master = point.index_of("master");

            const std::vector<online::Job>& jobs = streams[result.alpha];
            result.jobs = jobs.size();

            online::ServerOptions server_options;
            server_options.comm = sim::CommModelKind::kBoundedMultiport;
            server_options.capacity = kBoundedCapacity;
            server_options.master = kMasterModes[result.master];
            const online::Server server(plat, server_options);
            const auto scheduler = online::make_scheduler(
                kSchedulers[result.scheduler], kFairShareSlots,
                server_options.comm);
            result.metrics = online::summarize(
                server.run(jobs, *scheduler), plat.size());
            return result;
          });
  return results;
}

void print_table(const ContentionResults& results) {
  util::Table table({"alpha", "scheduler", "master", "jobs", "util",
                     "p50 lat", "p95 lat", "p99 lat", "mean slowdown",
                     "p99 slowdown"});
  for (const PointResult& point : results.points) {
    table.row()
        .cell(kAlphas[point.alpha], 0)
        .cell(online::to_string(kSchedulers[point.scheduler]))
        .cell(online::to_string(kMasterModes[point.master]))
        .cell(point.jobs)
        .cell(point.metrics.utilization, 3)
        .cell(point.metrics.p50_latency, 1)
        .cell(point.metrics.p95_latency, 1)
        .cell(point.metrics.p99_latency, 1)
        .cell(point.metrics.mean_slowdown, 3)
        .cell(point.metrics.p99_slowdown, 3)
        .done();
  }
  table.print(std::cout);
}

/// Mean slowdown of a (alpha, scheduler, master) cell.
double cell_slowdown(const ContentionResults& results, std::size_t alpha,
                     online::SchedulerKind scheduler,
                     online::MasterMode master) {
  for (const PointResult& point : results.points) {
    if (point.alpha == alpha &&  // nldl-lint: allow(double-eq): exact grid-point lookup; values copied verbatim
        kSchedulers[point.scheduler] == scheduler &&
        kMasterModes[point.master] == master) {
      return point.metrics.mean_slowdown;
    }
  }
  return 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const double jobs_target = args.get_double("jobs", 120.0);
  const auto p = static_cast<std::size_t>(args.get_int("p", 8));
  const auto seed = static_cast<std::uint64_t>(
      args.get_int("seed", static_cast<long long>(util::Rng::kDefaultSeed)));

  const platform::Platform plat =
      platform::Platform::two_class(p, 1.0, 4.0);

  bench::Harness harness("contention",
                         bench::harness_options_from_args(args));
  harness.config("jobs_target", jobs_target);
  harness.config("p", p);
  harness.config("platform", "two_class(slow=1, k=4)");
  harness.config("fair_share_slots", kFairShareSlots);
  harness.config("bounded_capacity", kBoundedCapacity);
  harness.config("load_factor", kLoadFactor);
  harness.config("seed", static_cast<std::int64_t>(seed));

  const ContentionResults results = harness.run<ContentionResults>(
      [&](std::size_t threads) {
        return compute_all(threads, plat, jobs_target, seed);
      },
      [](const ContentionResults& a, const ContentionResults& b) {
        return bench::identical_doubles(a.signature(), b.signature());
      });

  std::printf("=== Cross-slot contention: private ports vs one shared "
              "master (load %.1f, capped master) ===\n\n",
              kLoadFactor);
  print_table(results);

  using online::MasterMode;
  using online::SchedulerKind;
  const double linear_private = cell_slowdown(
      results, 0, SchedulerKind::kFairShare, MasterMode::kPrivatePort);
  const double linear_shared = cell_slowdown(
      results, 0, SchedulerKind::kFairShare, MasterMode::kSharedMaster);
  const double quad_private = cell_slowdown(
      results, 1, SchedulerKind::kFairShare, MasterMode::kPrivatePort);
  const double quad_shared = cell_slowdown(
      results, 1, SchedulerKind::kFairShare, MasterMode::kSharedMaster);
  std::printf("\nfair-share mean slowdown, private -> shared master:\n");
  std::printf("  linear    (alpha=1): %.3f -> %.3f (x%.3f)\n",
              linear_private, linear_shared,
              linear_private > 0.0 ? linear_shared / linear_private : 0.0);
  std::printf("  quadratic (alpha=2): %.3f -> %.3f (x%.3f)\n",
              quad_private, quad_shared,
              quad_private > 0.0 ? quad_shared / quad_private : 0.0);
  std::printf("(exclusive schedulers are bit-identical across master "
              "modes: single-job busy periods cannot contend)\n");

  // --trace=FILE: re-run the headline cell (quadratic, fair share,
  // shared master) with a recorder attached, prove it bit-identical to
  // the sweep's own point, and export the Perfetto-loadable timeline.
  bool trace_identical = true;
  const std::string trace_path = args.get_string("trace", "");
  const std::string metrics_path = args.get_string("metrics", "");
  const bool blame = args.get_bool("blame", false);
  if (!trace_path.empty() || !metrics_path.empty() || blame) {
    const std::size_t alpha_index = 1;      // quadratic
    const std::size_t scheduler_index = 1;  // fair share
    const std::size_t master_index = 1;     // shared master

    // Regenerate the quadratic stream exactly as compute_all does.
    const double t_ref = online::mean_predicted_makespan(
        job_mix(kAlphas[alpha_index]), plat);
    const double rate = kLoadFactor / t_ref;
    util::Rng stream_rng(seed + alpha_index);
    const std::vector<online::Job> jobs =
        online::PoissonArrivals(rate, job_mix(kAlphas[alpha_index]))
            .generate(jobs_target / rate, stream_rng);

    obs::TraceRecorder recorder;
    obs::MetricsRegistry registry;
    online::ServerOptions server_options;
    server_options.comm = sim::CommModelKind::kBoundedMultiport;
    server_options.capacity = kBoundedCapacity;
    server_options.master = kMasterModes[master_index];
    server_options.trace = &recorder;
    const online::Server server(plat, server_options);
    const auto scheduler = online::make_scheduler(
        kSchedulers[scheduler_index], kFairShareSlots, server_options.comm);
    const online::ServiceMetrics traced = online::summarize(
        server.run(jobs, *scheduler, &registry), plat.size());

    for (const PointResult& point : results.points) {
      if (point.alpha == alpha_index &&  // nldl-lint: allow(double-eq): exact grid-point lookup; values copied verbatim
          point.scheduler == scheduler_index &&
          point.master == master_index) {
        trace_identical = bench::identical_doubles(
            traced.signature(), point.metrics.signature());
      }
    }
    std::printf("\ntraced quadratic fair-share shared-master: %zu jobs, "
                "%zu events | vs sweep cell: %s\n",
                jobs.size(), recorder.size(),
                trace_identical ? "bit-identical"
                                : "DIFFER (tracing changed results!)");

    // The blame decomposition must close bit-exactly on every job; the
    // check rides the exit code like the sweep-cell identity above.
    const obs::CriticalPath analysis(recorder.events());
    for (const obs::JobBlame& job : analysis.jobs()) {
      if (job.total() != job.latency) {
        std::fprintf(stderr, "blame components do not sum to latency "
                             "for job %zu\n", job.job);
        trace_identical = false;
      }
    }
    if (blame) {
      std::fputs(obs::render_blame(analysis, 10,
                                   "contention fair-share shared-master "
                                   "alpha=2")
                     .c_str(),
                 stdout);
    }

    if (!trace_path.empty()) {
      std::ofstream out(trace_path);
      obs::ChromeTraceOptions trace_options;
      trace_options.workers = p;
      trace_options.label = "contention fair-share shared-master alpha=2";
      trace_options.critical_path = &analysis;
      obs::write_chrome_trace(out, recorder.events(), trace_options);
      out.flush();
      if (out) {
        std::printf("trace written to %s (%zu events)\n", trace_path.c_str(),
                    recorder.size());
      } else {
        std::fprintf(stderr, "warning: could not write %s\n",
                     trace_path.c_str());
        trace_identical = false;
      }
    }
    if (!metrics_path.empty()) {
      std::ofstream out(metrics_path);
      util::JsonWriter json(out);
      registry.write_json(json);
      const bool complete = json.complete();
      out << '\n';
      out.flush();
      if (out && complete) {
        std::printf("metrics written to %s (%zu entries)\n",
                    metrics_path.c_str(), registry.size());
      } else {
        std::fprintf(stderr, "warning: could not write %s\n",
                     metrics_path.c_str());
        trace_identical = false;
      }
    }
    std::fputs(obs::render_attribution(
                   obs::attribute_time(recorder.events(), p),
                   "contention fair-share shared-master alpha=2")
                   .c_str(),
               stdout);
  }

  const int harness_code = harness.finish([&](util::JsonWriter& json) {
    for (const PointResult& point : results.points) {
      json.begin_object();
      json.key("alpha").value(kAlphas[point.alpha]);
      json.key("scheduler")
          .value(online::to_string(kSchedulers[point.scheduler]));
      json.key("master")
          .value(online::to_string(kMasterModes[point.master]));
      json.key("jobs").value(point.jobs);
      online::write_service_metrics(json, point.metrics);
      json.end_object();
    }
  });
  return trace_identical ? harness_code : 1;
}
