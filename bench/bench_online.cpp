// Online multi-job scheduling: load factor × scheduler × comm model.
//
// An open system of divisible-load jobs (Poisson arrivals, a mixed stream
// of linear alpha = 1 and quadratic alpha = 2 jobs) served by one
// heterogeneous star platform through online::Server. The sweep crosses
//
//   load factor   0.3 / 0.6 / 0.9 of the exclusive-service capacity,
//   scheduler     FCFS-exclusive, processor-partitioning fair share,
//                 shortest-predicted-makespan first (SPMF),
//   comm model    parallel-links, one-port, bounded-multiport,
//
// and reports per-job latency/slowdown percentiles (streaming P²
// estimators), throughput, and utilization. Every point draws its job
// stream from its own pre-split RNG sub-stream, so the whole bench is a
// util::Sweep under bench::Harness: serial and parallel passes must agree
// bit for bit, and the metrics land in BENCH_online.json.
//
// --trace=FILE runs one extra high-load fair-share bounded-multiport
// cell twice on a fresh deterministic stream — once bare, once with an
// obs::TraceRecorder attached — proves the two runs bit-identical (part
// of the exit code), exports the traced timeline as Chrome trace-event
// JSON to FILE, and prints the ASCII time-attribution summary.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <vector>

#include "bench/harness.hpp"
#include "obs/critical_path.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "online/arrivals.hpp"
#include "online/metrics.hpp"
#include "online/scheduler.hpp"
#include "online/server.hpp"
#include "platform/platform.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/sweep.hpp"
#include "util/table.hpp"

using namespace nldl;

namespace {

const std::vector<double> kLoadFactors{0.3, 0.6, 0.9};
const std::vector<online::SchedulerKind> kSchedulers{
    online::SchedulerKind::kFcfs, online::SchedulerKind::kFairShare,
    online::SchedulerKind::kSpmf};
const std::vector<sim::CommModelKind> kCommModels{
    sim::CommModelKind::kParallelLinks, sim::CommModelKind::kOnePort,
    sim::CommModelKind::kBoundedMultiport};

constexpr std::size_t kFairShareSlots = 4;
constexpr double kBoundedCapacity = 2.0;

online::JobMix job_mix() {
  online::JobMix mix;
  mix.load_lo = 50.0;
  mix.load_hi = 150.0;
  mix.alphas = {1.0, 2.0};
  mix.alpha_weights = {0.5, 0.5};
  return mix;
}

struct PointResult {
  double load_factor = 0.0;
  std::size_t scheduler = 0;
  std::size_t comm = 0;
  std::size_t jobs = 0;
  online::ServiceMetrics metrics;
};

struct OnlineResults {
  std::vector<PointResult> points;

  [[nodiscard]] std::vector<double> signature() const {
    std::vector<double> sig;
    for (const PointResult& point : points) {
      sig.push_back(point.load_factor);
      sig.push_back(static_cast<double>(point.scheduler));
      sig.push_back(static_cast<double>(point.comm));
      sig.push_back(static_cast<double>(point.jobs));
      const auto metrics = point.metrics.signature();
      sig.insert(sig.end(), metrics.begin(), metrics.end());
    }
    return sig;
  }
};

OnlineResults compute_all(std::size_t threads, const platform::Platform& plat,
                          double jobs_target, std::uint64_t seed) {
  // Exclusive-service capacity reference: a load factor L maps to
  // arrival rate L / T_ref. The parallel-links reference is used for
  // every comm cell so a given load factor means the same arrival stream
  // across the comm axis.
  const double t_ref = online::mean_predicted_makespan(job_mix(), plat);

  util::Grid grid;
  grid.axis("load", kLoadFactors)
      .axis("sched", kSchedulers.size())
      .axis("comm", kCommModels.size());
  util::SweepOptions options;
  options.threads = threads;
  options.seed = seed;

  OnlineResults results;
  results.points =
      util::Sweep(std::move(grid), options)
          .map<PointResult>([&](const util::SweepPoint& point,
                                util::Rng& rng) {
            PointResult result;
            result.load_factor = point.value("load");
            result.scheduler = point.index_of("sched");
            result.comm = point.index_of("comm");

            const double rate = result.load_factor / t_ref;
            const double horizon = jobs_target / rate;
            const online::PoissonArrivals arrivals(rate, job_mix());
            const auto jobs = arrivals.generate(horizon, rng);
            result.jobs = jobs.size();

            online::ServerOptions server_options;
            server_options.comm = kCommModels[result.comm];
            if (server_options.comm ==
                sim::CommModelKind::kBoundedMultiport) {
              server_options.capacity = kBoundedCapacity;
            }
            const online::Server server(plat, server_options);
            const auto scheduler = online::make_scheduler(
                kSchedulers[result.scheduler], kFairShareSlots,
                server_options.comm);
            result.metrics =
                online::summarize(server.run(jobs, *scheduler),
                                  plat.size());
            return result;
          });
  return results;
}

void print_table(const OnlineResults& results) {
  util::Table table({"load", "scheduler", "comm", "jobs", "util",
                     "p50 lat", "p95 lat", "p99 lat", "mean slowdown",
                     "p99 slowdown"});
  for (const PointResult& point : results.points) {
    table.row()
        .cell(point.load_factor, 1)
        .cell(online::to_string(kSchedulers[point.scheduler]))
        .cell(sim::to_string(kCommModels[point.comm]))
        .cell(point.jobs)
        .cell(point.metrics.utilization, 3)
        .cell(point.metrics.p50_latency, 1)
        .cell(point.metrics.p95_latency, 1)
        .cell(point.metrics.p99_latency, 1)
        .cell(point.metrics.mean_slowdown, 3)
        .cell(point.metrics.p99_slowdown, 3)
        .done();
  }
  table.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const double jobs_target = args.get_double("jobs", 150.0);
  const auto p = static_cast<std::size_t>(args.get_int("p", 8));
  const auto seed = static_cast<std::uint64_t>(
      args.get_int("seed", static_cast<long long>(util::Rng::kDefaultSeed)));

  const platform::Platform plat =
      platform::Platform::two_class(p, 1.0, 4.0);

  bench::Harness harness("online", bench::harness_options_from_args(args));
  harness.config("jobs_target", jobs_target);
  harness.config("p", p);
  harness.config("platform", "two_class(slow=1, k=4)");
  harness.config("fair_share_slots", kFairShareSlots);
  harness.config("bounded_capacity", kBoundedCapacity);
  harness.config("seed", static_cast<std::int64_t>(seed));

  const OnlineResults results = harness.run<OnlineResults>(
      [&](std::size_t threads) {
        return compute_all(threads, plat, jobs_target, seed);
      },
      [](const OnlineResults& a, const OnlineResults& b) {
        return bench::identical_doubles(a.signature(), b.signature());
      });

  std::printf("=== Online multi-job service: load x scheduler x comm "
              "(Poisson arrivals, mixed alpha in {1, 2}) ===\n\n");
  print_table(results);
  std::printf("\n(slowdown = latency / isolated whole-platform makespan; "
              "SPMF ranks by predicted nonlinear makespan, not size)\n");

  // --trace=FILE: one extra high-load fair-share bounded-multiport cell,
  // run untraced then traced on the same fresh stream; the pair must be
  // bit-identical, and the traced timeline is exported. --blame adds the
  // critical-path blame table (and the pid-4 path overlay in the trace);
  // --metrics=FILE dumps the cell's MetricsRegistry as JSON. Either flag
  // runs the cell even without --trace.
  bool trace_identical = true;
  const std::string trace_path = args.get_string("trace", "");
  const std::string metrics_path = args.get_string("metrics", "");
  const bool blame = args.get_bool("blame", false);
  if (!trace_path.empty() || !metrics_path.empty() || blame) {
    const double load = kLoadFactors.back();
    const double rate = load / online::mean_predicted_makespan(job_mix(),
                                                               plat);
    util::Rng stream_rng(seed ^ 0x7472616365ULL);  // independent stream
    const std::vector<online::Job> jobs =
        online::PoissonArrivals(rate, job_mix())
            .generate(jobs_target / rate, stream_rng);

    online::ServerOptions server_options;
    server_options.comm = sim::CommModelKind::kBoundedMultiport;
    server_options.capacity = kBoundedCapacity;
    const auto run_cell = [&](obs::TraceSink* trace,
                              obs::MetricsRegistry* metrics) {
      online::ServerOptions cell_options = server_options;
      cell_options.trace = trace;
      const online::Server server(plat, cell_options);
      const auto scheduler = online::make_scheduler(
          online::SchedulerKind::kFairShare, kFairShareSlots,
          cell_options.comm);
      return online::summarize(server.run(jobs, *scheduler, metrics),
                               plat.size());
    };
    obs::TraceRecorder recorder;
    obs::MetricsRegistry registry;
    const online::ServiceMetrics bare = run_cell(nullptr, nullptr);
    const online::ServiceMetrics traced = run_cell(&recorder, &registry);
    trace_identical =
        bench::identical_doubles(bare.signature(), traced.signature());
    std::printf("\ntraced load=%.1f fair-share bounded: %zu jobs, "
                "%zu events | vs untraced: %s\n",
                load, jobs.size(), recorder.size(),
                trace_identical ? "bit-identical"
                                : "DIFFER (tracing changed results!)");

    // The blame decomposition must close bit-exactly on every job; the
    // check rides the exit code like the on/off identity above.
    const obs::CriticalPath analysis(recorder.events());
    for (const obs::JobBlame& job : analysis.jobs()) {
      if (job.total() != job.latency) {
        std::fprintf(stderr, "blame components do not sum to latency "
                             "for job %zu\n", job.job);
        trace_identical = false;
      }
    }
    if (blame) {
      std::fputs(obs::render_blame(analysis, 10, "online fair-share bounded")
                     .c_str(),
                 stdout);
    }

    if (!trace_path.empty()) {
      std::ofstream out(trace_path);
      obs::ChromeTraceOptions trace_options;
      trace_options.workers = p;
      trace_options.label = "online fair-share bounded";
      trace_options.critical_path = &analysis;
      obs::write_chrome_trace(out, recorder.events(), trace_options);
      out.flush();
      if (out) {
        std::printf("trace written to %s (%zu events)\n", trace_path.c_str(),
                    recorder.size());
      } else {
        std::fprintf(stderr, "warning: could not write %s\n",
                     trace_path.c_str());
        trace_identical = false;
      }
    }
    if (!metrics_path.empty()) {
      std::ofstream out(metrics_path);
      util::JsonWriter json(out);
      registry.write_json(json);
      const bool complete = json.complete();
      out << '\n';
      out.flush();
      if (out && complete) {
        std::printf("metrics written to %s (%zu entries)\n",
                    metrics_path.c_str(), registry.size());
      } else {
        std::fprintf(stderr, "warning: could not write %s\n",
                     metrics_path.c_str());
        trace_identical = false;
      }
    }
    std::fputs(obs::render_attribution(
                   obs::attribute_time(recorder.events(), p),
                   "online fair-share bounded")
                   .c_str(),
               stdout);
  }

  const int harness_code = harness.finish([&](util::JsonWriter& json) {
    for (const PointResult& point : results.points) {
      json.begin_object();
      json.key("load_factor").value(point.load_factor);
      json.key("scheduler")
          .value(online::to_string(kSchedulers[point.scheduler]));
      json.key("comm").value(sim::to_string(kCommModels[point.comm]));
      json.key("jobs").value(point.jobs);
      online::write_service_metrics(json, point.metrics);
      json.end_object();
    }
  });
  return trace_identical ? harness_code : 1;
}
