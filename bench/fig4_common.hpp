// Shared driver for the Figure 4 reproductions (bench_fig4{a,b,c}),
// running the trial sweep through bench::Harness (which in turn drives
// core::run_fig4's util::Sweep at serial and parallel widths and
// self-checks bit-identity).
#pragma once

#include <cstdio>
#include <iostream>

#include "bench/harness.hpp"
#include "core/experiments.hpp"
#include "util/chart.hpp"
#include "util/cli.hpp"

namespace nldl::bench {

/// Bitwise comparison of two sweeps: the parallel runner must reproduce
/// the serial run exactly (same sub-streams, same reduction order).
inline bool fig4_rows_identical(const std::vector<core::Fig4Row>& a,
                                const std::vector<core::Fig4Row>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto same = [](const util::RunningStats& x,
                         const util::RunningStats& y) {
      return x.count() == y.count() && x.mean() == y.mean() &&
             x.variance() == y.variance();
    };
    if (a[i].p != b[i].p || !same(a[i].het, b[i].het) ||
        !same(a[i].hom, b[i].hom) || !same(a[i].hom_k, b[i].hom_k) ||
        !same(a[i].k_used, b[i].k_used) ||
        !same(a[i].hom_imbalance, b[i].hom_imbalance) ||
        a[i].hom_imbalance_dropped != b[i].hom_imbalance_dropped ||
        a[i].hom_idle_trials != b[i].hom_idle_trials) {
      return false;
    }
  }
  return true;
}

/// Run one Figure 4 panel: print the paper-style table, then record the
/// serial-vs-parallel runner comparison to BENCH_fig4<panel>.json.
///
/// Flags: --trials=N (default 100), --seed=S, --csv=path, --target=e
/// (imbalance target for Comm_hom/k, default 0.01 = the paper's 1 %),
/// plus the shared harness flags --threads=T (0 = hardware, default),
/// --reps=R, --warmup=W, --json=path (default BENCH_fig4<panel>.json).
inline int run_fig4_panel(const char* figure, const char* panel,
                          platform::SpeedModel model,
                          const char* expectation, int argc, char** argv) {
  const util::Args args(argc, argv);
  core::Fig4Config config;
  config.model = model;
  config.trials = static_cast<std::size_t>(args.get_int("trials", 100));
  config.seed = static_cast<std::uint64_t>(
      args.get_int("seed", static_cast<long long>(util::Rng::kDefaultSeed)));
  config.strategy_options.imbalance_target = args.get_double("target", 0.01);

  Harness harness(std::string("fig4") + panel,
                  harness_options_from_args(args));
  harness.config("speed_model", platform::to_string(model));
  harness.config("trials", config.trials);
  harness.config("seed", static_cast<std::int64_t>(config.seed));
  harness.config("imbalance_target",
                 config.strategy_options.imbalance_target);

  std::printf("=== Figure %s: ratio of communication volume to the lower "
              "bound ===\n",
              figure);
  std::printf("speed model: %s | p in {10,20,40,60,80,100} | %zu trials "
              "per point | imbalance target %.2f%%\n",
              platform::to_string(model).c_str(), config.trials,
              100.0 * config.strategy_options.imbalance_target);
  std::printf("paper expectation: %s\n\n", expectation);

  // Serial reference run, then the pooled run; the harness requires the
  // two to agree bit for bit (per-trial RNG sub-streams + ordered
  // reduction inside core::run_fig4's util::Sweep).
  const auto rows = harness.run<std::vector<core::Fig4Row>>(
      [&config](std::size_t threads) {
        core::Fig4Config run_config = config;
        run_config.threads = threads;
        return core::run_fig4(run_config);
      },
      fig4_rows_identical);

  const auto table = core::fig4_table(rows);
  table.print(std::cout);

  // The figure itself, as in the paper: ratio-to-LB vs p.
  std::vector<double> ps;
  std::vector<double> het;
  std::vector<double> hom;
  std::vector<double> hom_k;
  for (const auto& row : rows) {
    ps.push_back(static_cast<double>(row.p));
    het.push_back(row.het.mean());
    hom.push_back(row.hom.mean());
    hom_k.push_back(row.hom_k.mean());
  }
  util::AsciiChart chart(60, 16);
  chart.set_y_label("ratio of communication amount to the lower bound");
  chart.set_x_label("number of processors");
  chart.add_series("Comm_het", 'o', ps, het);
  chart.add_series("Comm_hom", '+', ps, hom);
  chart.add_series("Comm_hom/k", '*', ps, hom_k);
  std::printf("\n%s", chart.render().c_str());

  const int exit_code = harness.finish([&rows](util::JsonWriter& json) {
    for (const auto& row : rows) {
      json.begin_object();
      json.key("p").value(row.p);
      json.key("het_mean").value(row.het.mean());
      json.key("het_stddev").value(row.het.stddev());
      json.key("hom_mean").value(row.hom.mean());
      json.key("hom_stddev").value(row.hom.stddev());
      json.key("hom_k_mean").value(row.hom_k.mean());
      json.key("hom_k_stddev").value(row.hom_k.stddev());
      json.key("k_mean").value(row.k_used.mean());
      json.key("hom_imbalance_mean").value(row.hom_imbalance.mean());
      json.key("hom_imbalance_dropped").value(row.hom_imbalance_dropped);
      json.key("hom_idle_trials").value(row.hom_idle_trials);
      json.end_object();
    }
  });

  if (args.has("csv")) {
    const std::string path = args.get_string("csv", "");
    table.save_csv(path);
    std::printf("CSV written to %s\n", path.c_str());
  }
  return exit_code;
}

}  // namespace nldl::bench
