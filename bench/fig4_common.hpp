// Shared driver for the Figure 4 reproductions (bench_fig4{a,b,c}).
#pragma once

#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <thread>

#include "core/experiments.hpp"
#include "util/chart.hpp"
#include "util/cli.hpp"
#include "util/json.hpp"

namespace nldl::bench {

/// Bitwise comparison of two sweeps: the parallel runner must reproduce
/// the serial run exactly (same sub-streams, same reduction order).
inline bool fig4_rows_identical(const std::vector<core::Fig4Row>& a,
                                const std::vector<core::Fig4Row>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto same = [](const util::RunningStats& x,
                         const util::RunningStats& y) {
      return x.count() == y.count() && x.mean() == y.mean() &&
             x.variance() == y.variance();
    };
    if (a[i].p != b[i].p || !same(a[i].het, b[i].het) ||
        !same(a[i].hom, b[i].hom) || !same(a[i].hom_k, b[i].hom_k) ||
        !same(a[i].k_used, b[i].k_used) ||
        !same(a[i].hom_imbalance, b[i].hom_imbalance)) {
      return false;
    }
  }
  return true;
}

/// Run one Figure 4 panel: print the paper-style table, then record the
/// serial-vs-parallel runner comparison to BENCH_fig4<panel>.json.
///
/// Flags: --trials=N (default 100), --seed=S, --csv=path, --target=e
/// (imbalance target for Comm_hom/k, default 0.01 = the paper's 1 %),
/// --threads=T (parallel runner width; 0 = hardware, default), --json=path
/// (default BENCH_fig4<panel>.json in the working directory).
inline int run_fig4_panel(const char* figure, const char* panel,
                          platform::SpeedModel model,
                          const char* expectation, int argc, char** argv) {
  using Clock = std::chrono::steady_clock;
  const util::Args args(argc, argv);
  core::Fig4Config config;
  config.model = model;
  config.trials = static_cast<std::size_t>(args.get_int("trials", 100));
  config.seed = static_cast<std::uint64_t>(
      args.get_int("seed", static_cast<long long>(util::Rng::kDefaultSeed)));
  config.strategy_options.imbalance_target = args.get_double("target", 0.01);

  std::size_t threads =
      static_cast<std::size_t>(args.get_int("threads", 0));
  if (threads == 0) {
    threads = std::max(1U, std::thread::hardware_concurrency());
  }

  std::printf("=== Figure %s: ratio of communication volume to the lower "
              "bound ===\n",
              figure);
  std::printf("speed model: %s | p in {10,20,40,60,80,100} | %zu trials "
              "per point | imbalance target %.2f%%\n",
              platform::to_string(model).c_str(), config.trials,
              100.0 * config.strategy_options.imbalance_target);
  std::printf("paper expectation: %s\n\n", expectation);

  // Serial reference run, then the pooled run; the two must agree bit for
  // bit (per-trial RNG sub-streams + ordered reduction).
  config.threads = 1;
  const auto serial_start = Clock::now();
  const auto rows = core::run_fig4(config);
  const std::chrono::duration<double> serial_time =
      Clock::now() - serial_start;

  config.threads = threads;
  const auto parallel_start = Clock::now();
  const auto parallel_rows = core::run_fig4(config);
  const std::chrono::duration<double> parallel_time =
      Clock::now() - parallel_start;

  const bool identical = fig4_rows_identical(rows, parallel_rows);

  const auto table = core::fig4_table(rows);
  table.print(std::cout);

  // The figure itself, as in the paper: ratio-to-LB vs p.
  std::vector<double> ps;
  std::vector<double> het;
  std::vector<double> hom;
  std::vector<double> hom_k;
  for (const auto& row : rows) {
    ps.push_back(static_cast<double>(row.p));
    het.push_back(row.het.mean());
    hom.push_back(row.hom.mean());
    hom_k.push_back(row.hom_k.mean());
  }
  util::AsciiChart chart(60, 16);
  chart.set_y_label("ratio of communication amount to the lower bound");
  chart.set_x_label("number of processors");
  chart.add_series("Comm_het", 'o', ps, het);
  chart.add_series("Comm_hom", '+', ps, hom);
  chart.add_series("Comm_hom/k", '*', ps, hom_k);
  std::printf("\n%s", chart.render().c_str());

  std::printf("\nrunner: serial %.3fs | %zu threads %.3fs | speedup %.2fx "
              "| bit-identical: %s\n",
              serial_time.count(), threads, parallel_time.count(),
              parallel_time.count() > 0.0
                  ? serial_time.count() / parallel_time.count()
                  : 0.0,
              identical ? "yes" : "NO (runner bug!)");

  const std::string json_path =
      args.get_string("json", std::string("BENCH_fig4") + panel + ".json");
  bool json_written = false;
  {
    std::ofstream out(json_path);
    util::JsonWriter json(out);
    json.begin_object();
    json.key("bench").value(std::string("fig4") + panel);
    json.key("speed_model").value(platform::to_string(model));
    json.key("trials").value(config.trials);
    json.key("seed").value(static_cast<std::int64_t>(config.seed));
    json.key("imbalance_target")
        .value(config.strategy_options.imbalance_target);
    json.key("threads").value(threads);
    json.key("wall_time_serial_s").value(serial_time.count());
    json.key("wall_time_parallel_s").value(parallel_time.count());
    json.key("speedup").value(parallel_time.count() > 0.0
                                  ? serial_time.count() /
                                        parallel_time.count()
                                  : 0.0);
    json.key("parallel_bit_identical").value(identical);
    json.key("points").begin_array();
    for (const auto& row : rows) {
      json.begin_object();
      json.key("p").value(row.p);
      json.key("het_mean").value(row.het.mean());
      json.key("het_stddev").value(row.het.stddev());
      json.key("hom_mean").value(row.hom.mean());
      json.key("hom_stddev").value(row.hom.stddev());
      json.key("hom_k_mean").value(row.hom_k.mean());
      json.key("hom_k_stddev").value(row.hom_k.stddev());
      json.key("k_mean").value(row.k_used.mean());
      json.key("hom_imbalance_mean").value(row.hom_imbalance.mean());
      json.end_object();
    }
    json.end_array();
    json.end_object();
    out.flush();
    json_written = static_cast<bool>(out);
  }
  if (json_written) {
    std::printf("JSON written to %s\n", json_path.c_str());
  } else {
    std::fprintf(stderr, "warning: could not write %s\n", json_path.c_str());
  }

  if (args.has("csv")) {
    const std::string path = args.get_string("csv", "");
    table.save_csv(path);
    std::printf("CSV written to %s\n", path.c_str());
  }
  return identical ? 0 : 1;
}

}  // namespace nldl::bench
