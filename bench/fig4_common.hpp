// Shared driver for the Figure 4 reproductions (bench_fig4{a,b,c}).
#pragma once

#include <cstdio>
#include <iostream>

#include "core/experiments.hpp"
#include "util/chart.hpp"
#include "util/cli.hpp"

namespace nldl::bench {

/// Run one Figure 4 panel and print the paper-style table.
///
/// Flags: --trials=N (default 100), --seed=S, --csv=path, --target=e
/// (imbalance target for Comm_hom/k, default 0.01 = the paper's 1 %).
inline int run_fig4_panel(const char* figure, platform::SpeedModel model,
                          const char* expectation, int argc, char** argv) {
  const util::Args args(argc, argv);
  core::Fig4Config config;
  config.model = model;
  config.trials = static_cast<std::size_t>(args.get_int("trials", 100));
  config.seed = static_cast<std::uint64_t>(
      args.get_int("seed", static_cast<long long>(util::Rng::kDefaultSeed)));
  config.strategy_options.imbalance_target = args.get_double("target", 0.01);

  std::printf("=== Figure %s: ratio of communication volume to the lower "
              "bound ===\n",
              figure);
  std::printf("speed model: %s | p in {10,20,40,60,80,100} | %zu trials "
              "per point | imbalance target %.2f%%\n",
              platform::to_string(model).c_str(), config.trials,
              100.0 * config.strategy_options.imbalance_target);
  std::printf("paper expectation: %s\n\n", expectation);

  const auto rows = core::run_fig4(config);
  const auto table = core::fig4_table(rows);
  table.print(std::cout);

  // The figure itself, as in the paper: ratio-to-LB vs p.
  std::vector<double> ps;
  std::vector<double> het;
  std::vector<double> hom;
  std::vector<double> hom_k;
  for (const auto& row : rows) {
    ps.push_back(static_cast<double>(row.p));
    het.push_back(row.het.mean());
    hom.push_back(row.hom.mean());
    hom_k.push_back(row.hom_k.mean());
  }
  util::AsciiChart chart(60, 16);
  chart.set_y_label("ratio of communication amount to the lower bound");
  chart.set_x_label("number of processors");
  chart.add_series("Comm_het", 'o', ps, het);
  chart.add_series("Comm_hom", '+', ps, hom);
  chart.add_series("Comm_hom/k", '*', ps, hom_k);
  std::printf("\n%s", chart.render().c_str());

  if (args.has("csv")) {
    const std::string path = args.get_string("csv", "");
    table.save_csv(path);
    std::printf("\nCSV written to %s\n", path.c_str());
  }
  return 0;
}

}  // namespace nldl::bench
