// Ablation A1 — the Conclusion's proposal: "favoring among all available
// tasks those that share blocks with data already stored on a slave
// processor" in the demand-driven MapReduce scheduler.
//
// Compares plain demand-driven vs affinity-aware scheduling on the
// outer-product and matmul task graphs, across heterogeneity profiles and
// block granularities: bytes shipped, makespan, load imbalance. The
// (workload × platform) grid runs through util::Sweep under the
// bench::Harness self-check.
#include <cstdio>
#include <iostream>

#include "bench/harness.hpp"
#include "mapreduce/cluster_sim.hpp"
#include "mapreduce/matmul_job.hpp"
#include "mapreduce/outer_product_job.hpp"
#include "platform/speed_distributions.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/sweep.hpp"
#include "util/table.hpp"

using namespace nldl;

namespace {

struct Case {
  std::string name;
  std::vector<mapreduce::SimTask> tasks;
  double bytes_per_block;
  double no_cache_bytes;  ///< plain MapReduce accounting: no reuse at all
};

std::vector<Case> build_cases() {
  std::vector<Case> cases;
  {
    const long long n = 240;
    for (const long long block : {12LL, 24LL, 48LL}) {
      Case c;
      c.name = "outer-product N=240 b=" + std::to_string(block);
      c.tasks = mapreduce::outer_product_tasks(n, block);
      c.bytes_per_block = double(block);
      c.no_cache_bytes = double(c.tasks.size()) * 2.0 * double(block);
      cases.push_back(std::move(c));
    }
  }
  {
    const long long n = 64;
    for (const long long block : {8LL, 16LL}) {
      Case c;
      c.name = "matmul N=64 b=" + std::to_string(block);
      c.tasks = mapreduce::matmul_tasks(n, block);
      c.bytes_per_block = double(block) * double(block);
      c.no_cache_bytes =
          mapreduce::matmul_replication_volume(double(n), double(block));
      cases.push_back(std::move(c));
    }
  }
  return cases;
}

/// The heterogeneity profiles; the lognormal one is drawn once, before
/// the sweep, so every workload sees the same machine.
std::vector<std::pair<std::string, std::vector<double>>> build_platforms(
    std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::pair<std::string, std::vector<double>>> platforms;
  platforms.emplace_back("4 equal", std::vector<double>(4, 1.0));
  platforms.emplace_back(
      "2-class k=8 (p=4)",
      platform::Platform::two_class(4, 1.0, 8.0).speeds());
  platforms.emplace_back(
      "lognormal p=8",
      platform::make_platform(platform::SpeedModel::kLogNormal, 8, rng)
          .speeds());
  return platforms;
}

struct AffinityRow {
  double blind_bytes = 0.0;
  double aware_bytes = 0.0;
  double blind_imbalance = 0.0;
  double aware_imbalance = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const auto seed = static_cast<std::uint64_t>(
      args.get_int("seed", static_cast<long long>(util::Rng::kDefaultSeed)));

  bench::Harness harness("ablation_affinity",
                         bench::harness_options_from_args(args));
  harness.config("seed", static_cast<std::int64_t>(seed));

  std::printf("=== Ablation A1: affinity-aware demand-driven scheduling "
              "(paper Conclusion) ===\n\n");

  const auto cases = build_cases();
  const auto platforms = build_platforms(seed);

  const auto rows = harness.run<std::vector<AffinityRow>>(
      [&](std::size_t threads) {
        util::Grid grid;
        grid.axis("case", cases.size()).axis("platform", platforms.size());
        util::SweepOptions options;
        options.threads = threads;
        options.seed = seed;
        return util::Sweep(std::move(grid), options).map<AffinityRow>(
            [&](const util::SweepPoint& point, util::Rng&) {
              const Case& c = cases[point.index_of("case")];
              const auto& speeds =
                  platforms[point.index_of("platform")].second;
              mapreduce::ClusterConfig plain;
              plain.speeds = speeds;
              plain.bytes_per_block = c.bytes_per_block;
              const auto blind = mapreduce::run_cluster(c.tasks, plain);
              auto aware = plain;
              aware.affinity_aware = true;
              const auto smart = mapreduce::run_cluster(c.tasks, aware);
              return AffinityRow{blind.total_bytes, smart.total_bytes,
                                 blind.imbalance, smart.imbalance};
            });
      },
      [](const std::vector<AffinityRow>& a,
         const std::vector<AffinityRow>& b) {
        if (a.size() != b.size()) return false;
        for (std::size_t i = 0; i < a.size(); ++i) {
          if (a[i].blind_bytes != b[i].blind_bytes ||  // nldl-lint: allow(double-eq): bitwise reproducibility self-check
              a[i].aware_bytes != b[i].aware_bytes ||  // nldl-lint: allow(double-eq): bitwise reproducibility self-check
              a[i].blind_imbalance != b[i].blind_imbalance ||  // nldl-lint: allow(double-eq): bitwise reproducibility self-check
              a[i].aware_imbalance != b[i].aware_imbalance) {  // nldl-lint: allow(double-eq): bitwise reproducibility self-check
            return false;
          }
        }
        return true;
      });

  util::Table table({"workload", "platform", "no-cache bytes",
                     "demand-driven", "affinity-aware", "saving",
                     "e (dd)", "e (aff)"});
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Case& c = cases[i / platforms.size()];
    table.row()
        .cell(c.name)
        .cell(platforms[i % platforms.size()].first)
        .cell(c.no_cache_bytes, 0)
        .cell(rows[i].blind_bytes, 0)
        .cell(rows[i].aware_bytes, 0)
        .cell(1.0 - rows[i].aware_bytes / rows[i].blind_bytes, 3)
        .cell(rows[i].blind_imbalance, 3)
        .cell(rows[i].aware_imbalance, 3)
        .done();
  }
  table.print(std::cout);
  std::printf("\n(no-cache = every task ships its own inputs, the plain "
              "MapReduce accounting used by Comm_hom;\n demand-driven "
              "already benefits from per-worker caches; affinity adds "
              "task selection on top)\n");

  return harness.finish([&](util::JsonWriter& json) {
    for (std::size_t i = 0; i < rows.size(); ++i) {
      json.begin_object();
      json.key("workload").value(cases[i / platforms.size()].name);
      json.key("platform").value(platforms[i % platforms.size()].first);
      json.key("no_cache_bytes")
          .value(cases[i / platforms.size()].no_cache_bytes);
      json.key("demand_driven_bytes").value(rows[i].blind_bytes);
      json.key("affinity_bytes").value(rows[i].aware_bytes);
      json.key("imbalance_demand_driven").value(rows[i].blind_imbalance);
      json.key("imbalance_affinity").value(rows[i].aware_imbalance);
      json.end_object();
    }
  });
}
