// Ablation A1 — the Conclusion's proposal: "favoring among all available
// tasks those that share blocks with data already stored on a slave
// processor" in the demand-driven MapReduce scheduler.
//
// Compares plain demand-driven vs affinity-aware scheduling on the
// outer-product and matmul task graphs, across heterogeneity profiles and
// block granularities: bytes shipped, makespan, load imbalance.
#include <cstdio>
#include <iostream>

#include "mapreduce/cluster_sim.hpp"
#include "mapreduce/matmul_job.hpp"
#include "mapreduce/outer_product_job.hpp"
#include "platform/speed_distributions.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace nldl;

namespace {

struct Case {
  std::string name;
  std::vector<mapreduce::SimTask> tasks;
  double bytes_per_block;
  double no_cache_bytes;  ///< plain MapReduce accounting: no reuse at all
};

void run_cases(const std::vector<Case>& cases,
               const std::vector<std::pair<std::string,
                                           std::vector<double>>>& platforms) {
  util::Table table({"workload", "platform", "no-cache bytes",
                     "demand-driven", "affinity-aware", "saving",
                     "e (dd)", "e (aff)"});
  for (const auto& c : cases) {
    for (const auto& [pname, speeds] : platforms) {
      mapreduce::ClusterConfig plain;
      plain.speeds = speeds;
      plain.bytes_per_block = c.bytes_per_block;
      const auto blind = mapreduce::run_cluster(c.tasks, plain);
      auto aware = plain;
      aware.affinity_aware = true;
      const auto smart = mapreduce::run_cluster(c.tasks, aware);
      table.row()
          .cell(c.name)
          .cell(pname)
          .cell(c.no_cache_bytes, 0)
          .cell(blind.total_bytes, 0)
          .cell(smart.total_bytes, 0)
          .cell(1.0 - smart.total_bytes / blind.total_bytes, 3)
          .cell(blind.imbalance, 3)
          .cell(smart.imbalance, 3)
          .done();
    }
  }
  table.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const auto seed = static_cast<std::uint64_t>(
      args.get_int("seed", static_cast<long long>(util::Rng::kDefaultSeed)));

  std::printf("=== Ablation A1: affinity-aware demand-driven scheduling "
              "(paper Conclusion) ===\n\n");

  std::vector<Case> cases;
  {
    const long long n = 240;
    for (const long long block : {12LL, 24LL, 48LL}) {
      Case c;
      c.name = "outer-product N=240 b=" + std::to_string(block);
      c.tasks = mapreduce::outer_product_tasks(n, block);
      c.bytes_per_block = double(block);
      c.no_cache_bytes =
          double(c.tasks.size()) * 2.0 * double(block);
      cases.push_back(std::move(c));
    }
  }
  {
    const long long n = 64;
    for (const long long block : {8LL, 16LL}) {
      Case c;
      c.name = "matmul N=64 b=" + std::to_string(block);
      c.tasks = mapreduce::matmul_tasks(n, block);
      c.bytes_per_block = double(block) * double(block);
      c.no_cache_bytes =
          mapreduce::matmul_replication_volume(double(n), double(block));
      cases.push_back(std::move(c));
    }
  }

  util::Rng rng(seed);
  std::vector<std::pair<std::string, std::vector<double>>> platforms;
  platforms.emplace_back("4 equal", std::vector<double>(4, 1.0));
  platforms.emplace_back("2-class k=8 (p=4)",
                         platform::Platform::two_class(4, 1.0, 8.0).speeds());
  platforms.emplace_back(
      "lognormal p=8",
      platform::make_platform(platform::SpeedModel::kLogNormal, 8, rng)
          .speeds());

  run_cases(cases, platforms);
  std::printf("\n(no-cache = every task ships its own inputs, the plain "
              "MapReduce accounting used by Comm_hom;\n demand-driven "
              "already benefits from per-worker caches; affinity adds "
              "task selection on top)\n");
  return 0;
}
