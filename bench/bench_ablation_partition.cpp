// Ablation A2 — PERI-SUM design choices.
//
// The paper relies on the column-based partitioning algorithm of ref [41]
// with a DP-chosen column structure. This ablation quantifies how much the
// DP matters against simpler structures:
//   - a single column (1-D slicing, the naive heterogeneous layout),
//   - a fixed √p-column grid with balanced membership,
//   - the DP optimum,
// and against the PERI-MAX objective, over the paper's speed models.
//
// The (model × p × trial) grid runs through util::Sweep — each trial on
// its own pre-split RNG sub-stream, Welford accumulators fed in trial
// order — under the bench::Harness serial/parallel self-check.
#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench/harness.hpp"
#include "partition/lower_bound.hpp"
#include "partition/peri_max.hpp"
#include "partition/peri_sum.hpp"
#include "partition/recursive_bisection.hpp"
#include "platform/speed_distributions.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/sweep.hpp"
#include "util/table.hpp"

using namespace nldl;

namespace {

const std::vector<platform::SpeedModel> kModels{
    platform::SpeedModel::kUniform, platform::SpeedModel::kLogNormal};
const std::vector<double> kPs{10, 40, 100};

std::vector<std::size_t> balanced_columns(std::size_t p,
                                          std::size_t columns) {
  std::vector<std::size_t> sizes(columns, p / columns);
  for (std::size_t i = 0; i < p % columns; ++i) ++sizes[i];
  return sizes;
}

/// Ratios to the lower bound for one random platform.
struct TrialRatios {
  double one_column = 0.0;
  double grid_columns = 0.0;
  double dp = 0.0;
  double peri_max = 0.0;
  double bisection = 0.0;
};

struct CellStats {
  util::RunningStats one_column;
  util::RunningStats grid_columns;
  util::RunningStats dp;
  util::RunningStats peri_max;
  util::RunningStats bisection;
};

TrialRatios evaluate_trial(platform::SpeedModel model, std::size_t p,
                           util::Rng rng) {
  const auto speeds = platform::make_platform(model, p, rng).speeds();
  const double lb = partition::comm_lower_bound_unit(speeds);
  TrialRatios ratios;
  ratios.one_column =
      partition::column_partition_with_sizes(speeds, {p})
          .total_half_perimeter /
      lb;
  const auto columns = static_cast<std::size_t>(
      std::max(1.0, std::round(std::sqrt(double(p)))));
  ratios.grid_columns = partition::column_partition_with_sizes(
                            speeds, balanced_columns(p, columns))
                            .total_half_perimeter /
                        lb;
  ratios.dp =
      partition::peri_sum_partition(speeds).total_half_perimeter / lb;
  ratios.peri_max =
      partition::peri_max_partition(speeds).total_half_perimeter / lb;
  ratios.bisection =
      partition::recursive_bisection_partition(speeds)
          .total_half_perimeter /
      lb;
  return ratios;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const auto seed = static_cast<std::uint64_t>(
      args.get_int("seed", static_cast<long long>(util::Rng::kDefaultSeed)));
  const auto trials = static_cast<std::size_t>(args.get_int("trials", 50));

  bench::Harness harness("ablation_partition",
                         bench::harness_options_from_args(args));
  harness.config("seed", static_cast<std::int64_t>(seed));
  harness.config("trials", trials);

  std::printf("=== Ablation A2: PERI-SUM column structure (ratios to the "
              "lower bound, %zu trials) ===\n\n",
              trials);

  const auto cells = harness.run<std::vector<CellStats>>(
      [&](std::size_t threads) {
        util::Grid grid;
        grid.axis("model", kModels.size())
            .axis("p", kPs)
            .axis("trial", trials);
        util::SweepOptions options;
        options.threads = threads;
        options.seed = seed;
        const util::Sweep sweep(std::move(grid), options);
        // Strictly ordered reduction into one accumulator cell per
        // (model, p): trial order is flat-index order by construction.
        return sweep.run<TrialRatios, std::vector<CellStats>>(
            [](const util::SweepPoint& point, util::Rng& rng) {
              return evaluate_trial(kModels[point.index_of("model")],
                                    static_cast<std::size_t>(
                                        point.value("p")),
                                    rng);
            },
            std::vector<CellStats>(kModels.size() * kPs.size()),
            [trials](std::vector<CellStats>& acc, const TrialRatios& r,
                     const util::SweepPoint& point) {
              CellStats& cell = acc[point.index() / trials];
              cell.one_column.push(r.one_column);
              cell.grid_columns.push(r.grid_columns);
              cell.dp.push(r.dp);
              cell.peri_max.push(r.peri_max);
              cell.bisection.push(r.bisection);
            });
      },
      [](const std::vector<CellStats>& a, const std::vector<CellStats>& b) {
        if (a.size() != b.size()) return false;
        const auto same = [](const util::RunningStats& x,
                             const util::RunningStats& y) {
          return x.count() == y.count() && x.mean() == y.mean() &&
                 x.variance() == y.variance();
        };
        for (std::size_t i = 0; i < a.size(); ++i) {
          if (!same(a[i].one_column, b[i].one_column) ||
              !same(a[i].grid_columns, b[i].grid_columns) ||
              !same(a[i].dp, b[i].dp) ||
              !same(a[i].peri_max, b[i].peri_max) ||
              !same(a[i].bisection, b[i].bisection)) {
            return false;
          }
        }
        return true;
      });

  util::Table table({"model", "p", "1 column", "sqrt(p) columns",
                     "DP (PERI-SUM)", "PERI-MAX (sum objective)",
                     "recursive bisection"});
  for (std::size_t i = 0; i < cells.size(); ++i) {
    table.row()
        .cell(platform::to_string(kModels[i / kPs.size()]))
        .cell(static_cast<std::size_t>(kPs[i % kPs.size()]))
        .cell(cells[i].one_column.mean(), 4)
        .cell(cells[i].grid_columns.mean(), 4)
        .cell(cells[i].dp.mean(), 4)
        .cell(cells[i].peri_max.mean(), 4)
        .cell(cells[i].bisection.mean(), 4)
        .done();
  }
  table.print(std::cout);
  std::printf("\n(1 column = 1-D slicing; the DP buys its biggest gains "
              "under heavy-tailed speeds)\n");

  return harness.finish([&](util::JsonWriter& json) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      json.begin_object();
      json.key("model").value(
          platform::to_string(kModels[i / kPs.size()]));
      json.key("p").value(static_cast<std::size_t>(kPs[i % kPs.size()]));
      json.key("one_column_mean").value(cells[i].one_column.mean());
      json.key("grid_columns_mean").value(cells[i].grid_columns.mean());
      json.key("dp_mean").value(cells[i].dp.mean());
      json.key("dp_stddev").value(cells[i].dp.stddev());
      json.key("peri_max_mean").value(cells[i].peri_max.mean());
      json.key("bisection_mean").value(cells[i].bisection.mean());
      json.end_object();
    }
  });
}
