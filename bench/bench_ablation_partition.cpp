// Ablation A2 — PERI-SUM design choices.
//
// The paper relies on the column-based partitioning algorithm of ref [41]
// with a DP-chosen column structure. This ablation quantifies how much the
// DP matters against simpler structures:
//   - a single column (1-D slicing, the naive heterogeneous layout),
//   - a fixed √p-column grid with balanced membership,
//   - the DP optimum,
// and against the PERI-MAX objective, over the paper's speed models.
#include <cmath>
#include <cstdio>
#include <iostream>

#include "partition/lower_bound.hpp"
#include "partition/peri_max.hpp"
#include "partition/peri_sum.hpp"
#include "partition/recursive_bisection.hpp"
#include "platform/speed_distributions.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

using namespace nldl;

namespace {

std::vector<std::size_t> balanced_columns(std::size_t p,
                                          std::size_t columns) {
  std::vector<std::size_t> sizes(columns, p / columns);
  for (std::size_t i = 0; i < p % columns; ++i) ++sizes[i];
  return sizes;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const auto seed = static_cast<std::uint64_t>(
      args.get_int("seed", static_cast<long long>(util::Rng::kDefaultSeed)));
  const auto trials = static_cast<std::size_t>(args.get_int("trials", 50));

  std::printf("=== Ablation A2: PERI-SUM column structure (ratios to the "
              "lower bound, %zu trials) ===\n\n",
              trials);
  util::Table table({"model", "p", "1 column", "sqrt(p) columns",
                     "DP (PERI-SUM)", "PERI-MAX (sum objective)",
                     "recursive bisection"});

  util::Rng master(seed);
  for (const auto model : {platform::SpeedModel::kUniform,
                           platform::SpeedModel::kLogNormal}) {
    for (const std::size_t p : {10UL, 40UL, 100UL}) {
      util::RunningStats one_col;
      util::RunningStats grid_col;
      util::RunningStats dp;
      util::RunningStats by_max;
      util::RunningStats bisection;
      for (std::size_t trial = 0; trial < trials; ++trial) {
        util::Rng rng = master.split();
        const auto speeds =
            platform::make_platform(model, p, rng).speeds();
        const double lb = partition::comm_lower_bound_unit(speeds);
        one_col.push(
            partition::column_partition_with_sizes(speeds, {p})
                .total_half_perimeter /
            lb);
        const auto columns = static_cast<std::size_t>(
            std::max(1.0, std::round(std::sqrt(double(p)))));
        grid_col.push(partition::column_partition_with_sizes(
                          speeds, balanced_columns(p, columns))
                          .total_half_perimeter /
                      lb);
        dp.push(partition::peri_sum_partition(speeds)
                    .total_half_perimeter /
                lb);
        by_max.push(partition::peri_max_partition(speeds)
                        .total_half_perimeter /
                    lb);
        bisection.push(partition::recursive_bisection_partition(speeds)
                           .total_half_perimeter /
                       lb);
      }
      table.row()
          .cell(platform::to_string(model))
          .cell(p)
          .cell(one_col.mean(), 4)
          .cell(grid_col.mean(), 4)
          .cell(dp.mean(), 4)
          .cell(by_max.mean(), 4)
          .cell(bisection.mean(), 4)
          .done();
    }
  }
  table.print(std::cout);
  std::printf("\n(1 column = 1-D slicing; the DP buys its biggest gains "
              "under heavy-tailed speeds)\n");
  return 0;
}
