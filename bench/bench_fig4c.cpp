// Figure 4(c): computation speeds log-normal with mu = 0, sigma = 1.
//
// Expected shape (paper): Comm_het stays within ~2 % of the lower bound;
// the heavy-tailed speeds push Comm_hom/k up to ~30× the bound at p = 100.
#include "fig4_common.hpp"

int main(int argc, char** argv) {
  return nldl::bench::run_fig4_panel(
      "4(c)", "c", nldl::platform::SpeedModel::kLogNormal,
      "Comm_het <= 1.02; Comm_hom/k grows to ~15-30x at p=100", argc, argv);
}
