// Figure 4(b): computation speeds uniform on [1, 100].
//
// Expected shape (paper): Comm_het stays within ~2 % of the lower bound at
// every p; Comm_hom and especially Comm_hom/k blow up with p, reaching
// ~15–20× the bound at p = 100.
#include "fig4_common.hpp"

int main(int argc, char** argv) {
  return nldl::bench::run_fig4_panel(
      "4(b)", "b", nldl::platform::SpeedModel::kUniform,
      "Comm_het <= 1.02; Comm_hom/k grows to ~15-20x at p=100", argc, argv);
}
