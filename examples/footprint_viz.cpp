// Figure 2, rendered from real layouts: the data footprint on vectors a
// and b for a chosen processor under both distributions.
//
//   ./footprint_viz [--p=8] [--k=12] [--worker=7] [--grid=48]
//
// Red squares in the paper = blocks pulled by the worker under the
// Homogeneous Blocks demand-driven scheme; the Heterogeneous Blocks scheme
// gives the same worker one compact rectangle, touching far fewer entries
// of a and b.
#include <cstdio>
#include <cstring>
#include <iostream>

#include "core/nldl.hpp"
#include "util/cli.hpp"

using namespace nldl;

namespace {

/// Render an occupancy grid: '#' cells computed by the worker, '.' others,
/// plus which entries of a (rows) and b (columns) it must receive.
void render(const std::vector<std::vector<bool>>& owned, std::size_t grid) {
  std::vector<bool> row_needed(grid, false);
  std::vector<bool> col_needed(grid, false);
  for (std::size_t i = 0; i < grid; ++i) {
    for (std::size_t j = 0; j < grid; ++j) {
      if (owned[i][j]) {
        row_needed[i] = true;
        col_needed[j] = true;
      }
    }
  }
  std::printf("      b: ");
  for (std::size_t j = 0; j < grid; ++j) {
    std::putchar(col_needed[j] ? 'v' : ' ');
  }
  std::printf("\n");
  std::size_t rows = 0;
  std::size_t cols = 0;
  for (std::size_t i = 0; i < grid; ++i) rows += row_needed[i] ? 1 : 0;
  for (std::size_t j = 0; j < grid; ++j) cols += col_needed[j] ? 1 : 0;
  for (std::size_t i = 0; i < grid; ++i) {
    std::printf("  a: %c | ", row_needed[i] ? '>' : ' ');
    for (std::size_t j = 0; j < grid; ++j) {
      std::putchar(owned[i][j] ? '#' : '.');
    }
    std::printf("\n");
  }
  std::printf("  footprint: %zu rows of a + %zu cols of b = %zu elements\n",
              rows, cols, rows + cols);
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const auto p = static_cast<std::size_t>(args.get_int("p", 8));
  const double k = args.get_double("k", 12.0);
  const auto grid = static_cast<std::size_t>(args.get_int("grid", 48));
  auto worker = static_cast<std::size_t>(
      args.get_int("worker", static_cast<long long>(p) - 1));
  if (worker >= p) worker = p - 1;

  const auto plat = platform::Platform::two_class(p, 1.0, k);
  const auto speeds = plat.speeds();
  std::printf("=== Figure 2: data footprint of worker %zu (speed %.0f) on "
              "a %zux%zu domain ===\n\n",
              worker + 1, speeds[worker], grid, grid);

  // --- Homogeneous Blocks: demand-driven squares.
  const auto formula =
      partition::homogeneous_blocks_formula(speeds, double(grid));
  auto block = std::max(1LL, static_cast<long long>(formula.block_dim));
  while (static_cast<long long>(grid) % block != 0) --block;
  const long long per_side = static_cast<long long>(grid) / block;
  std::vector<double> tau(p);
  for (std::size_t i = 0; i < p; ++i) {
    tau[i] = double(block) * double(block) / speeds[i];
  }
  const auto counts =
      partition::demand_driven_counts(tau, per_side * per_side);
  // Blocks are dealt round-robin-by-completion; reconstruct one plausible
  // demand-driven interleaving: worker w's blocks are those it pulled, in
  // global completion order.
  std::vector<std::size_t> owner;
  {
    std::vector<long long> remaining = counts;
    std::vector<double> next(p);
    for (std::size_t i = 0; i < p; ++i) next[i] = tau[i];
    for (long long t = 0; t < per_side * per_side; ++t) {
      std::size_t best = 0;
      double best_time = 1e300;
      for (std::size_t i = 0; i < p; ++i) {
        if (remaining[i] > 0 && next[i] < best_time) {
          best_time = next[i];
          best = i;
        }
      }
      owner.push_back(best);
      --remaining[best];
      next[best] += tau[best];
    }
  }
  std::vector<std::vector<bool>> owned(grid,
                                       std::vector<bool>(grid, false));
  for (std::size_t t = 0; t < owner.size(); ++t) {
    if (owner[t] != worker) continue;
    const long long bi = static_cast<long long>(t) / per_side;
    const long long bj = static_cast<long long>(t) % per_side;
    for (long long i = bi * block; i < (bi + 1) * block; ++i) {
      for (long long j = bj * block; j < (bj + 1) * block; ++j) {
        owned[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
            true;
      }
    }
  }
  std::printf("Homogeneous Blocks (D = %lld, demand-driven — Figure "
              "2(b)):\n", block);
  render(owned, grid);

  // --- Heterogeneous Blocks: one PERI-SUM rectangle.
  const auto layout = partition::discretize(
      partition::peri_sum_partition(speeds), static_cast<long long>(grid));
  for (auto& row : owned) row.assign(grid, false);
  const auto& rect = layout.rects[worker];
  for (long long i = rect.y; i < rect.y + rect.height; ++i) {
    for (long long j = rect.x; j < rect.x + rect.width; ++j) {
      owned[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] = true;
    }
  }
  std::printf("\nHeterogeneous Blocks (PERI-SUM rectangle — Figure "
              "2(c)):\n");
  render(owned, grid);

  std::printf("\nSame computational share, far smaller footprint: that is "
              "the Comm_het saving.\n");
  return 0;
}
