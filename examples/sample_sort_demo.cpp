// Parallel sample sort walkthrough — the Figure 1 pipeline, executed:
// pivots choice → pivot sort → bucket construction → data communication →
// local sorts; homogeneous and heterogeneous (Section 3.2) variants.
//
//   ./sample_sort_demo [--n=1048576] [--p=8] [--seed=S]
#include <cstdio>
#include <iostream>

#include "core/nldl.hpp"
#include "util/cli.hpp"

using namespace nldl;

namespace {

void print_bucket_bars(const std::vector<std::size_t>& sizes,
                       const std::vector<double>& expected_share,
                       std::size_t n) {
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    const double rel =
        double(sizes[i]) / (expected_share[i] * double(n));
    const auto bar = static_cast<std::size_t>(rel * 30.0);
    std::printf("  bucket %2zu: %9zu keys (%.3fx its share) |", i + 1,
                sizes[i], rel);
    for (std::size_t c = 0; c < bar && c < 60; ++c) std::putchar('#');
    std::printf("\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const auto n = static_cast<std::size_t>(args.get_int("n", 1 << 20));
  const auto p = static_cast<std::size_t>(args.get_int("p", 8));
  const auto seed = static_cast<std::uint64_t>(
      args.get_int("seed", static_cast<long long>(util::Rng::kDefaultSeed)));

  util::Rng rng(seed);
  std::vector<double> data(n);
  for (double& v : data) v = rng.lognormal(0.0, 1.0);  // skewed input

  util::ThreadPool pool(2);

  std::printf("=== Figure 1 pipeline: sample sort of %zu skewed keys on "
              "%zu workers ===\n\n", n, p);
  std::printf("Step 1: draw s*p = %zu * %zu sample keys, sort them, keep "
              "p-1 splitters\n",
              sort::default_oversampling(n), p);
  std::printf("Step 2: route every key to its bucket (binary search)\n");
  std::printf("Step 3: sort buckets in parallel — the divisible phase\n\n");

  sort::SampleSortConfig config;
  config.num_buckets = p;
  config.pool = &pool;
  config.seed = seed;
  sort::SampleSortStats stats;
  const auto sorted = sort::sample_sort(data, config, &stats);
  std::printf("sorted: %s | phases: %.3fs / %.3fs / %.3fs "
              "(preprocessing share %.1f%%)\n\n",
              std::is_sorted(sorted.begin(), sorted.end()) ? "yes" : "NO!",
              stats.step1_seconds, stats.step2_seconds, stats.step3_seconds,
              100.0 * (stats.step1_seconds + stats.step2_seconds) /
                  (stats.step1_seconds + stats.step2_seconds +
                   stats.step3_seconds + 1e-12));

  std::printf("homogeneous buckets (each expects N/p keys):\n");
  print_bucket_bars(stats.bucket_sizes,
                    std::vector<double>(p, 1.0 / double(p)), n);

  // Heterogeneous variant: fast workers get proportionally more keys.
  const auto plat = platform::Platform::two_class(p, 1.0, 4.0);
  const auto speeds = plat.speeds();
  sort::SampleSortStats het_stats;
  const auto het_sorted =
      sort::sample_sort_heterogeneous(data, speeds, config, &het_stats);
  std::printf("\nheterogeneous buckets (Section 3.2; speeds "
              "1,..,1,4,..,4):\n");
  std::vector<double> shares(p);
  double total = 0.0;
  for (const double s : speeds) total += s;
  for (std::size_t i = 0; i < p; ++i) shares[i] = speeds[i] / total;
  print_bucket_bars(het_stats.bucket_sizes, shares, n);

  std::printf("\nmodel completion times (bucket_size / speed) — balanced "
              "w.h.p.:\n");
  for (std::size_t i = 0; i < p; ++i) {
    std::printf("  worker %2zu: %.0f\n", i + 1,
                double(het_stats.bucket_sizes[i]) / speeds[i]);
  }
  std::printf("\nsorted: %s\n",
              std::is_sorted(het_sorted.begin(), het_sorted.end())
                  ? "yes" : "NO!");

  // The theory behind it.
  const double fraction =
      dlt::sorting_remaining_fraction(double(n), p);
  std::printf("\nremaining (non-divisible) work fraction log p / log N = "
              "%.4f — sorting is 'almost divisible'\n", fraction);
  return 0;
}
