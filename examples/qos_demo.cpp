// Deadlines & fairness demo: three tenants, five policies, and the
// nonlinear price of preemption.
//
// A heavy-tailed batch tenant, a tight-SLO interactive tenant, and a
// quadratic analytics tenant share one star platform. The same job stream
// is served by FCFS, SPMF, SRPT-preemptive, EDF, and WFQ — once with free
// restarts (rho = 0) and once with a nonlinear restart surcharge
// (rho = 2) — and the deadline-miss, goodput, fairness, and restart
// metrics are compared side by side: the no-free-lunch theorem applied to
// preemption.
//
//   ./qos_demo [--p=8] [--rho-load=0.9] [--jobs=80] [--seed=N]
//              [--trace=FILE]
//
// --trace=FILE runs one extra SRPT rho = 2 pass with two concurrent
// installment streams and an obs::TraceRecorder attached, writes the
// timeline as Chrome trace-event JSON (load it in ui.perfetto.dev), and
// prints the multi-job ASCII gantt plus the time-attribution summary.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <vector>

#include "obs/export.hpp"
#include "obs/trace.hpp"
#include "qos/admission.hpp"
#include "qos/metrics.hpp"
#include "qos/policy.hpp"
#include "qos/server.hpp"
#include "qos/tenant.hpp"
#include "sim/trace.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace nldl;

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const auto p = static_cast<std::size_t>(args.get_int("p", 8));
  const double rho_load = args.get_double("rho-load", 0.9);
  const double jobs_target = args.get_double("jobs", 80.0);
  const auto seed = static_cast<std::uint64_t>(
      args.get_int("seed", static_cast<long long>(util::Rng::kDefaultSeed)));

  const platform::Platform plat = platform::Platform::two_class(p, 1.0, 4.0);

  qos::ServiceModel reference;
  reference.plan.rounds = 4;
  // The same three tenants bench_qos sweeps (qos::reference_tenants).
  std::vector<qos::TenantSpec> tenants = qos::reference_tenants();
  const double t_ref =
      qos::mean_predicted_service(tenants, plat, reference);
  const double rate_total = rho_load / t_ref;
  for (qos::TenantSpec& tenant : tenants) tenant.rate *= rate_total;
  const double horizon = jobs_target / rate_total;

  util::Rng rng(seed);
  const auto jobs =
      qos::generate_tenant_traffic(tenants, plat, reference, horizon, rng);
  std::size_t with_deadline = 0;
  for (const auto& job : jobs) {
    if (job.has_deadline()) ++with_deadline;
  }
  std::printf("QoS demo: %zu jobs (%zu with SLO deadlines) from 3 tenants "
              "over %.0f s on %zu workers, target load %.2f\n\n",
              jobs.size(), with_deadline, horizon, p, rho_load);

  const std::vector<qos::PolicyKind> kinds{
      qos::PolicyKind::kFcfs, qos::PolicyKind::kSpmf,
      qos::PolicyKind::kSrpt, qos::PolicyKind::kEdf, qos::PolicyKind::kWfq};

  for (const double restart : {0.0, 2.0}) {
    qos::ServerOptions options;
    options.service = reference;
    options.service.plan.restart_load_fraction = restart;
    options.admission.mode = qos::AdmissionMode::kReject;
    const qos::Server server(plat, options);

    std::printf("--- restart fraction rho = %.0f (%s) ---\n", restart,
                restart == 0.0 ? "free checkpoints"
                               : "nonlinear restart surcharge");
    util::Table table({"policy", "rejected", "miss rate", "goodput",
                       "jain", "preempt/job", "restart%", "p95 lat"});
    for (const qos::PolicyKind kind : kinds) {
      const auto policy =
          qos::make_policy(kind, qos::tenant_weights(tenants));
      const qos::QosMetrics metrics =
          qos::summarize(server.run(jobs, *policy), plat.size(),
                         qos::tenant_weights(tenants));
      table.row()
          .cell(qos::to_string(kind))
          .cell(metrics.rejected)
          .cell(metrics.miss_rate, 3)
          .cell(metrics.goodput, 2)
          .cell(metrics.jain_fairness, 3)
          .cell(metrics.preemptions_per_job, 2)
          .cell(100.0 * metrics.restart_share, 1)
          .cell(metrics.service.p95_latency, 1)
          .done();
    }
    table.print(std::cout);
    std::printf("\n");
  }

  std::printf(
      "Free restarts reward preemption (SRPT/EDF); the nonlinear\n"
      "surcharge makes every resumed slice re-pay w*X^alpha, and the\n"
      "preemptive policies' advantage shrinks or flips — no free lunch.\n");

  const std::string trace_path = args.get_string("trace", "");
  if (!trace_path.empty()) {
    // One extra traced pass: SRPT under rho = 2 with two concurrent
    // installment streams, so the timeline carries real per-worker
    // transfer/compute spans (tracing never changes results).
    qos::ServerOptions options;
    options.service = reference;
    options.service.plan.restart_load_fraction = 2.0;
    options.admission.mode = qos::AdmissionMode::kReject;
    options.concurrency = 2;
    obs::TraceRecorder recorder;
    options.trace = &recorder;
    const qos::Server server(plat, options);
    const auto policy =
        qos::make_policy(qos::PolicyKind::kSrpt, qos::tenant_weights(tenants));
    (void)server.run(jobs, *policy);

    std::ofstream out(trace_path);
    obs::ChromeTraceOptions trace_options;
    trace_options.workers = p;
    trace_options.label = "qos demo srpt rho=2";
    obs::write_chrome_trace(out, recorder.events(), trace_options);
    std::printf("\ntrace written to %s (%zu events) — load it in "
                "ui.perfetto.dev\n\n",
                trace_path.c_str(), recorder.size());
    std::fputs(sim::ascii_gantt(recorder.events(), p).c_str(), stdout);
    std::fputs(obs::render_attribution(
                   obs::attribute_time(recorder.events(), p),
                   "srpt rho=2 conc=2")
                   .c_str(),
               stdout);
  }
  return 0;
}
