// Online scheduling demo: one 30-second burst of Poisson traffic, three
// schedulers side by side.
//
// The same job stream (mixed linear/quadratic divisible loads) is served
// by FCFS-exclusive, processor-partitioning fair share, and
// shortest-predicted-makespan-first, and the resulting service metrics
// and per-job latencies are compared.
//
//   ./online_demo [--p=8] [--rho=0.85] [--horizon=30] [--seed=N]
//                 [--trace=FILE]
//
// --trace=FILE re-runs the fair-share pass with an obs::TraceRecorder
// attached, writes the timeline as Chrome trace-event JSON (load it in
// ui.perfetto.dev), and prints the multi-job ASCII gantt plus the
// time-attribution summary.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <vector>

#include "obs/export.hpp"
#include "obs/trace.hpp"
#include "online/arrivals.hpp"
#include "online/metrics.hpp"
#include "online/scheduler.hpp"
#include "online/server.hpp"
#include "platform/platform.hpp"
#include "sim/trace.hpp"
#include "util/chart.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace nldl;

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const auto p = static_cast<std::size_t>(args.get_int("p", 8));
  const double rho = args.get_double("rho", 0.85);
  const double horizon = args.get_double("horizon", 30.0);
  const auto seed = static_cast<std::uint64_t>(
      args.get_int("seed", static_cast<long long>(util::Rng::kDefaultSeed)));

  const platform::Platform plat = platform::Platform::two_class(p, 1.0, 4.0);

  online::JobMix mix;
  mix.load_lo = 5.0;
  mix.load_hi = 15.0;
  mix.alphas = {1.0, 2.0};
  mix.alpha_weights = {0.5, 0.5};

  // Calibrate the Poisson rate so FCFS-exclusive service runs at ~rho.
  const double rate = rho / online::mean_predicted_makespan(mix, plat);

  const online::PoissonArrivals arrivals(rate, mix);
  util::Rng rng(seed);
  const auto jobs = arrivals.generate(horizon, rng);

  std::printf("Online demo: %zu jobs over %.0f s (Poisson, rate %.2f/s, "
              "target rho %.2f) on %zu workers\n\n",
              jobs.size(), horizon, rate, rho, p);

  const online::Server server(plat);
  const std::vector<online::SchedulerKind> kinds{
      online::SchedulerKind::kFcfs, online::SchedulerKind::kFairShare,
      online::SchedulerKind::kSpmf};

  util::Table table({"scheduler", "jobs", "mean wait", "p50 lat", "p95 lat",
                     "p99 lat", "mean slowdown", "utilization"});
  util::AsciiChart chart(72, 16);
  chart.set_x_label("arrival time (s)");
  chart.set_y_label("latency (s)");
  const char glyphs[] = {'F', 'P', 'M'};

  for (std::size_t k = 0; k < kinds.size(); ++k) {
    const auto scheduler = online::make_scheduler(kinds[k], 4);
    const auto stats = server.run(jobs, *scheduler);
    const auto metrics = online::summarize(stats, plat.size());
    table.row()
        .cell(online::to_string(kinds[k]))
        .cell(metrics.jobs)
        .cell(metrics.mean_wait, 2)
        .cell(metrics.p50_latency, 2)
        .cell(metrics.p95_latency, 2)
        .cell(metrics.p99_latency, 2)
        .cell(metrics.mean_slowdown, 3)
        .cell(metrics.utilization, 3)
        .done();

    std::vector<double> xs;
    std::vector<double> ys;
    for (const auto& record : stats) {
      xs.push_back(record.job.arrival);
      ys.push_back(record.latency());
    }
    chart.add_series(online::to_string(kinds[k]), glyphs[k], xs, ys);
  }

  table.print(std::cout);
  std::printf("\nPer-job latency by arrival time:\n\n%s\n",
              chart.render().c_str());
  std::printf("F = fcfs-exclusive, P = fair-share partitions, M = "
              "shortest-predicted-makespan first\n");

  const std::string trace_path = args.get_string("trace", "");
  if (!trace_path.empty()) {
    // Traced fair-share re-run on the same stream (tracing never changes
    // results — the records are bit-identical to the untraced pass).
    obs::TraceRecorder recorder;
    online::ServerOptions options;
    options.trace = &recorder;
    const online::Server traced_server(plat, options);
    const online::FairShareScheduler fair(4);
    (void)traced_server.run(jobs, fair);

    std::ofstream out(trace_path);
    obs::ChromeTraceOptions trace_options;
    trace_options.workers = p;
    trace_options.label = "online demo fair-share";
    obs::write_chrome_trace(out, recorder.events(), trace_options);
    std::printf("\ntrace written to %s (%zu events) — load it in "
                "ui.perfetto.dev\n\n",
                trace_path.c_str(), recorder.size());
    std::fputs(sim::ascii_gantt(recorder.events(), p).c_str(), stdout);
    std::fputs(obs::render_attribution(
                   obs::attribute_time(recorder.events(), p), "fair-share")
                   .c_str(),
               stdout);
  }
  return 0;
}
