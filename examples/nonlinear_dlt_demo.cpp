// The "no free lunch" theorem, visualized: distribute a quadratic workload
// with optimal DLT allocations and watch the covered fraction vanish as
// workers are added — then contrast with a linear workload, where DLT
// covers everything.
//
//   ./nonlinear_dlt_demo [--n=1000] [--alpha=2] [--p=8]
#include <cstdio>
#include <iostream>

#include "core/nldl.hpp"
#include "util/cli.hpp"

using namespace nldl;

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const double n = args.get_double("n", 1000.0);
  const double alpha = args.get_double("alpha", 2.0);
  const auto p = static_cast<std::size_t>(args.get_int("p", 8));

  std::printf("=== Section 2: one optimal DLT round on a workload of cost "
              "N^%.1f ===\n\n", alpha);

  // Show the actual schedule on a small platform first.
  const auto plat = platform::Platform::homogeneous(p, 1.0, 1.0);
  const auto alloc = dlt::nonlinear_parallel_single_round(plat, n, alpha);
  const sim::Engine engine(plat, sim::EngineOptions{alpha});
  const auto result =
      engine.run(alloc.to_schedule(), sim::CommModelKind::kParallelLinks);
  std::printf("Gantt of the round on p = %zu homogeneous workers "
              "('-' receive, '#' compute):\n\n%s\n",
              p, sim::ascii_gantt(plat, result, 64).c_str());
  std::printf("every worker gets N/p = %.1f load units and finishes at "
              "t = %.1f\n\n", n / double(p), result.makespan);

  // The punchline table.
  std::printf("fraction of the total work W = N^%.1f left undone by the "
              "round:\n\n", alpha);
  util::Table table({"p", "remaining fraction", "1 - 1/p^(a-1)"});
  for (const std::size_t workers : {2UL, 4UL, 16UL, 64UL, 256UL, 1024UL}) {
    const auto plat_w = platform::Platform::homogeneous(workers, 1.0, 1.0);
    const auto alloc_w =
        dlt::nonlinear_parallel_single_round(plat_w, n, alpha);
    table.row()
        .cell(workers)
        .cell(alloc_w.remaining_fraction, 6)
        .cell(dlt::remaining_fraction_homogeneous(workers, alpha), 6)
        .done();
  }
  table.print(std::cout);
  std::printf("\n=> adding workers makes the DLT-covered share *smaller*: "
              "there is no free lunch.\n");

  // Contrast: linear workload.
  const auto linear = dlt::nonlinear_parallel_single_round(plat, n, 1.0);
  std::printf("\ncontrast, alpha = 1 (classical divisible load): remaining "
              "fraction = %.6f — DLT covers everything.\n",
              linear.remaining_fraction);

  // And the fix for genuinely nonlinear jobs (Section 4): replicate data
  // and partition cleverly instead.
  std::printf("\nSection 4's answer for alpha = 2 workloads: replicate "
              "inputs and use heterogeneity-aware partitioning\n(see "
              "quickstart and outer_product_cluster examples).\n");
  return 0;
}
