// A guided tour of the nldl extensions that go beyond the paper's core
// experiments: multi-round distribution, return messages, straggler
// speculation, the recursive-bisection partitioner, and the 2.5D matmul
// model. Each section prints a small self-contained demonstration.
//
//   ./extensions_tour [--seed=S]
#include <cstdio>
#include <iostream>
#include <numeric>

#include "core/nldl.hpp"
#include "util/cli.hpp"

using namespace nldl;

namespace {

void tour_multi_round() {
  std::printf("--- 1. Multi-round distribution (Section 1.2's 'multiple "
              "rounds') ---\n");
  const auto plat = platform::Platform::homogeneous(4, 0.5, 1.0);
  const double single =
      dlt::uniform_multi_round(plat, 100.0, 1).simulated_makespan;
  const auto best = dlt::best_multi_round(plat, 100.0, 16);
  std::printf("one-port star, 4 workers, c/w = 0.5: single round %.2f -> "
              "best plan (R = %zu) %.2f (-%.1f%%)\n\n",
              single, best.rounds, best.simulated_makespan,
              100.0 * (1.0 - best.simulated_makespan / single));
}

void tour_return_messages() {
  std::printf("--- 2. Return messages (refs [28-30], set aside by the "
              "paper) ---\n");
  const auto plat = platform::Platform::homogeneous(4, 0.2, 1.0);
  std::vector<std::size_t> order(plat.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  for (const double delta : {0.25, 1.0}) {
    const auto ideal = dlt::linear_parallel_with_return(plat, 100.0, delta);
    const auto fifo =
        dlt::one_port_fifo_with_return(plat, 100.0, delta, order);
    const auto lifo =
        dlt::one_port_lifo_with_return(plat, 100.0, delta, order);
    std::printf("delta = %.2f: parallel-links %.2f | one-port FIFO %.2f | "
                "LIFO %.2f\n",
                delta, ideal.makespan, fifo.makespan, lifo.makespan);
  }
  std::printf("\n");
}

void tour_speculation() {
  std::printf("--- 3. Stragglers and speculative re-execution (Section "
              "1.1's MapReduce resilience) ---\n");
  const auto tasks = mapreduce::outer_product_tasks(240, 24);
  mapreduce::StragglerConfig config;
  config.speeds = {1.0, 1.0, 1.0, 1.0};
  config.slowdown = {1.0, 1.0, 1.0, 10.0};
  const auto plain = mapreduce::run_with_stragglers(tasks, config);
  auto spec = config;
  spec.speculative_execution = true;
  const auto backed = mapreduce::run_with_stragglers(tasks, spec);
  std::printf("worker 4 slowed 10x: makespan %.1f -> %.1f with backups "
              "(%zu launched, %zu won)\n\n",
              plain.makespan, backed.makespan, backed.backup_launches,
              backed.backups_won);
}

void tour_bisection() {
  std::printf("--- 4. Recursive bisection vs PERI-SUM ---\n");
  util::Rng rng(7);
  const auto speeds =
      platform::make_platform(platform::SpeedModel::kLogNormal, 24, rng)
          .speeds();
  const auto dp = partition::peri_sum_partition(speeds);
  const auto bis = partition::recursive_bisection_partition(speeds);
  const double lb = partition::comm_lower_bound_unit(speeds);
  std::printf("24 lognormal workers: PERI-SUM %.4f x LB | bisection %.4f "
              "x LB (sum objective)\n",
              dp.total_half_perimeter / lb,
              bis.total_half_perimeter / lb);
  std::printf("max half-perimeter:   PERI-SUM %.4f      | bisection "
              "%.4f\n\n",
              dp.max_half_perimeter, bis.max_half_perimeter);
}

void tour_25d() {
  std::printf("--- 5. 2.5D matmul (ref [42], the paper's 'notable "
              "exception') ---\n");
  const double n = 8192.0;
  for (const std::size_t c : {1UL, 2UL, 4UL}) {
    const std::size_t p = 16 * c;
    const linalg::Matmul25DParams params{p, c};
    std::printf("p = %2zu, c = %zu: %.3g words/proc (memory %.1fx the "
                "minimal N^2/p)\n",
                p, c, linalg::matmul_25d_words_per_proc(n, params),
                linalg::matmul_25d_memory_per_proc(n, params) /
                    (n * n / double(p)));
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  (void)args;
  std::printf("=== nldl extensions tour ===\n\n");
  tour_multi_round();
  tour_return_messages();
  tour_speculation();
  tour_bisection();
  tour_25d();
  std::printf("Each feature has full API docs in its header and dedicated "
              "tests under tests/.\n");
  return 0;
}
