// Outer product on a simulated heterogeneous cluster, end to end:
// partition → ship → compute (multi-threaded) → verify → account.
//
//   ./outer_product_cluster [--n=480] [--k=16] [--seed=S]
//
// Reproduces the Section 4.1 story on real data: both distributions
// compute the same a·bᵀ, but the PERI-SUM rectangles ship several times
// fewer input elements than demand-driven square blocks as platform
// heterogeneity (k) grows.
#include <cmath>
#include <cstdio>
#include <iostream>

#include "core/nldl.hpp"
#include "util/cli.hpp"

using namespace nldl;

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const auto n = static_cast<std::size_t>(args.get_int("n", 480));
  const double k = args.get_double("k", 16.0);
  const auto seed = static_cast<std::uint64_t>(
      args.get_int("seed", static_cast<long long>(util::Rng::kDefaultSeed)));

  // Two-class platform: half slow (speed 1), half fast (speed k).
  const auto plat = platform::Platform::two_class(8, 1.0, k);
  const auto speeds = plat.speeds();
  std::printf("platform: 8 workers, speeds (1,..,1,%.0f,..,%.0f)\n", k, k);

  util::Rng rng(seed);
  std::vector<double> a(n);
  std::vector<double> b(n);
  for (auto& v : a) v = rng.uniform(-1.0, 1.0);
  for (auto& v : b) v = rng.uniform(-1.0, 1.0);

  util::ThreadPool pool(2);

  // Heterogeneous Blocks: one PERI-SUM rectangle per worker.
  const auto part = partition::peri_sum_partition(speeds);
  const auto layout =
      partition::discretize(part, static_cast<long long>(n));
  if (!partition::verify_exact_cover(layout)) {
    std::fprintf(stderr, "layout does not tile the grid!\n");
    return 1;
  }
  const auto het =
      linalg::outer_product_partitioned(a, b, layout, speeds, &pool);

  // Homogeneous Blocks: demand-driven squares sized for the slowest
  // worker (rounded so the block divides n).
  const auto formula =
      partition::homogeneous_blocks_formula(speeds, double(n));
  auto block = std::max(1LL, static_cast<long long>(formula.block_dim));
  while (static_cast<long long>(n) % block != 0) --block;
  const auto hom =
      linalg::outer_product_blocked(a, b, block, speeds, &pool);

  // Verify both against the serial reference.
  const auto reference = linalg::outer_product_serial(a, b);
  std::printf("verification: het max|err| = %.2e, hom max|err| = %.2e\n\n",
              het.result.max_abs_diff(reference),
              hom.result.max_abs_diff(reference));

  util::Table table({"distribution", "elements shipped", "x lower bound",
                     "imbalance e"});
  const double lb = partition::comm_lower_bound(speeds, double(n));
  table.row()
      .cell(std::string("Comm_het (PERI-SUM rectangles)"))
      .cell(het.total_elements)
      .cell(double(het.total_elements) / lb, 3)
      .cell(het.imbalance, 4)
      .done();
  table.row()
      .cell(std::string("Comm_hom (demand-driven blocks)"))
      .cell(hom.total_elements)
      .cell(double(hom.total_elements) / lb, 3)
      .cell(hom.imbalance, 4)
      .done();
  table.print(std::cout);

  const double rho =
      double(hom.total_elements) / double(het.total_elements);
  std::printf("\nmeasured rho = %.2f  (paper bound (1+k)/(1+sqrt k) = "
              "%.2f, sqrt(k)-1 = %.2f)\n",
              rho, core::rho_two_class_bound(k), std::sqrt(k) - 1.0);
  return 0;
}
