// Shared-master contention demo: what happens to concurrent scheduling
// when the slots stop enjoying private master ports.
//
// Part 1 (online/): the same Poisson burst is served by fair share under
// a capped master twice — once with the historical private-port model
// (each slot's transfers replayed in a private engine run, so the cap
// applies per slot) and once with MasterMode::kSharedMaster (one engine
// run per busy period multiplexing every slot's time-released chunks, so
// the cap is genuinely shared). Linear and quadratic streams are shown
// side by side: the linear stream exposes how much of fair share's win
// was a private-port artifact, the quadratic stream shows the paper's
// collapse deepening.
//
// Part 2 (qos/): the preemptive server with concurrency = 2 serves
// installments of two different jobs on disjoint worker subsets at the
// same time, contending under the same shared capacity.
//
//   ./contention_demo [--p=8] [--rho=0.7] [--jobs=80] [--seed=N]
//                     [--trace=FILE]
//
// --trace=FILE attaches an obs::TraceRecorder to Part 2's concurrency = 2
// run, writes the timeline as Chrome trace-event JSON (load it in
// ui.perfetto.dev), and prints the multi-job ASCII gantt plus the
// time-attribution summary.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <vector>

#include "obs/export.hpp"
#include "obs/trace.hpp"
#include "online/arrivals.hpp"
#include "online/metrics.hpp"
#include "online/scheduler.hpp"
#include "online/server.hpp"
#include "platform/platform.hpp"
#include "qos/policy.hpp"
#include "qos/server.hpp"
#include "sim/trace.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace nldl;

namespace {

online::JobMix single_class_mix(double alpha) {
  online::JobMix mix;
  mix.load_lo = 50.0;
  mix.load_hi = 150.0;
  mix.alphas = {alpha};
  mix.alpha_weights = {1.0};
  return mix;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const auto p = static_cast<std::size_t>(args.get_int("p", 8));
  const double rho = args.get_double("rho", 0.7);
  const double jobs_target = args.get_double("jobs", 80.0);
  const auto seed = static_cast<std::uint64_t>(
      args.get_int("seed", static_cast<long long>(util::Rng::kDefaultSeed)));

  const platform::Platform plat = platform::Platform::two_class(p, 1.0, 4.0);
  constexpr double kCapacity = 2.0;

  std::printf("=== Part 1: fair share, private ports vs one shared master "
              "(capacity %.1f, load %.1f) ===\n\n",
              kCapacity, rho);

  util::Table table({"traffic", "master", "jobs", "mean wait",
                     "p95 lat", "mean slowdown", "p99 slowdown", "util"});
  for (const double alpha : {1.0, 2.0}) {
    const online::JobMix mix = single_class_mix(alpha);
    const double rate = rho / online::mean_predicted_makespan(mix, plat);
    util::Rng rng(seed);
    const auto jobs = online::PoissonArrivals(rate, mix)
                          .generate(jobs_target / rate, rng);

    for (const online::MasterMode master :
         {online::MasterMode::kPrivatePort,
          online::MasterMode::kSharedMaster}) {
      online::ServerOptions options;
      options.comm = sim::CommModelKind::kBoundedMultiport;
      options.capacity = kCapacity;
      options.master = master;
      const online::Server server(plat, options);
      const online::FairShareScheduler fair(4);
      const auto metrics =
          online::summarize(server.run(jobs, fair), plat.size());
      table.row()
          .cell(alpha == 1.0 ? "linear (a=1)" : "quadratic (a=2)")  // nldl-lint: allow(double-eq): alpha is an exact configuration constant
          .cell(online::to_string(master))
          .cell(metrics.jobs)
          .cell(metrics.mean_wait, 1)
          .cell(metrics.p95_latency, 1)
          .cell(metrics.mean_slowdown, 3)
          .cell(metrics.p99_slowdown, 3)
          .cell(metrics.utilization, 3)
          .done();
    }
  }
  table.print(std::cout);
  std::printf("\nFair share's advantage was partly the private ports' free "
              "lunch: share the master and the\nlinear stream pays the "
              "full contention bill, while the quadratic collapse gets "
              "deeper still.\n");

  std::printf("\n=== Part 2: qos server, 2 concurrent installment streams "
              "on disjoint subsets ===\n\n");

  const std::vector<online::Job> qos_jobs{
      {0, 0.0, 120.0, 2.0}, {1, 0.0, 120.0, 2.0}, {2, 5.0, 40.0, 1.0}};
  util::Table qos_table({"concurrency", "job", "dispatch", "finish",
                         "service", "preemptions"});
  obs::TraceRecorder recorder;
  const std::string trace_path = args.get_string("trace", "");
  for (const std::size_t concurrency : {std::size_t{1}, std::size_t{2}}) {
    qos::ServerOptions options;
    options.service.comm = sim::CommModelKind::kBoundedMultiport;
    options.service.capacity = kCapacity;
    options.service.plan.rounds = 3;
    options.service.plan.restart_load_fraction = 0.25;
    options.admission.mode = qos::AdmissionMode::kAdmitAll;
    options.concurrency = concurrency;
    if (concurrency == 2 && !trace_path.empty()) options.trace = &recorder;
    const qos::Server server(plat, options);
    qos::SrptPolicy srpt;
    const auto records = server.run(qos_jobs, srpt);
    for (const qos::JobRecord& record : records) {
      qos_table.row()
          .cell(concurrency)
          .cell(record.job.id)
          .cell(record.dispatch, 1)
          .cell(record.finish, 1)
          .cell(record.service_time, 1)
          .cell(record.preemptions)
          .done();
    }
  }
  qos_table.print(std::cout);
  std::printf("\nWith concurrency 2 both quadratic jobs start at t = 0 on "
              "half-platform subsets and the short\nlinear job slots in at "
              "a chunk boundary — all under one honestly shared master "
              "capacity.\n");

  if (!trace_path.empty()) {
    std::ofstream out(trace_path);
    obs::ChromeTraceOptions trace_options;
    trace_options.workers = p;
    trace_options.label = "contention demo qos conc=2";
    obs::write_chrome_trace(out, recorder.events(), trace_options);
    std::printf("\ntrace written to %s (%zu events) — load it in "
                "ui.perfetto.dev\n\n",
                trace_path.c_str(), recorder.size());
    std::fputs(sim::ascii_gantt(recorder.events(), p).c_str(), stdout);
    std::fputs(obs::render_attribution(
                   obs::attribute_time(recorder.events(), p), "qos conc=2")
                   .c_str(),
               stdout);
  }
  return 0;
}
