// The Conclusion's proposal, demonstrated: adding task↔data affinity to a
// demand-driven MapReduce scheduler recovers part of the Comm_het saving
// without changing the programming model.
//
//   ./affinity_scheduler_demo [--n=240] [--block=12] [--p=6] [--k=8]
#include <cstdio>
#include <iostream>

#include "core/nldl.hpp"
#include "util/cli.hpp"

using namespace nldl;

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const auto n = args.get_int("n", 240);
  const auto block = args.get_int("block", 12);
  const auto p = static_cast<std::size_t>(args.get_int("p", 6));
  const double k = args.get_double("k", 8.0);
  if (n % block != 0) {
    std::fprintf(stderr, "n must be divisible by block\n");
    return 1;
  }

  const auto plat = platform::Platform::two_class(p, 1.0, k);
  const auto speeds = plat.speeds();
  std::printf("=== Demand-driven MapReduce scheduling of the outer "
              "product, N = %lld, blocks %lldx%lld ===\n",
              static_cast<long long>(n), static_cast<long long>(block),
              static_cast<long long>(block));
  std::printf("platform: %zu workers, two-class speeds (1 vs %.0f)\n\n", p,
              k);

  const auto tasks = mapreduce::outer_product_tasks(n, block);
  const double no_cache = double(tasks.size()) * 2.0 * double(block);

  mapreduce::ClusterConfig config;
  config.speeds = speeds;
  config.bytes_per_block = double(block);

  const auto blind = mapreduce::run_cluster(tasks, config);
  auto aware_cfg = config;
  aware_cfg.affinity_aware = true;
  const auto aware = mapreduce::run_cluster(tasks, aware_cfg);

  const double lb = partition::comm_lower_bound(speeds, double(n));
  const auto het = core::evaluate_strategy(
      core::Strategy::kHeterogeneousBlocks, speeds, double(n));

  util::Table table({"scheduler", "elements shipped", "x lower bound",
                     "imbalance e"});
  table.row()
      .cell(std::string("no reuse (Comm_hom accounting)"))
      .cell(no_cache, 0)
      .cell(no_cache / lb, 3)
      .cell(blind.imbalance, 3)
      .done();
  table.row()
      .cell(std::string("demand-driven + caches"))
      .cell(blind.total_bytes, 0)
      .cell(blind.total_bytes / lb, 3)
      .cell(blind.imbalance, 3)
      .done();
  table.row()
      .cell(std::string("demand-driven + affinity"))
      .cell(aware.total_bytes, 0)
      .cell(aware.total_bytes / lb, 3)
      .cell(aware.imbalance, 3)
      .done();
  table.row()
      .cell(std::string("PERI-SUM rectangles (Comm_het)"))
      .cell(het.comm_volume, 0)
      .cell(het.ratio_to_lower_bound, 3)
      .cell(het.load_imbalance, 3)
      .done();
  table.print(std::cout);

  std::printf("\nper-worker bytes under the two schedulers:\n");
  for (std::size_t w = 0; w < p; ++w) {
    std::printf("  worker %zu (speed %4.0f): demand-driven %7.0f | "
                "affinity %7.0f\n",
                w + 1, speeds[w], blind.bytes_per_worker[w],
                aware.bytes_per_worker[w]);
  }
  std::printf("\nAffinity-aware pulls close part of the gap toward "
              "Comm_het while keeping MapReduce's\ndemand-driven fault "
              "tolerance — the paper's suggested middle road.\n");
  return 0;
}
