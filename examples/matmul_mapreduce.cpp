// Matrix multiplication through the mini MapReduce engine vs the
// heterogeneity-aware SUMMA — the Figure 3 algorithm, executed.
//
//   ./matmul_mapreduce [--n=96] [--block=8] [--seed=S]
//
// Shows three ways to run C = A·B and what each one ships:
//   1. MapReduce blocked job (engine): data replicated N/b-fold;
//   2. demand-driven cluster simulation of those tasks (with caches);
//   3. outer-product SUMMA on a PERI-SUM layout (Section 4.2).
#include <cstdio>
#include <iostream>

#include "core/nldl.hpp"
#include "util/cli.hpp"

using namespace nldl;

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const auto n = static_cast<std::size_t>(args.get_int("n", 96));
  const auto block = static_cast<std::size_t>(args.get_int("block", 8));
  const auto seed = static_cast<std::uint64_t>(
      args.get_int("seed", static_cast<long long>(util::Rng::kDefaultSeed)));
  if (n % block != 0) {
    std::fprintf(stderr, "n (%zu) must be divisible by block (%zu)\n", n,
                 block);
    return 1;
  }

  util::Rng rng(seed);
  const auto a = linalg::Matrix::random(n, n, rng);
  const auto b = linalg::Matrix::random(n, n, rng);
  const auto reference = linalg::multiply_naive(a, b);
  const std::vector<double> speeds{1.0, 2.0, 3.0, 10.0};
  std::printf("C = A*B with N = %zu, block = %zu, speeds {1,2,3,10}\n\n", n,
              block);

  util::ThreadPool pool(2);

  // 1. The MapReduce job (Figure 3's computation as map/shuffle/reduce).
  mapreduce::JobConfig config;
  config.pool = &pool;
  config.num_reducers = 4;
  config.use_combiner = true;
  mapreduce::Counters counters;
  const auto mr = mapreduce::matmul_mapreduce(a, b, block, config, &counters);
  std::printf("[MapReduce engine]   map tasks %zu, shuffled records %zu, "
              "max|err| %.2e\n",
              counters.map_tasks, counters.combine_output_records,
              mr.max_abs_diff(reference));
  const double replicated = mapreduce::matmul_replication_volume(
      double(n), double(block));
  std::printf("                     input elements shipped (no reuse): "
              "%.0f  (replication %.1fx the 2N^2 input)\n",
              replicated, replicated / (2.0 * double(n) * double(n)));

  // 2. The same tasks on the simulated heterogeneous cluster.
  const auto tasks = mapreduce::matmul_tasks(
      static_cast<long long>(n), static_cast<long long>(block));
  mapreduce::ClusterConfig cluster;
  cluster.speeds = speeds;
  cluster.bytes_per_block = double(block) * double(block);
  const auto blind = mapreduce::run_cluster(tasks, cluster);
  auto aware_cfg = cluster;
  aware_cfg.affinity_aware = true;
  const auto aware = mapreduce::run_cluster(tasks, aware_cfg);
  std::printf("[cluster simulation] demand-driven: %.0f elements, e = "
              "%.3f | affinity-aware: %.0f elements, e = %.3f\n",
              blind.total_bytes, blind.imbalance, aware.total_bytes,
              aware.imbalance);

  // 3. Heterogeneity-aware SUMMA (Section 4.2).
  const auto layout = partition::discretize(
      partition::peri_sum_partition(speeds), static_cast<long long>(n));
  const auto summa =
      linalg::matmul_outer_product(a, b, layout, speeds, block, &pool);
  std::printf("[PERI-SUM SUMMA]     %lld elements shipped, e = %.3f, "
              "max|err| %.2e\n",
              summa.total_elements, summa.imbalance,
              summa.result.max_abs_diff(reference));

  std::printf("\nSummary (elements of A/B moved):\n");
  util::Table table({"method", "elements", "note"});
  table.row()
      .cell(std::string("MapReduce, no reuse"))
      .cell(replicated, 0)
      .cell(std::string("2N^3/b — the paper's replication cost"))
      .done();
  table.row()
      .cell(std::string("MapReduce + worker caches"))
      .cell(blind.total_bytes, 0)
      .cell(std::string("demand-driven pulls"))
      .done();
  table.row()
      .cell(std::string("MapReduce + affinity"))
      .cell(aware.total_bytes, 0)
      .cell(std::string("the Conclusion's proposal"))
      .done();
  table.row()
      .cell(std::string("PERI-SUM SUMMA"))
      .cell(double(summa.total_elements), 0)
      .cell(std::string("N x sum of half-perimeters"))
      .done();
  table.print(std::cout);
  return 0;
}
