// Quickstart: evaluate the paper's three data-distribution strategies on a
// heterogeneous platform in ~30 lines of API.
//
//   ./quickstart [--p=12] [--model=lognormal|uniform|homogeneous] [--seed=S]
#include <cstdio>
#include <iostream>

#include "core/nldl.hpp"
#include "util/cli.hpp"

using namespace nldl;

int main(int argc, char** argv) {
  const util::Args args(argc, argv);
  const auto p = static_cast<std::size_t>(args.get_int("p", 12));
  const auto seed = static_cast<std::uint64_t>(
      args.get_int("seed", static_cast<long long>(util::Rng::kDefaultSeed)));
  const std::string model_name = args.get_string("model", "lognormal");

  platform::SpeedModel model = platform::SpeedModel::kLogNormal;
  if (model_name == "uniform") model = platform::SpeedModel::kUniform;
  if (model_name == "homogeneous") model = platform::SpeedModel::kHomogeneous;

  // 1. Draw a heterogeneous star platform (Section 1.2 / 4.3 model).
  util::Rng rng(seed);
  const platform::Platform plat = platform::make_platform(model, p, rng);
  std::printf("platform: %zu workers, %s speeds, heterogeneity %.1fx\n\n",
              plat.size(), platform::to_string(model).c_str(),
              plat.heterogeneity());

  // 2. Evaluate all three strategies for an outer-product-style N² job.
  const double n = 10000.0;
  const auto evals = core::evaluate_all_strategies(plat.speeds(), n);

  util::Table table({"strategy", "comm volume", "x lower bound",
                     "imbalance e", "chunks", "k"});
  for (const auto& eval : evals) {
    table.row()
        .cell(core::to_string(eval.strategy))
        .cell(eval.comm_volume, 0)
        .cell(eval.ratio_to_lower_bound, 3)
        .cell(eval.load_imbalance, 4)
        .cell(eval.num_chunks)
        .cell(eval.refinement_k)
        .done();
  }
  table.print(std::cout);

  std::printf("\nlower bound: %.0f elements (2N * sum of sqrt(x_i))\n",
              partition::comm_lower_bound(plat.speeds(), n));
  std::printf("\nThe heterogeneity-aware PERI-SUM partition (Comm_het) "
              "ships close to the bound;\nMapReduce-style blocks pay the "
              "paper's 'no free lunch' replication price.\n");
  return 0;
}
