// Tests for the block-cyclic layout model (Section 4.2 virtualization).
#include "linalg/block_cyclic.hpp"

#include <gtest/gtest.h>

#include "util/assert.hpp"

namespace nldl::linalg {
namespace {

TEST(BlockCyclic, OwnerCyclesOverGrid) {
  const auto layout = make_block_cyclic(8, 2, 2, 2);
  // Block-rows: [0,1]→0, [2,3]→1, [4,5]→0, [6,7]→1 (mod 2).
  EXPECT_EQ(layout.owner(0, 0), (std::pair<std::size_t, std::size_t>{0, 0}));
  EXPECT_EQ(layout.owner(2, 0), (std::pair<std::size_t, std::size_t>{1, 0}));
  EXPECT_EQ(layout.owner(4, 6), (std::pair<std::size_t, std::size_t>{0, 1}));
  EXPECT_EQ(layout.owner(7, 7), (std::pair<std::size_t, std::size_t>{1, 1}));
}

TEST(BlockCyclic, RowColCountsPartitionN) {
  const auto layout = make_block_cyclic(10, 3, 2, 3);
  std::size_t rows = 0;
  for (std::size_t r = 0; r < 2; ++r) rows += layout.rows_of(r);
  EXPECT_EQ(rows, 10U);
  std::size_t cols = 0;
  for (std::size_t c = 0; c < 3; ++c) cols += layout.cols_of(c);
  EXPECT_EQ(cols, 10U);
}

TEST(BlockCyclic, UnevenTailBlocks) {
  // n = 7, block = 3: block-rows of sizes 3, 3, 1 cycle over 2 grid rows:
  // row 0 gets blocks 0 and 2 (3 + 1), row 1 gets block 1 (3).
  const auto layout = make_block_cyclic(7, 3, 2, 2);
  EXPECT_EQ(layout.rows_of(0), 4U);
  EXPECT_EQ(layout.rows_of(1), 3U);
}

TEST(BlockCyclic, CommMatchesClosedForm) {
  for (const std::size_t n : {8UL, 10UL, 64UL, 65UL}) {
    for (const std::size_t block : {1UL, 2UL, 7UL}) {
      for (const std::size_t pr : {1UL, 2UL, 3UL}) {
        for (const std::size_t pc : {1UL, 2UL, 4UL}) {
          const auto layout = make_block_cyclic(n, block, pr, pc);
          EXPECT_EQ(block_cyclic_matmul_comm(layout),
                    block_cyclic_matmul_comm_closed_form(layout))
              << "n=" << n << " b=" << block << " grid " << pr << "x" << pc;
        }
      }
    }
  }
}

TEST(BlockCyclic, VolumeIndependentOfBlockSize) {
  // The paper's virtualization claim: scattering blocks cyclically does
  // not change the aggregate communication volume.
  const auto coarse = make_block_cyclic(64, 32, 2, 2);
  const auto fine = make_block_cyclic(64, 1, 2, 2);
  EXPECT_EQ(block_cyclic_matmul_comm(coarse),
            block_cyclic_matmul_comm(fine));
}

TEST(BlockCyclic, SquareGridMinimizesVolume) {
  // n²(pr+pc) is minimized at pr = pc = √p for fixed p = pr·pc.
  const auto square = make_block_cyclic(64, 4, 4, 4);
  const auto skinny = make_block_cyclic(64, 4, 2, 8);
  const auto row = make_block_cyclic(64, 4, 1, 16);
  EXPECT_LT(block_cyclic_matmul_comm(square),
            block_cyclic_matmul_comm(skinny));
  EXPECT_LT(block_cyclic_matmul_comm(skinny),
            block_cyclic_matmul_comm(row));
}

TEST(BlockCyclic, RejectsBadShapes) {
  EXPECT_THROW((void)make_block_cyclic(0, 1, 1, 1),
               util::PreconditionError);
  EXPECT_THROW((void)make_block_cyclic(4, 0, 1, 1),
               util::PreconditionError);
  EXPECT_THROW((void)make_block_cyclic(4, 1, 0, 1),
               util::PreconditionError);
  const auto layout = make_block_cyclic(4, 1, 2, 2);
  EXPECT_THROW((void)layout.owner(4, 0), util::PreconditionError);
  EXPECT_THROW((void)layout.rows_of(2), util::PreconditionError);
}

}  // namespace
}  // namespace nldl::linalg
