// Unit tests for the qos subsystem: preemptable service plans, SLO
// admission, chunk-boundary policies, the preemptive server, multi-tenant
// traffic, and the QoS metrics.
//
// Two results are pinned here:
//   - zero-restart-cost equivalence: preemption at a chunk boundary
//     reproduces an uninterrupted run's completion time exactly when the
//     restart surcharge is zero;
//   - the no-free-lunch flip: with free restarts SRPT beats FCFS on mean
//     latency and deadline misses, and a nonlinear restart cost REVERSES
//     that ranking on the same job stream.
#include "qos/server.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "online/arrivals.hpp"
#include "qos/admission.hpp"
#include "qos/metrics.hpp"
#include "qos/plan.hpp"
#include "qos/policy.hpp"
#include "qos/tenant.hpp"
#include "util/assert.hpp"

namespace nldl::qos {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

online::Job make_job(std::size_t id, double arrival, double load,
                     double alpha, double deadline = kInf,
                     std::size_t tenant = 0) {
  online::Job job;
  job.id = id;
  job.arrival = arrival;
  job.load = load;
  job.alpha = alpha;
  job.deadline = deadline;
  job.tenant = tenant;
  return job;
}

ServiceModel make_service(std::size_t rounds, double restart_fraction) {
  ServiceModel service;
  service.plan.rounds = rounds;
  service.plan.restart_load_fraction = restart_fraction;
  return service;
}

// --- ServicePlan ------------------------------------------------------------

TEST(ServicePlan, UninterruptedServiceIsRoundsTimesCleanDuration) {
  const auto plat = platform::Platform::homogeneous(4);
  const ServiceModel service = make_service(4, 0.0);
  const auto model = make_model(service);
  InstallmentSolver solver(plat, *model, service);
  const online::Job job = make_job(0, 0.0, 80.0, 1.0);
  ServicePlan plan(solver, job, job.load);

  // Homogeneous linear: one installment of 20 load -> n_i = 5 each,
  // T = c·5 + w·5 = 10.
  EXPECT_NEAR(plan.clean_duration(), 10.0, 1e-6);
  EXPECT_DOUBLE_EQ(plan.total_duration(), 4.0 * plan.clean_duration());
  EXPECT_DOUBLE_EQ(plan.total_duration(),
                   predicted_service(service, plat, job.load, job.alpha));

  double served = 0.0;
  while (!plan.done()) {
    EXPECT_DOUBLE_EQ(plan.next_duration(), plan.clean_duration());
    served += plan.next_duration();
    plan.advance();
  }
  EXPECT_DOUBLE_EQ(served, plan.total_duration());
  EXPECT_EQ(plan.preemptions(), 0u);
  EXPECT_DOUBLE_EQ(plan.restart_time(), 0.0);
  EXPECT_DOUBLE_EQ(plan.remaining_load(), 0.0);
}

TEST(ServicePlan, ZeroRestartResumeIsBitIdenticalToUninterrupted) {
  // THE PINNED EQUIVALENCE: with restart cost zero, a plan paused and
  // resumed at a chunk boundary charges the exact same installment
  // durations as a plan that never yielded.
  const auto plat = platform::Platform::two_class(4, 1.0, 3.0);
  const ServiceModel service = make_service(3, 0.0);
  const auto model = make_model(service);
  InstallmentSolver solver(plat, *model, service);
  const online::Job job = make_job(0, 0.0, 90.0, 2.0);

  ServicePlan straight(solver, job, job.load);
  ServicePlan preempted(solver, job, job.load);

  double straight_total = 0.0;
  double preempted_total = 0.0;
  for (int round = 0; round < 3; ++round) {
    const double straight_duration = straight.next_duration();
    straight_total += straight_duration;
    straight.advance();
    preempted.pause();  // yield at every chunk boundary
    EXPECT_EQ(preempted.next_duration(), straight_duration);
    preempted_total += preempted.next_duration();
    preempted.advance();
  }
  EXPECT_EQ(straight_total, preempted_total);  // bitwise
  EXPECT_DOUBLE_EQ(preempted.restart_time(), 0.0);
  EXPECT_EQ(preempted.preemptions(), 2u);  // pauses after rounds 1 and 2
  EXPECT_EQ(straight.compute_time(), preempted.compute_time());
}

TEST(ServicePlan, RestartInflationChargesTheResumedInstallment) {
  const auto plat = platform::Platform::homogeneous(4);
  const ServiceModel service = make_service(2, 0.5);
  const auto model = make_model(service);
  InstallmentSolver solver(plat, *model, service);
  const online::Job job = make_job(0, 0.0, 80.0, 1.0);
  ServicePlan plan(solver, job, job.load);

  // Installment 40 -> T = 20; inflated installment 60 -> T = 30.
  EXPECT_NEAR(plan.clean_duration(), 20.0, 1e-6);
  plan.advance();
  plan.pause();
  EXPECT_NEAR(plan.next_duration(), 30.0, 1e-6);
  EXPECT_NEAR(plan.remaining_duration(), 30.0, 1e-6);
  plan.advance();
  EXPECT_TRUE(plan.done());
  EXPECT_NEAR(plan.restart_time(), 10.0, 1e-6);
  EXPECT_EQ(plan.preemptions(), 1u);
}

TEST(ServicePlan, RestartSurchargeIsSuperlinearInAlpha) {
  // The no-free-lunch core: the SAME restart fraction costs a quadratic
  // job proportionally more than a linear one, because the inflated
  // chunks pay w·X^alpha.
  const auto plat = platform::Platform::homogeneous(4);
  const ServiceModel service = make_service(2, 0.5);
  const auto model = make_model(service);
  InstallmentSolver solver(plat, *model, service);

  const auto surcharge_ratio = [&](double alpha) {
    const online::Job job = make_job(0, 0.0, 80.0, alpha);
    ServicePlan plan(solver, job, job.load);
    plan.advance();
    plan.pause();
    const double inflated = plan.next_duration();
    return (inflated - plan.clean_duration()) / plan.clean_duration();
  };
  const double linear = surcharge_ratio(1.0);
  const double quadratic = surcharge_ratio(2.0);
  // Linear: 30/20 - 1 = 50% (comm and compute both scale by 1.5).
  EXPECT_NEAR(linear, 0.5, 1e-6);
  // Quadratic: T(60) = 15 + 225 vs T(40) = 10 + 100 -> ~118%.
  EXPECT_GT(quadratic, 1.0);
  EXPECT_GT(quadratic, 1.5 * linear);
}

TEST(ServicePlan, PauseIsANoopOutsideService) {
  const auto plat = platform::Platform::homogeneous(2);
  const ServiceModel service = make_service(2, 1.0);
  const auto model = make_model(service);
  InstallmentSolver solver(plat, *model, service);
  const online::Job job = make_job(0, 0.0, 10.0, 1.0);
  ServicePlan plan(solver, job, job.load);

  plan.pause();  // never started: nothing dispatched, nothing to restart
  EXPECT_EQ(plan.preemptions(), 0u);
  EXPECT_DOUBLE_EQ(plan.next_duration(), plan.clean_duration());
  plan.advance();
  plan.pause();
  plan.pause();  // double pause while queued is ONE preemption
  EXPECT_EQ(plan.preemptions(), 1u);
  plan.advance();
  EXPECT_TRUE(plan.done());
  plan.pause();  // after completion: no-op
  EXPECT_EQ(plan.preemptions(), 1u);
}

TEST(ServicePlan, ValidatesItsInputs) {
  const auto plat = platform::Platform::homogeneous(2);
  const auto model = make_model(make_service(1, 0.0));
  const online::Job job = make_job(0, 0.0, 10.0, 1.0);
  // A zero-round plan is rejected at the solver.
  EXPECT_THROW(InstallmentSolver(plat, *model, make_service(0, 0.0)),
               util::PreconditionError);
  InstallmentSolver solver(plat, *model, make_service(2, 0.0));
  EXPECT_THROW(ServicePlan(solver, job, 0.0), util::PreconditionError);
  EXPECT_THROW(ServicePlan(solver, job, 20.0), util::PreconditionError);
  EXPECT_THROW((void)predicted_service(make_service(2, 0.0), plat, -1.0, 1.0),
               util::PreconditionError);
}

// --- Admission --------------------------------------------------------------

TEST(Admission, BestEffortJobsAreAlwaysAdmittedWhole) {
  const auto plat = platform::Platform::homogeneous(4);
  const AdmissionController admission(plat, make_service(2, 0.0));
  const AdmissionDecision decision =
      admission.decide(make_job(0, 0.0, 80.0, 1.0));
  EXPECT_TRUE(decision.admitted);
  EXPECT_FALSE(decision.degraded);
  EXPECT_DOUBLE_EQ(decision.served_load, 80.0);
  EXPECT_NEAR(decision.predicted_service, 40.0, 1e-6);
}

TEST(Admission, RejectsProvablyInfeasibleDeadlines) {
  const auto plat = platform::Platform::homogeneous(4);
  const ServiceModel service = make_service(2, 0.0);
  // Predicted service of 80 load is ~40; slack 30 cannot work even on an
  // idle platform.
  const online::Job infeasible = make_job(0, 10.0, 80.0, 1.0, 40.0);
  const online::Job feasible = make_job(1, 10.0, 80.0, 1.0, 60.0);

  const AdmissionController reject(plat, service,
                                   {AdmissionMode::kReject, 0.25, 32});
  EXPECT_FALSE(reject.decide(infeasible).admitted);
  EXPECT_TRUE(reject.decide(feasible).admitted);

  const AdmissionController admit_all(plat, service,
                                      {AdmissionMode::kAdmitAll, 0.25, 32});
  EXPECT_TRUE(admit_all.decide(infeasible).admitted);
}

TEST(Admission, DegradeShrinksTheLoadToTheSlack) {
  const auto plat = platform::Platform::homogeneous(4);
  const ServiceModel service = make_service(2, 0.0);
  const AdmissionController degrade(plat, service,
                                    {AdmissionMode::kDegrade, 0.25, 40});
  // Slack 30 fits 3/4 of the load (service is linear in load here:
  // T(f·80) = 40f <= 30 -> f = 0.75).
  const AdmissionDecision decision =
      degrade.decide(make_job(0, 0.0, 80.0, 1.0, 30.0));
  EXPECT_TRUE(decision.admitted);
  EXPECT_TRUE(decision.degraded);
  EXPECT_NEAR(decision.served_load, 60.0, 1e-4);
  EXPECT_LE(decision.predicted_service, 30.0 + 1e-9);

  // Below the floor fraction the job is rejected outright.
  const AdmissionDecision hopeless =
      degrade.decide(make_job(1, 0.0, 80.0, 1.0, 5.0));
  EXPECT_FALSE(hopeless.admitted);
  EXPECT_DOUBLE_EQ(hopeless.served_load, 0.0);

  // A feasible job passes through whole, not degraded.
  const AdmissionDecision whole =
      degrade.decide(make_job(2, 0.0, 80.0, 1.0, 50.0));
  EXPECT_TRUE(whole.admitted);
  EXPECT_FALSE(whole.degraded);
  EXPECT_DOUBLE_EQ(whole.served_load, 80.0);
}

// --- Policies ---------------------------------------------------------------

std::vector<Candidate> two_candidates(const online::Job& a,
                                      const online::Job& b,
                                      double remaining_a, double remaining_b,
                                      bool a_active) {
  std::vector<Candidate> ready(2);
  ready[0].job = &a;
  ready[0].remaining_duration = remaining_a;
  ready[0].total_duration = remaining_a;
  ready[0].started = a_active;
  ready[0].active = a_active;
  ready[1].job = &b;
  ready[1].remaining_duration = remaining_b;
  ready[1].total_duration = remaining_b;
  return ready;
}

TEST(Policy, FcfsNeverPreemptsAndServesArrivalOrder) {
  FcfsPolicy fcfs;
  const online::Job slow = make_job(0, 0.0, 100.0, 1.0);
  const online::Job fast = make_job(1, 1.0, 1.0, 1.0);
  // Active long job keeps the platform even though a shorter one waits.
  EXPECT_EQ(fcfs.pick(two_candidates(slow, fast, 50.0, 1.0, true), 2.0),
            0u);
  // Nobody active: earliest arrival wins.
  EXPECT_EQ(fcfs.pick(two_candidates(slow, fast, 50.0, 1.0, false), 2.0),
            0u);
  EXPECT_FALSE(fcfs.preemptive());
}

TEST(Policy, SrptPreemptsForTheShorterRemainingTime) {
  SrptPolicy srpt;
  const online::Job slow = make_job(0, 0.0, 100.0, 1.0);
  const online::Job fast = make_job(1, 1.0, 1.0, 1.0);
  EXPECT_EQ(srpt.pick(two_candidates(slow, fast, 50.0, 1.0, true), 2.0),
            1u);
  EXPECT_TRUE(srpt.preemptive());
}

TEST(Policy, EdfRanksByDeadlineWithBestEffortLast) {
  EdfPolicy edf;
  const online::Job loose = make_job(0, 0.0, 10.0, 1.0, 100.0);
  const online::Job tight = make_job(1, 1.0, 10.0, 1.0, 20.0);
  const online::Job best_effort = make_job(2, 0.0, 10.0, 1.0);
  EXPECT_EQ(edf.pick(two_candidates(loose, tight, 5.0, 5.0, true), 2.0),
            1u);
  EXPECT_EQ(edf.pick(two_candidates(best_effort, tight, 5.0, 5.0, false),
                     2.0),
            1u);
}

TEST(Policy, WfqServesTheLeastAttainedWeightedTenant) {
  WfqPolicy wfq({3.0, 1.0});
  wfq.reset(2);
  const online::Job heavy = make_job(0, 0.0, 10.0, 1.0, kInf, 0);
  const online::Job light = make_job(1, 1.0, 10.0, 1.0, kInf, 1);
  auto ready = two_candidates(heavy, light, 5.0, 5.0, false);

  // Fresh run: both tenants at 0, tie -> earliest arrival (tenant 0).
  EXPECT_EQ(wfq.pick(ready, 0.0), 0u);
  wfq.on_service(ready[0], 6.0);
  // Tenant 0 attained 6/weight 3 = 2 > tenant 1's 0: switch.
  EXPECT_EQ(wfq.pick(ready, 6.0), 1u);
  wfq.on_service(ready[1], 6.0);
  // Tenant 1 attained 6/1 = 6 > tenant 0's 2: switch back.
  EXPECT_EQ(wfq.pick(ready, 12.0), 0u);
  EXPECT_DOUBLE_EQ(wfq.attained(0), 6.0);
  EXPECT_DOUBLE_EQ(wfq.attained(1), 6.0);
  EXPECT_THROW(WfqPolicy({0.0}), util::PreconditionError);
}

TEST(Policy, FactoryNamesMatchTheKinds) {
  for (const PolicyKind kind :
       {PolicyKind::kFcfs, PolicyKind::kSpmf, PolicyKind::kSrpt,
        PolicyKind::kEdf, PolicyKind::kWfq}) {
    EXPECT_EQ(make_policy(kind)->name(), to_string(kind));
  }
}

// --- Server -----------------------------------------------------------------

TEST(Server, SingleJobFinishesAtItsPredictedService) {
  const auto plat = platform::Platform::homogeneous(4);
  const Server server(plat, {make_service(4, 0.0), {}});
  FcfsPolicy fcfs;
  const auto records = server.run({make_job(0, 1.0, 80.0, 1.0)}, fcfs);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_TRUE(records[0].admitted);
  EXPECT_DOUBLE_EQ(records[0].dispatch, 1.0);
  EXPECT_NEAR(records[0].finish, 1.0 + 40.0, 1e-6);
  EXPECT_DOUBLE_EQ(records[0].service_time,
                   records[0].finish - records[0].dispatch);
  EXPECT_EQ(records[0].preemptions, 0u);
}

TEST(Server, ZeroRestartPreemptionReproducesUninterruptedCompletion) {
  // THE PINNED EQUIVALENCE, end to end: under SRPT a short job preempts
  // a long one at a chunk boundary; with restart cost zero the long
  // job's completion time is EXACTLY its uninterrupted completion plus
  // the intruder's service time.
  const auto plat = platform::Platform::homogeneous(4);
  const Server server(plat, {make_service(2, 0.0), {}});

  const auto long_job = make_job(0, 0.0, 80.0, 1.0);  // 2 x 20
  const auto short_job = make_job(1, 1.0, 8.0, 1.0);  // 2 x 2

  FcfsPolicy fcfs;
  const auto alone = server.run({long_job}, fcfs);

  SrptPolicy srpt;
  const auto both = server.run({long_job, short_job}, srpt);
  // The short job cuts in at the first boundary (t ~ 20) and runs to
  // completion before the long job resumes.
  EXPECT_NEAR(both[1].dispatch, 20.0, 1e-6);
  EXPECT_EQ(both[0].preemptions, 1u);
  EXPECT_DOUBLE_EQ(both[0].restart_time, 0.0);
  EXPECT_NEAR(both[0].finish, alone[0].finish + both[1].service_time,
              1e-9);
  // And the intruder itself never waited past its boundary.
  EXPECT_NEAR(both[1].finish, both[1].dispatch + 4.0, 1e-6);
}

TEST(Server, RestartSurchargeLandsOnThePreemptedJob) {
  const auto plat = platform::Platform::homogeneous(4);
  const Server server(plat, {make_service(2, 0.5), {}});
  const auto long_job = make_job(0, 0.0, 80.0, 1.0);
  const auto short_job = make_job(1, 1.0, 8.0, 1.0);

  SrptPolicy srpt;
  const auto records = server.run({long_job, short_job}, srpt);
  // Resumed installment serves 60 load (40 x 1.5) -> 30 instead of 20.
  EXPECT_EQ(records[0].preemptions, 1u);
  EXPECT_NEAR(records[0].restart_time, 10.0, 1e-6);
  EXPECT_NEAR(records[0].finish, 20.0 + 4.0 + 30.0, 1e-6);
  EXPECT_NEAR(records[0].service_time, 50.0, 1e-6);
  // The short job pays nothing: it was never preempted.
  EXPECT_EQ(records[1].preemptions, 0u);
  EXPECT_DOUBLE_EQ(records[1].restart_time, 0.0);
}

TEST(Server, ArrivalsDuringAnInstallmentWaitForTheChunkBoundary) {
  const auto plat = platform::Platform::homogeneous(4);
  const Server server(plat, {make_service(2, 0.0), {}});
  // The short job arrives mid-installment; even SRPT cannot dispatch it
  // before the running chunk completes at t = 20.
  SrptPolicy srpt;
  const auto records = server.run(
      {make_job(0, 0.0, 80.0, 1.0), make_job(1, 5.0, 8.0, 1.0)}, srpt);
  EXPECT_NEAR(records[1].dispatch, 20.0, 1e-6);
  EXPECT_GT(records[1].wait(), 14.0);
}

TEST(Server, EdfServesTheTighterDeadlineFirst) {
  const auto plat = platform::Platform::homogeneous(4);
  const Server server(plat, {make_service(2, 0.0), {}});
  // j0 arrives first with a loose deadline, j1 second with a tight one.
  const auto jobs = std::vector<online::Job>{
      make_job(0, 0.0, 40.0, 1.0, 1000.0),
      make_job(1, 1.0, 40.0, 1.0, 100.0)};

  FcfsPolicy fcfs;
  const auto in_order = server.run(jobs, fcfs);
  EXPECT_LT(in_order[0].finish, in_order[1].finish);

  EdfPolicy edf;
  const auto by_deadline = server.run(jobs, edf);
  EXPECT_LT(by_deadline[1].finish, by_deadline[0].finish);
  EXPECT_EQ(by_deadline[0].preemptions, 1u);
  EXPECT_TRUE(by_deadline[0].met_deadline());
  EXPECT_TRUE(by_deadline[1].met_deadline());
}

TEST(Server, RejectedJobsAreRecordedButNeverServed) {
  const auto plat = platform::Platform::homogeneous(4);
  ServerOptions options{make_service(2, 0.0), {}};
  options.admission.mode = AdmissionMode::kReject;
  const Server server(plat, options);
  FcfsPolicy fcfs;
  // Predicted service 40 vs slack 10: provably infeasible.
  const auto records = server.run(
      {make_job(0, 2.0, 80.0, 1.0, 12.0), make_job(1, 3.0, 8.0, 1.0)},
      fcfs);
  EXPECT_FALSE(records[0].admitted);
  EXPECT_DOUBLE_EQ(records[0].served_load, 0.0);
  EXPECT_DOUBLE_EQ(records[0].finish, 2.0);  // turned away at arrival
  EXPECT_FALSE(records[0].met_deadline());
  // The feasible job is unaffected — it did not queue behind the reject.
  EXPECT_TRUE(records[1].admitted);
  EXPECT_DOUBLE_EQ(records[1].dispatch, 3.0);
}

TEST(Server, RunsAreBitIdenticalOnReplay) {
  const auto plat = platform::Platform::two_class(6, 1.0, 4.0);
  ServiceModel service = make_service(3, 1.0);
  service.comm = sim::CommModelKind::kOnePort;
  const Server server(plat, {service, {}});

  online::JobMix mix;
  mix.alphas = {1.0, 2.0};
  mix.alpha_weights = {0.5, 0.5};
  const online::PoissonArrivals arrivals(0.02, mix);
  util::Rng rng_a(11);
  util::Rng rng_b(11);
  const auto jobs_a = arrivals.generate(2000.0, rng_a);
  const auto jobs_b = arrivals.generate(2000.0, rng_b);
  ASSERT_GT(jobs_a.size(), 10u);

  SrptPolicy srpt_a;
  SrptPolicy srpt_b;
  const auto first = server.run(jobs_a, srpt_a);
  const auto second = server.run(jobs_b, srpt_b);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].dispatch, second[i].dispatch);
    EXPECT_EQ(first[i].finish, second[i].finish);
    EXPECT_EQ(first[i].service_time, second[i].service_time);
    EXPECT_EQ(first[i].preemptions, second[i].preemptions);
    EXPECT_EQ(first[i].restart_time, second[i].restart_time);
  }
}

TEST(Server, ValidatesTheJobStream) {
  const auto plat = platform::Platform::homogeneous(2);
  const Server server(plat);
  FcfsPolicy fcfs;
  EXPECT_THROW(
      server.run({make_job(0, 5.0, 10.0, 1.0), make_job(1, 1.0, 10.0, 1.0)},
                 fcfs),
      util::PreconditionError);
  EXPECT_THROW(server.run({make_job(3, 0.0, 10.0, 1.0)}, fcfs),
               util::PreconditionError);
  EXPECT_THROW(server.run({make_job(0, 0.0, -1.0, 1.0)}, fcfs),
               util::PreconditionError);
  // A deadline at (or before) the arrival is unserviceable nonsense.
  EXPECT_THROW(server.run({make_job(0, 5.0, 10.0, 1.0, 5.0)}, fcfs),
               util::PreconditionError);
}

// --- The no-free-lunch flip -------------------------------------------------

/// One heavy quadratic job plus a trickle of small linear jobs — the
/// classical SRPT showcase (small jobs cut in front of the elephant).
std::vector<online::Job> elephant_and_mice() {
  std::vector<online::Job> jobs;
  // Elephant: predicted service 4 x 63.75 = 255; loose deadline 765.
  jobs.push_back(make_job(0, 0.0, 120.0, 2.0, 765.0));
  // Mice: predicted service 4 x 1 = 4 each; deadline slack 100.
  for (std::size_t i = 1; i <= 4; ++i) {
    const double arrival = 50.0 * static_cast<double>(i);
    jobs.push_back(make_job(i, arrival, 8.0, 1.0, arrival + 100.0));
  }
  return jobs;
}

TEST(Server, PinnedFlipRestartCostsEraseSrptsAdvantage) {
  // THE HEADLINE RESULT. Same platform, same job stream, same policies —
  // the ONLY difference is the nonlinear restart surcharge:
  //
  //   free restarts (rho = 0):  SRPT << FCFS on mean latency and misses;
  //   costly restarts (rho = 2): the quadratic elephant pays ~(3q)^2
  //     per resumed chunk, and SRPT ends up WORSE than plain FCFS.
  //
  // Preempting nonlinear loads is not a free lunch.
  const auto plat = platform::Platform::homogeneous(4);
  const auto jobs = elephant_and_mice();

  const auto run = [&](double restart_fraction, Policy&& policy) {
    const Server server(plat, {make_service(4, restart_fraction), {}});
    return summarize(server.run(jobs, policy), plat.size());
  };

  const QosMetrics srpt_free = run(0.0, SrptPolicy());
  const QosMetrics fcfs_free = run(0.0, FcfsPolicy());
  const QosMetrics srpt_costly = run(2.0, SrptPolicy());
  const QosMetrics fcfs_costly = run(2.0, FcfsPolicy());

  // FCFS never preempts, so the restart knob cannot touch it.
  EXPECT_EQ(fcfs_free.preemptions, 0u);
  EXPECT_DOUBLE_EQ(fcfs_free.service.mean_latency,
                   fcfs_costly.service.mean_latency);

  // Classical regime: SRPT wins decisively on latency AND deadlines.
  EXPECT_LT(srpt_free.service.mean_latency,
            0.7 * fcfs_free.service.mean_latency);
  EXPECT_LT(srpt_free.miss_rate, fcfs_free.miss_rate);
  EXPECT_EQ(srpt_free.deadline_misses, 0u);
  EXPECT_GT(fcfs_free.deadline_misses, 0u);

  // Nonlinear-restart regime: the ranking FLIPS on the same stream.
  EXPECT_GT(srpt_costly.service.mean_latency,
            fcfs_costly.service.mean_latency);
  EXPECT_GT(srpt_costly.miss_rate, fcfs_costly.miss_rate);
  EXPECT_GT(srpt_costly.restart_share, 0.1);  // the price, measured
  EXPECT_DOUBLE_EQ(fcfs_costly.restart_share, 0.0);
}

// --- WFQ fairness -----------------------------------------------------------

TEST(Server, WfqProtectsTheLightTenantsGoodput) {
  // Tenant 0 floods the platform at t = 0 with elephants; tenant 1
  // trickles small deadline-bound jobs. FCFS makes the mice queue behind
  // the herd and miss every deadline; WFQ interleaves at chunk
  // boundaries and saves them. Fairness is scored on weighted GOODPUT
  // (on-time load), where the difference is visible.
  const auto plat = platform::Platform::homogeneous(4);
  const Server server(plat, {make_service(2, 0.0), {}});

  std::vector<online::Job> jobs;
  for (std::size_t i = 0; i < 5; ++i) {
    // Elephants: service 40 each, deadlines loose enough to always meet.
    jobs.push_back(make_job(i, 0.0, 80.0, 1.0, 300.0, 0));
  }
  for (std::size_t i = 0; i < 4; ++i) {
    // Mice: service 4 each, deadline 40 past arrival.
    const double arrival = 0.5 + static_cast<double>(i);
    jobs.push_back(make_job(5 + i, arrival, 8.0, 1.0, arrival + 40.0, 1));
  }

  const std::vector<double> weights{1.0, 1.0};
  FcfsPolicy fcfs;
  const QosMetrics unfair =
      summarize(server.run(jobs, fcfs), plat.size(), weights);
  WfqPolicy wfq(weights);
  const QosMetrics fair =
      summarize(server.run(jobs, wfq), plat.size(), weights);

  // FCFS: every mouse misses; its tenant's goodput is zero.
  EXPECT_DOUBLE_EQ(unfair.tenant_on_time_load[1], 0.0);
  EXPECT_EQ(unfair.deadline_misses, 4u);
  // WFQ: every mouse is served within its deadline.
  EXPECT_DOUBLE_EQ(fair.tenant_on_time_load[1], 32.0);
  EXPECT_EQ(fair.deadline_misses, 0u);
  EXPECT_GT(fair.jain_fairness, unfair.jain_fairness);
  // The elephants still meet their loose deadlines under WFQ.
  EXPECT_DOUBLE_EQ(fair.tenant_on_time_load[0], 400.0);
}

// --- Tenant traffic ---------------------------------------------------------

TEST(TenantTraffic, GeneratesTaggedSortedDeadlinedStreams) {
  const auto plat = platform::Platform::homogeneous(4);
  const ServiceModel service = make_service(2, 0.0);

  std::vector<TenantSpec> tenants(2);
  tenants[0].name = "batch";
  tenants[0].weight = 1.0;
  tenants[0].rate = 0.03;
  tenants[0].mix.load_dist = online::LoadDistribution::kPareto;
  tenants[0].mix.pareto_shape = 1.5;
  // Best-effort: slo_slack_factor stays infinite.
  tenants[1].name = "interactive";
  tenants[1].weight = 3.0;
  tenants[1].rate = 0.05;
  tenants[1].mix.load_lo = 20.0;
  tenants[1].mix.load_hi = 60.0;
  tenants[1].slo_slack_factor = 3.0;

  EXPECT_EQ(tenant_weights(tenants), (std::vector<double>{1.0, 3.0}));

  util::Rng rng(42);
  const auto jobs =
      generate_tenant_traffic(tenants, plat, service, 2000.0, rng);
  ASSERT_GT(jobs.size(), 50u);

  bool saw_both = false;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(jobs[i].id, i);
    if (i > 0) {
      EXPECT_GE(jobs[i].arrival, jobs[i - 1].arrival);
    }
    ASSERT_LT(jobs[i].tenant, 2u);
    if (jobs[i].tenant == 0) {
      EXPECT_FALSE(jobs[i].has_deadline());
    } else {
      saw_both = true;
      // Deadline = arrival + slack x predicted service, bit for bit.
      EXPECT_DOUBLE_EQ(jobs[i].deadline,
                       jobs[i].arrival +
                           3.0 * predicted_service(service, plat,
                                                   jobs[i].load,
                                                   jobs[i].alpha));
    }
  }
  EXPECT_TRUE(saw_both);

  util::Rng replay(42);
  const auto again =
      generate_tenant_traffic(tenants, plat, service, 2000.0, replay);
  ASSERT_EQ(again.size(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(jobs[i].arrival, again[i].arrival);
    EXPECT_EQ(jobs[i].load, again[i].load);
    EXPECT_EQ(jobs[i].tenant, again[i].tenant);
    EXPECT_EQ(jobs[i].deadline, again[i].deadline);
  }
}

// --- Metrics ----------------------------------------------------------------

TEST(Metrics, SummarizeMatchesHandComputation) {
  std::vector<JobRecord> records(4);
  // Served on time.
  records[0].job = make_job(0, 0.0, 10.0, 1.0, 12.0, 0);
  records[0].admitted = true;
  records[0].served_load = 10.0;
  records[0].dispatch = 0.0;
  records[0].finish = 10.0;
  records[0].service_time = 10.0;
  records[0].compute_time = 5.0;
  // Degraded, missed anyway.
  records[1].job = make_job(1, 0.0, 10.0, 1.0, 25.0, 1);
  records[1].admitted = true;
  records[1].degraded = true;
  records[1].served_load = 5.0;
  records[1].dispatch = 10.0;
  records[1].finish = 30.0;
  records[1].service_time = 8.0;
  records[1].compute_time = 4.0;
  records[1].preemptions = 2;
  records[1].restart_time = 3.0;
  // Rejected (its deadline counts as an SLO violation).
  records[2].job = make_job(2, 1.0, 7.0, 1.0, 5.0, 0);
  records[2].finish = 1.0;
  // Best-effort, completed (always on time).
  records[3].job = make_job(3, 2.0, 4.0, 1.0, kInf, 1);
  records[3].admitted = true;
  records[3].served_load = 4.0;
  records[3].dispatch = 18.0;
  records[3].finish = 20.0;
  records[3].service_time = 2.0;
  records[3].compute_time = 2.0;

  const std::vector<double> weights{2.0, 1.0};
  const QosMetrics metrics = summarize(records, 2, weights);
  EXPECT_EQ(metrics.offered, 4u);
  EXPECT_EQ(metrics.admitted, 3u);
  EXPECT_EQ(metrics.rejected, 1u);
  EXPECT_EQ(metrics.degraded, 1u);
  EXPECT_EQ(metrics.offered_with_deadline, 3u);
  EXPECT_EQ(metrics.admitted_with_deadline, 2u);
  EXPECT_EQ(metrics.deadline_misses, 1u);
  EXPECT_DOUBLE_EQ(metrics.miss_rate, 0.5);
  EXPECT_DOUBLE_EQ(metrics.slo_violation_rate, 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(metrics.offered_load, 31.0);
  EXPECT_DOUBLE_EQ(metrics.served_load, 19.0);
  EXPECT_DOUBLE_EQ(metrics.on_time_load, 14.0);
  EXPECT_DOUBLE_EQ(metrics.horizon, 30.0);
  EXPECT_DOUBLE_EQ(metrics.goodput, 14.0 / 30.0);
  EXPECT_EQ(metrics.preemptions, 2u);
  EXPECT_DOUBLE_EQ(metrics.preemptions_per_job, 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(metrics.restart_time, 3.0);
  EXPECT_DOUBLE_EQ(metrics.restart_share, 3.0 / 20.0);
  EXPECT_DOUBLE_EQ(metrics.utilization, 11.0 / (2.0 * 30.0));
  // Tenant loads: served {10, 9}, on-time {10, 4}; weighted on-time
  // {5, 4} -> Jain 81/82.
  EXPECT_DOUBLE_EQ(metrics.tenant_served_load[0], 10.0);
  EXPECT_DOUBLE_EQ(metrics.tenant_served_load[1], 9.0);
  EXPECT_DOUBLE_EQ(metrics.tenant_on_time_load[0], 10.0);
  EXPECT_DOUBLE_EQ(metrics.tenant_on_time_load[1], 4.0);
  EXPECT_DOUBLE_EQ(metrics.jain_fairness,
                   81.0 / (2.0 * (25.0 + 16.0)));
  EXPECT_EQ(metrics.service.jobs, 3u);  // rejected jobs carry no latency
  EXPECT_FALSE(metrics.signature().empty());
}

TEST(Metrics, EmptyAndAllRejectedRunsAreFiniteZeros) {
  const QosMetrics empty = summarize({}, 4);
  EXPECT_EQ(empty.offered, 0u);
  EXPECT_DOUBLE_EQ(empty.miss_rate, 0.0);
  EXPECT_DOUBLE_EQ(empty.goodput, 0.0);
  EXPECT_DOUBLE_EQ(empty.jain_fairness, 1.0);
  for (const double value : empty.signature()) {
    EXPECT_TRUE(std::isfinite(value));
  }

  JobRecord rejected;
  rejected.job = make_job(0, 1.0, 10.0, 1.0, 3.0);
  rejected.finish = 1.0;
  const QosMetrics all_rejected = summarize({rejected}, 4);
  EXPECT_EQ(all_rejected.rejected, 1u);
  EXPECT_DOUBLE_EQ(all_rejected.slo_violation_rate, 1.0);
  EXPECT_DOUBLE_EQ(all_rejected.utilization, 0.0);
  for (const double value : all_rejected.signature()) {
    EXPECT_TRUE(std::isfinite(value));
  }
}

}  // namespace
}  // namespace nldl::qos
