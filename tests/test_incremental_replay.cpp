// Incremental shared-master replay vs the full-replay reference.
//
// SharedMasterPeriod's incremental mode (checkpointed settled prefix +
// speculative tail drain) must be BIT-identical to re-simulating the
// whole busy period from scratch — after every replay, for every owner,
// under every communication model, on randomized dispatch sequences. The
// end-to-end tests pin the same identity through online::Server and
// qos::Server with the incremental_replay option flipped.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <memory>
#include <numeric>
#include <vector>

#include "obs/metrics.hpp"
#include "online/arrivals.hpp"
#include "online/scheduler.hpp"
#include "online/server.hpp"
#include "platform/platform.hpp"
#include "qos/policy.hpp"
#include "qos/server.hpp"
#include "sim/comm_model.hpp"
#include "sim/engine.hpp"
#include "sim/multiplex.hpp"
#include "util/rng.hpp"

namespace nldl {
namespace {

using online::Job;
using online::JobStats;
using platform::Platform;

std::vector<std::unique_ptr<sim::CommModel>> all_models() {
  std::vector<std::unique_ptr<sim::CommModel>> models;
  models.push_back(std::make_unique<sim::ParallelLinksModel>());
  models.push_back(std::make_unique<sim::OnePortModel>());
  models.push_back(std::make_unique<sim::BoundedMultiportModel>(2.0, 2));
  return models;
}

/// One randomized owner dispatch: 1–4 chunks on distinct random workers.
std::vector<sim::ChunkAssignment> random_chunks(util::Rng& rng,
                                                std::size_t p) {
  const std::size_t count = static_cast<std::size_t>(rng.uniform_int(1, 4));
  std::vector<std::size_t> workers(p);
  std::iota(workers.begin(), workers.end(), std::size_t{0});
  rng.shuffle(workers);
  std::vector<sim::ChunkAssignment> chunks;
  for (std::size_t i = 0; i < count && i < p; ++i) {
    chunks.push_back({workers[i], rng.uniform(0.5, 5.0)});
  }
  return chunks;
}

// --- period-level bitwise identity ----------------------------------------

TEST(IncrementalReplay, MatchesFullReplayAfterEveryDispatch) {
  const Platform plat = Platform::two_class(6, 2.0, 2.5);
  const sim::Engine engine(plat, {});
  std::vector<std::size_t> worker_map(plat.size());
  std::iota(worker_map.begin(), worker_map.end(), std::size_t{0});

  for (const auto& model : all_models()) {
    for (int rep = 0; rep < 6; ++rep) {
      util::Rng rng(1000 + static_cast<std::uint64_t>(rep));
      sim::SharedMasterPeriod full(engine, *model, {false});
      sim::SharedMasterPeriod incremental(engine, *model, {true});
      // Compaction after nearly every dispatch — the aggressive end of
      // the settled-run renumbering must be invisible in the results.
      sim::SharedMasterPeriod compacting(engine, *model, {true, 2});
      EXPECT_FALSE(full.incremental());
      EXPECT_TRUE(incremental.incremental());

      double now = 3.0;  // periods may anchor anywhere, not just t = 0
      for (int d = 0; d < 14; ++d) {
        if (rng.uniform() < 0.7) now += rng.uniform(0.0, 12.0);
        const double alpha = rng.uniform() < 0.5 ? 1.0 : 2.0;
        const auto chunks = random_chunks(rng, plat.size());
        const std::size_t a = full.dispatch(now, alpha, chunks, worker_map);
        const std::size_t b =
            incremental.dispatch(now, alpha, chunks, worker_map);
        const std::size_t c =
            compacting.dispatch(now, alpha, chunks, worker_map);
        ASSERT_EQ(a, b);
        ASSERT_EQ(a, c);
        full.replay();
        incremental.replay();
        compacting.replay();
        ASSERT_EQ(full.owners(), incremental.owners());
        ASSERT_EQ(full.owners(), compacting.owners());
        for (std::size_t owner = 0; owner < full.owners(); ++owner) {
          EXPECT_EQ(full.finish(owner), incremental.finish(owner))
              << "rep " << rep << " dispatch " << d << " owner " << owner;
          EXPECT_EQ(full.busy(owner), incremental.busy(owner))
              << "rep " << rep << " dispatch " << d << " owner " << owner;
          EXPECT_EQ(full.finish(owner), compacting.finish(owner))
              << "rep " << rep << " dispatch " << d << " owner " << owner;
          EXPECT_EQ(full.busy(owner), compacting.busy(owner))
              << "rep " << rep << " dispatch " << d << " owner " << owner;
        }
      }
    }
  }
}

TEST(IncrementalReplay, SettledOwnersKeepTotalsFrozen) {
  // Once simulated time passes an owner's finish, later dispatches must
  // not move it — and under incremental replay the settled totals are
  // accumulated exactly once, so any double-count would show here.
  const Platform plat = Platform::homogeneous(4, 1.0, 1.0);
  const sim::Engine engine(plat, {});
  const sim::ParallelLinksModel model;
  std::vector<std::size_t> worker_map{0, 1, 2, 3};

  sim::SharedMasterPeriod period(engine, model, {true});
  const std::size_t first =
      period.dispatch(0.0, 1.0, {{0, 2.0}, {1, 2.0}}, worker_map);
  period.replay();
  const double settled_finish = period.finish(first);
  const double settled_busy = period.busy(first);
  EXPECT_GT(settled_finish, 0.0);

  // Dispatch long after the first owner finished: its totals are frozen.
  double now = settled_finish + 5.0;
  for (int d = 0; d < 4; ++d) {
    (void)period.dispatch(now, 2.0, {{2, 3.0}, {3, 1.0}}, worker_map);
    period.replay();
    EXPECT_EQ(period.finish(first), settled_finish) << "dispatch " << d;
    EXPECT_EQ(period.busy(first), settled_busy) << "dispatch " << d;
    now += 2.0;
  }
}

TEST(IncrementalReplay, ClearedPeriodReplaysLikeFresh) {
  const Platform plat = Platform::two_class(4, 1.0, 2.0);
  const sim::Engine engine(plat, {});
  const sim::BoundedMultiportModel model(1.5, 2);
  std::vector<std::size_t> worker_map{0, 1, 2, 3};
  util::Rng rng(555);

  sim::SharedMasterPeriod reused(engine, model, {true});
  for (int period_index = 0; period_index < 3; ++period_index) {
    sim::SharedMasterPeriod fresh(engine, model, {true});
    double now = rng.uniform(0.0, 50.0);
    for (int d = 0; d < 6; ++d) {
      const auto chunks = random_chunks(rng, plat.size());
      (void)reused.dispatch(now, 2.0, chunks, worker_map);
      (void)fresh.dispatch(now, 2.0, chunks, worker_map);
      reused.replay();
      fresh.replay();
      for (std::size_t owner = 0; owner < fresh.owners(); ++owner) {
        EXPECT_EQ(reused.finish(owner), fresh.finish(owner));
        EXPECT_EQ(reused.busy(owner), fresh.busy(owner));
      }
      now += rng.uniform(0.0, 4.0);
    }
    reused.clear();
    EXPECT_TRUE(reused.empty());
  }
  reused.shrink();  // explicit shrink keeps the period usable
  (void)reused.dispatch(0.0, 1.0, {{0, 1.0}}, worker_map);
  reused.replay();
  EXPECT_EQ(reused.owners(), 1U);
}

// --- end-to-end: the servers with the flag flipped ------------------------

void expect_identical_stats(const std::vector<JobStats>& a,
                            const std::vector<JobStats>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].dispatch, b[i].dispatch) << "job " << i;
    EXPECT_EQ(a[i].finish, b[i].finish) << "job " << i;
    EXPECT_EQ(a[i].slot, b[i].slot) << "job " << i;
    EXPECT_EQ(a[i].compute_time, b[i].compute_time) << "job " << i;
  }
}

std::vector<Job> poisson_stream(double rate, double horizon,
                                std::uint64_t seed) {
  online::JobMix mix;
  mix.load_lo = 40.0;
  mix.load_hi = 120.0;
  mix.alphas = {1.0, 2.0};
  mix.alpha_weights = {0.5, 0.5};
  util::Rng rng(seed);
  return online::PoissonArrivals(rate, mix).generate(horizon, rng);
}

TEST(IncrementalReplay, OnlineServerMetricsIdentity) {
  const Platform plat = Platform::two_class(8, 1.0, 3.0);
  const auto jobs = poisson_stream(0.06, 1000.0, 42);
  ASSERT_GT(jobs.size(), 20U);
  const online::FairShareScheduler fair(4);
  for (const sim::CommModelKind comm :
       {sim::CommModelKind::kParallelLinks, sim::CommModelKind::kOnePort,
        sim::CommModelKind::kBoundedMultiport}) {
    online::ServerOptions options;
    options.comm = comm;
    options.capacity = 2.0;
    options.master = online::MasterMode::kSharedMaster;
    options.record_isolated = false;
    options.incremental_replay = true;
    obs::MetricsRegistry fast_cost;
    const auto fast =
        online::Server(plat, options).run(jobs, fair, &fast_cost);

    options.incremental_replay = false;
    obs::MetricsRegistry slow_cost;
    const auto slow =
        online::Server(plat, options).run(jobs, fair, &slow_cost);

    expect_identical_stats(fast, slow);
    // Same decision sequence on both sides...
    EXPECT_EQ(fast_cost.counter_value("replay.replays"),
              slow_cost.counter_value("replay.replays"));
    EXPECT_EQ(fast_cost.counter_value("replay.busy_periods"),
              slow_cost.counter_value("replay.busy_periods"));
    EXPECT_GT(fast_cost.counter_value("replay.busy_periods"), 0U);
    // ...but the incremental side simulated strictly fewer chunk events
    // (the contended stream has multi-dispatch busy periods).
    EXPECT_LT(fast_cost.counter_value("replay.engine_events"),
              slow_cost.counter_value("replay.engine_events"));
  }
}

TEST(IncrementalReplay, QosServerMetricsIdentity) {
  const Platform plat = Platform::homogeneous(6, 0.5, 1.0);
  const auto jobs = poisson_stream(0.05, 600.0, 7);
  ASSERT_GT(jobs.size(), 10U);

  for (const std::size_t concurrency : {2UL, 3UL}) {
    qos::ServerOptions options;
    options.service.comm = sim::CommModelKind::kBoundedMultiport;
    options.service.capacity = 1.5;
    options.service.plan.rounds = 3;
    options.service.plan.restart_load_fraction = 0.3;
    options.admission.mode = qos::AdmissionMode::kAdmitAll;
    options.concurrency = concurrency;
    options.incremental_replay = true;

    qos::SrptPolicy fast_policy;
    obs::MetricsRegistry fast_cost;
    const auto fast =
        qos::Server(plat, options).run(jobs, fast_policy, &fast_cost);

    options.incremental_replay = false;
    qos::SrptPolicy slow_policy;
    obs::MetricsRegistry slow_cost;
    const auto slow =
        qos::Server(plat, options).run(jobs, slow_policy, &slow_cost);

    ASSERT_EQ(fast.size(), slow.size());
    for (std::size_t i = 0; i < fast.size(); ++i) {
      EXPECT_EQ(fast[i].admitted, slow[i].admitted) << "job " << i;
      EXPECT_EQ(fast[i].dispatch, slow[i].dispatch) << "job " << i;
      EXPECT_EQ(fast[i].finish, slow[i].finish) << "job " << i;
      EXPECT_EQ(fast[i].service_time, slow[i].service_time) << "job " << i;
      EXPECT_EQ(fast[i].compute_time, slow[i].compute_time) << "job " << i;
      EXPECT_EQ(fast[i].restart_time, slow[i].restart_time) << "job " << i;
      EXPECT_EQ(fast[i].preemptions, slow[i].preemptions) << "job " << i;
    }
    EXPECT_EQ(fast_cost.counter_value("replay.replays"),
              slow_cost.counter_value("replay.replays"));
    EXPECT_LE(fast_cost.counter_value("replay.engine_events"),
              slow_cost.counter_value("replay.engine_events"));
  }
}

TEST(IncrementalReplay, LongPeriodCompactsAndStaysIdentical) {
  // A period whose dispatches keep arriving before it drains — the
  // saturated-open-system shape — compacts its settled run many times
  // over; every estimate must still match the O(n²) reference.
  const Platform plat = Platform::homogeneous(4, 1.0, 1.0);
  const sim::Engine engine(plat, {});
  const sim::OnePortModel model;
  std::vector<std::size_t> worker_map{0, 1, 2, 3};
  util::Rng rng(77);

  sim::SharedMasterPeriod full(engine, model, {false});
  sim::SharedMasterPeriod compacting(engine, model, {true, 8});
  double now = 0.0;
  for (int d = 0; d < 200; ++d) {
    now += rng.uniform(0.5, 2.0);
    const auto chunks = random_chunks(rng, plat.size());
    (void)full.dispatch(now, 1.0, chunks, worker_map);
    const std::size_t owner =
        compacting.dispatch(now, 1.0, chunks, worker_map);
    full.replay();
    compacting.replay();
    ASSERT_EQ(full.finish(owner), compacting.finish(owner)) << d;
    ASSERT_EQ(full.busy(owner), compacting.busy(owner)) << d;
  }
  for (std::size_t owner = 0; owner < full.owners(); ++owner) {
    EXPECT_EQ(full.finish(owner), compacting.finish(owner)) << owner;
    EXPECT_EQ(full.busy(owner), compacting.busy(owner)) << owner;
  }
  // The whole point of compacting: the settled run's footprint tracks
  // the live tail, not the 200-dispatch history.
  EXPECT_LT(compacting.events(), full.events());
}

TEST(IncrementalReplay, DispatchBeforePeriodAnchorThrows) {
  const Platform plat = Platform::homogeneous(2, 1.0, 1.0);
  const sim::Engine engine(plat, {});
  const sim::ParallelLinksModel model;
  std::vector<std::size_t> worker_map{0, 1};
  sim::SharedMasterPeriod period(engine, model, {true});
  (void)period.dispatch(10.0, 1.0, {{0, 1.0}}, worker_map);
  EXPECT_THROW(
      (void)period.dispatch(5.0, 1.0, {{1, 1.0}}, worker_map),
      util::PreconditionError);
  EXPECT_THROW((void)period.finish(7), util::PreconditionError);
}

}  // namespace
}  // namespace nldl
