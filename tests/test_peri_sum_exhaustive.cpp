// Exhaustive validation of the PERI-SUM dynamic program: for small p, the
// DP over *sorted contiguous* groups must match brute force over ALL
// column structures (every ordered set partition of the areas into
// columns). This verifies the classical structural lemma of ref [41] —
// an optimal column-based partition uses columns that are contiguous in
// the sorted order — on thousands of random instances.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <vector>

#include "partition/peri_sum.hpp"
#include "util/rng.hpp"

namespace nldl::partition {
namespace {

/// Cost of a column assignment: columns encoded as labels per area.
/// Column width = Σ member areas (normalized); cost = C + Σ_j k_j·c_j.
double assignment_cost(const std::vector<double>& areas,
                       const std::vector<int>& label, int columns) {
  std::vector<double> width(static_cast<std::size_t>(columns), 0.0);
  std::vector<int> members(static_cast<std::size_t>(columns), 0);
  for (std::size_t i = 0; i < areas.size(); ++i) {
    width[static_cast<std::size_t>(label[i])] += areas[i];
    ++members[static_cast<std::size_t>(label[i])];
  }
  double cost = 0.0;
  for (int j = 0; j < columns; ++j) {
    if (members[static_cast<std::size_t>(j)] == 0) {
      return std::numeric_limits<double>::infinity();  // unused column
    }
    cost += 1.0 + members[static_cast<std::size_t>(j)] *
                      width[static_cast<std::size_t>(j)];
  }
  return cost;
}

/// Brute force: enumerate every labeling of areas into at most p columns
/// (set partitions via restricted-growth strings) and take the best cost.
double brute_force_best(const std::vector<double>& areas) {
  const auto p = static_cast<int>(areas.size());
  std::vector<int> label(areas.size(), 0);
  double best = std::numeric_limits<double>::infinity();
  // Restricted growth strings: label[0] = 0; label[i] <= max(label[<i])+1.
  auto recurse = [&](auto&& self, std::size_t index, int used) -> void {
    if (index == areas.size()) {
      best = std::min(best, assignment_cost(areas, label, used));
      return;
    }
    for (int l = 0; l <= used && l < p; ++l) {
      label[index] = l;
      self(self, index + 1, std::max(used, l + 1));
    }
  };
  recurse(recurse, 1, 1);
  return best;
}

std::vector<double> normalized(std::vector<double> areas) {
  double total = 0.0;
  for (const double a : areas) total += a;
  for (double& a : areas) a /= total;
  return areas;
}

TEST(PeriSumExhaustive, DpMatchesBruteForceTinyCases) {
  EXPECT_NEAR(peri_sum_partition({1.0}).total_half_perimeter,
              brute_force_best(normalized({1.0})), 1e-9);
  EXPECT_NEAR(peri_sum_partition({1.0, 1.0}).total_half_perimeter,
              brute_force_best(normalized({1.0, 1.0})), 1e-9);
  EXPECT_NEAR(peri_sum_partition({3.0, 1.0}).total_half_perimeter,
              brute_force_best(normalized({3.0, 1.0})), 1e-9);
}

class PeriSumExhaustiveProperty
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(PeriSumExhaustiveProperty, DpIsOptimalAmongAllColumnStructures) {
  const auto [p, seed] = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(seed) * 911 +
                static_cast<std::uint64_t>(p));
  for (int rep = 0; rep < 8; ++rep) {
    std::vector<double> areas;
    for (int i = 0; i < p; ++i) {
      areas.push_back(rep % 2 == 0 ? rng.uniform(0.1, 2.0)
                                   : rng.lognormal(0.0, 1.0));
    }
    const double dp =
        peri_sum_partition(areas).total_half_perimeter;
    const double brute = brute_force_best(normalized(areas));
    EXPECT_NEAR(dp, brute, 1e-9 * std::max(1.0, brute))
        << "p=" << p << " rep=" << rep;
  }
}

// Bell(7) = 877 labelings per instance — cheap; p up to 7 keeps the
// enumeration tiny while covering non-trivial structures.
INSTANTIATE_TEST_SUITE_P(
    SmallP, PeriSumExhaustiveProperty,
    ::testing::Combine(::testing::Values(2, 3, 4, 5, 6, 7),
                       ::testing::Range(0, 4)));

}  // namespace
}  // namespace nldl::partition
