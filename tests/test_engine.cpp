// Unit tests for the event-driven simulation engine.
#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "util/assert.hpp"

namespace nldl::sim {
namespace {

using platform::Platform;

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(Engine, SingleChunkTimelineParallelLinks) {
  const Platform plat = Platform::from_speeds({2.0}, 3.0);  // c=3, w=0.5
  const Engine engine(plat);
  const SimResult result =
      engine.run({{0, 4.0}}, CommModelKind::kParallelLinks);
  ASSERT_EQ(result.spans.size(), 1U);
  const ChunkSpan& span = result.spans[0];
  EXPECT_DOUBLE_EQ(span.comm_start, 0.0);
  EXPECT_DOUBLE_EQ(span.comm_end, 12.0);
  EXPECT_DOUBLE_EQ(span.compute_start, 12.0);
  EXPECT_DOUBLE_EQ(span.compute_end, 14.0);
  EXPECT_DOUBLE_EQ(result.makespan, 14.0);
}

TEST(Engine, OnePortSerializesInScheduleOrder) {
  const Platform plat = Platform::homogeneous(2, 1.0, 1.0);
  const Engine engine(plat);
  const SimResult result =
      engine.run({{0, 5.0}, {1, 5.0}}, CommModelKind::kOnePort);
  EXPECT_DOUBLE_EQ(result.spans[0].comm_start, 0.0);
  EXPECT_DOUBLE_EQ(result.spans[1].comm_start, 5.0);
  EXPECT_DOUBLE_EQ(result.makespan, 15.0);
}

TEST(Engine, MultiRoundPipelinesReceiveAndCompute) {
  const Platform plat = Platform::homogeneous(1, 1.0, 2.0);
  const Engine engine(plat);
  const SimResult result =
      engine.run({{0, 2.0}, {0, 2.0}}, CommModelKind::kParallelLinks);
  const ChunkSpan& second = result.spans[1];
  EXPECT_DOUBLE_EQ(second.comm_start, 2.0);  // link frees after first comm
  EXPECT_DOUBLE_EQ(second.comm_end, 4.0);
  EXPECT_DOUBLE_EQ(second.compute_start, 6.0);  // CPU busy until then
  EXPECT_DOUBLE_EQ(result.makespan, 10.0);
}

TEST(Engine, NonlinearComputeCost) {
  const Platform plat = Platform::homogeneous(1, 1.0, 2.0);
  const Engine engine(plat, EngineOptions{2.0});
  const SimResult result =
      engine.run({{0, 3.0}}, CommModelKind::kParallelLinks);
  EXPECT_DOUBLE_EQ(result.makespan, 3.0 + 2.0 * 9.0);
}

TEST(Engine, BoundedMultiportSharesCapacityFairly) {
  // Two equal transfers, master capacity 1, private caps 10 each: both run
  // at 0.5 and finish together.
  const Platform plat = Platform::homogeneous(2, 0.1, 1.0);
  const Engine engine(plat);
  const SimResult result =
      engine.run({{0, 5.0}, {1, 5.0}}, BoundedMultiportModel(1.0));
  EXPECT_NEAR(result.spans[0].comm_end, 10.0, 1e-9);
  EXPECT_NEAR(result.spans[1].comm_end, 10.0, 1e-9);
}

TEST(Engine, BoundedMultiportMultiRoundSerializesPerLink) {
  // Two chunks to one worker under an uncapped master: the second transfer
  // must wait for the first (link FIFO), exactly like parallel links.
  const Platform plat = Platform::homogeneous(1, 2.0, 1.0);
  const Engine engine(plat);
  const SimResult result =
      engine.run({{0, 1.0}, {0, 1.0}}, BoundedMultiportModel(kInf));
  EXPECT_DOUBLE_EQ(result.spans[0].comm_end, 2.0);
  EXPECT_DOUBLE_EQ(result.spans[1].comm_start, 2.0);
  EXPECT_DOUBLE_EQ(result.spans[1].comm_end, 4.0);
}

TEST(Engine, BoundedMultiportCapacityReleasedToSurvivors) {
  // Transfers of 2 and 6 units, capacity 2, private caps 10: both at rate
  // 1 until t=2, then the survivor takes min(10, 2) = 2.
  const Platform plat = Platform::homogeneous(2, 0.1, 1.0);
  const Engine engine(plat);
  const SimResult result =
      engine.run({{0, 2.0}, {1, 6.0}}, BoundedMultiportModel(2.0));
  EXPECT_NEAR(result.spans[0].comm_end, 2.0, 1e-9);
  EXPECT_NEAR(result.spans[1].comm_end, 4.0, 1e-9);
}

TEST(Engine, BoundedMultiportConcurrencyOneIsOnePort) {
  const Platform plat = Platform::from_speeds({1.0, 2.0}, 0.5);
  const Engine engine(plat);
  const std::vector<ChunkAssignment> schedule{{1, 4.0}, {0, 2.0}};
  const SimResult one_port = engine.run(schedule, CommModelKind::kOnePort);
  const SimResult bounded =
      engine.run(schedule, BoundedMultiportModel::one_port());
  ASSERT_EQ(one_port.spans.size(), bounded.spans.size());
  for (std::size_t i = 0; i < one_port.spans.size(); ++i) {
    EXPECT_EQ(one_port.spans[i].comm_start, bounded.spans[i].comm_start);
    EXPECT_EQ(one_port.spans[i].comm_end, bounded.spans[i].comm_end);
    EXPECT_EQ(one_port.spans[i].compute_end, bounded.spans[i].compute_end);
  }
}

TEST(Engine, ZeroSizeChunksCompleteInstantly) {
  const Platform plat = Platform::homogeneous(2);
  const Engine engine(plat);
  const SimResult result =
      engine.run({{0, 0.0}, {1, 3.0}}, CommModelKind::kParallelLinks);
  EXPECT_DOUBLE_EQ(result.spans[0].comm_end, 0.0);
  EXPECT_DOUBLE_EQ(result.worker_compute_time[0], 0.0);
  EXPECT_DOUBLE_EQ(result.makespan, 6.0);
}

TEST(Engine, ZeroSizeChunkBetweenTransfersKeepsLinkOrder) {
  // Worker 0 receives 2 units, then a zero chunk, then 2 more: the zero
  // chunk completes the instant the first transfer ends.
  const Platform plat = Platform::homogeneous(1, 1.0, 1.0);
  const Engine engine(plat);
  const SimResult result = engine.run({{0, 2.0}, {0, 0.0}, {0, 2.0}},
                                      CommModelKind::kParallelLinks);
  EXPECT_DOUBLE_EQ(result.spans[1].comm_start, 2.0);
  EXPECT_DOUBLE_EQ(result.spans[1].comm_end, 2.0);
  EXPECT_DOUBLE_EQ(result.spans[2].comm_start, 2.0);
  EXPECT_DOUBLE_EQ(result.spans[2].comm_end, 4.0);
}

TEST(Engine, NearTyingTransfersKeepExactFinishTimes) {
  // Transfers within the fluid snapping tolerance of each other must NOT
  // be snapped together under the discrete models: each keeps its exact
  // closed-form completion instant.
  const Platform plat = Platform::homogeneous(2, 1.0, 1.0);
  const Engine engine(plat);
  const double close = 1.0 + 2e-13;
  const SimResult result =
      engine.run({{0, 1.0}, {1, close}}, CommModelKind::kParallelLinks);
  EXPECT_EQ(result.spans[0].comm_end, 1.0);
  EXPECT_EQ(result.spans[1].comm_end, close);
}

TEST(Engine, SingleRoundScheduleValidatesTheOrder) {
  const std::vector<double> amounts{1.0, 2.0};
  const auto schedule = single_round_schedule(amounts, {1, 0});
  ASSERT_EQ(schedule.size(), 2U);
  EXPECT_EQ(schedule[0].worker, 1U);
  EXPECT_DOUBLE_EQ(schedule[0].size, 2.0);
  EXPECT_THROW((void)single_round_schedule(amounts, {0, 0}),
               util::PreconditionError);
  EXPECT_THROW((void)single_round_schedule(amounts, {0, 2}),
               util::PreconditionError);
  EXPECT_THROW((void)single_round_schedule(amounts, {0}),
               util::PreconditionError);
}

TEST(Engine, ZeroSizeChunkWaitsForThePortUnderOnePort) {
  // The retired simulator serialized zero-size chunks at the port like
  // any other send; the engine must too.
  const Platform plat = Platform::homogeneous(2, 1.0, 1.0);
  const Engine engine(plat);
  const SimResult result =
      engine.run({{0, 5.0}, {1, 0.0}}, CommModelKind::kOnePort);
  EXPECT_DOUBLE_EQ(result.spans[1].comm_start, 5.0);
  EXPECT_DOUBLE_EQ(result.spans[1].comm_end, 5.0);
  EXPECT_DOUBLE_EQ(result.worker_finish[1], 5.0);
}

TEST(Engine, PerWorkerAccounting) {
  const Platform plat = Platform::from_speeds({1.0, 2.0});
  const Engine engine(plat);
  const SimResult result = engine.run({{0, 2.0}, {1, 4.0}, {0, 1.0}},
                                      CommModelKind::kParallelLinks);
  EXPECT_DOUBLE_EQ(result.worker_comm_time[0], 3.0);
  EXPECT_DOUBLE_EQ(result.worker_compute_time[0], 3.0);
  EXPECT_DOUBLE_EQ(result.worker_compute_time[1], 2.0);
  EXPECT_DOUBLE_EQ(result.worker_finish[0], result.spans[2].compute_end);
}

TEST(Engine, EmptyScheduleIsFree) {
  const Platform plat = Platform::homogeneous(3);
  const Engine engine(plat);
  const SimResult result = engine.run({}, CommModelKind::kParallelLinks);
  EXPECT_TRUE(result.spans.empty());
  EXPECT_DOUBLE_EQ(result.makespan, 0.0);
}

TEST(Engine, RunSingleRoundMatchesExplicitSchedule) {
  const Platform plat = Platform::from_speeds({1.0, 3.0}, 0.5);
  const Engine engine(plat);
  const ParallelLinksModel model;
  const SimResult a = engine.run_single_round({2.0, 6.0}, model);
  const SimResult b = engine.run({{0, 2.0}, {1, 6.0}}, model);
  ASSERT_EQ(a.spans.size(), b.spans.size());
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.spans[1].comm_end, b.spans[1].comm_end);
}

TEST(Engine, RejectsBadInput) {
  const Platform plat = Platform::homogeneous(1);
  const Engine engine(plat);
  EXPECT_THROW((void)engine.run({{1, 1.0}}, CommModelKind::kParallelLinks),
               util::PreconditionError);
  EXPECT_THROW((void)engine.run({{0, -1.0}}, CommModelKind::kParallelLinks),
               util::PreconditionError);
  EXPECT_THROW((void)Engine(plat, EngineOptions{0.5}),
               util::PreconditionError);
  EXPECT_THROW((void)engine.run_single_round({1.0, 1.0},
                                             ParallelLinksModel{}),
               util::PreconditionError);
}

TEST(Engine, BoundedMultiportNearTieSnapsToOneEvent) {
  // Two transfers sharing the master capacity tie in exact arithmetic but
  // differ by one rounding error in floating point: 0.1 + 0.2 vs 0.3.
  // Fair sharing leaves an O(eps) residue on the "slightly larger" one;
  // the engine's snap tolerance must complete both at the same event
  // instead of scheduling a ~1e-17-long follow-up slice.
  const Platform plat = Platform::homogeneous(2, 1.0, 1.0);
  const Engine engine(plat);
  const BoundedMultiportModel model(1.0);  // each transfer runs at 1/2
  const SimResult result =
      engine.run({{0, 0.1 + 0.2}, {1, 0.3}}, model);
  ASSERT_EQ(result.spans.size(), 2U);
  EXPECT_EQ(result.spans[0].comm_end, result.spans[1].comm_end);
  EXPECT_NEAR(result.spans[0].comm_end, 0.6, 1e-9);
  EXPECT_TRUE(std::isfinite(result.makespan));
}

TEST(Engine, OnePortZeroSizeChunkHoldsItsScheduleSlot) {
  // A zero-size chunk still travels through the one-port master in
  // schedule order: it is served (instantly) before later chunks, and it
  // waits its turn behind earlier ones.
  const Platform plat = Platform::homogeneous(2, 1.0, 1.0);
  const Engine engine(plat);

  // Zero chunk first: served at t=0 for free, then the big chunks.
  const SimResult zero_first =
      engine.run({{0, 0.0}, {1, 5.0}, {0, 3.0}}, CommModelKind::kOnePort);
  EXPECT_DOUBLE_EQ(zero_first.spans[0].comm_start, 0.0);
  EXPECT_DOUBLE_EQ(zero_first.spans[0].comm_end, 0.0);
  EXPECT_DOUBLE_EQ(zero_first.spans[1].comm_start, 0.0);
  EXPECT_DOUBLE_EQ(zero_first.spans[1].comm_end, 5.0);
  EXPECT_DOUBLE_EQ(zero_first.spans[2].comm_start, 5.0);
  EXPECT_DOUBLE_EQ(zero_first.spans[2].comm_end, 8.0);

  // Zero chunk second: it waits for the port even though it is free.
  const SimResult zero_second =
      engine.run({{1, 5.0}, {0, 0.0}}, CommModelKind::kOnePort);
  EXPECT_DOUBLE_EQ(zero_second.spans[0].comm_end, 5.0);
  EXPECT_DOUBLE_EQ(zero_second.spans[1].comm_start, 5.0);
  EXPECT_DOUBLE_EQ(zero_second.spans[1].comm_end, 5.0);
  // The zero-size chunk costs no compute either.
  EXPECT_DOUBLE_EQ(zero_second.worker_compute_time[0], 0.0);
  EXPECT_EQ(zero_second.idle_workers(), 1U);
}

TEST(Engine, LoadImbalanceMatchesDefinition) {
  SimResult result;
  result.worker_compute_time = {4.0, 5.0};
  EXPECT_DOUBLE_EQ(result.load_imbalance(), 0.25);
  // Imbalance is defined over the workers that computed: an unused worker
  // is counted by idle_workers(), not folded into e as +infinity.
  result.worker_compute_time = {0.0, 5.0};
  EXPECT_DOUBLE_EQ(result.load_imbalance(), 0.0);
  EXPECT_EQ(result.idle_workers(), 1U);
  result.worker_compute_time = {0.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(result.load_imbalance(), 0.25);
  EXPECT_EQ(result.idle_workers(), 1U);
  result.worker_compute_time = {5.0};
  EXPECT_DOUBLE_EQ(result.load_imbalance(), 0.0);
  EXPECT_EQ(result.idle_workers(), 0U);
}

TEST(Engine, CompletionHookReportsEveryChunkOnce) {
  const Platform plat = Platform::homogeneous(2, 1.0, 1.0);
  const Engine engine(plat);
  // Multi-round schedule: completion (event) order differs from schedule
  // order — worker 1's first chunk finishes before worker 0's second.
  const std::vector<ChunkAssignment> schedule{
      {0, 2.0}, {1, 3.0}, {0, 4.0}, {1, 1.0}};

  std::vector<std::size_t> seen;
  std::vector<ChunkSpan> spans(schedule.size());
  const SimResult result = engine.run(
      schedule, ParallelLinksModel(),
      [&](std::size_t chunk, const ChunkSpan& span) {
        seen.push_back(chunk);
        spans[chunk] = span;
      });

  ASSERT_EQ(seen.size(), schedule.size());
  std::vector<std::size_t> sorted = seen;
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < sorted.size(); ++i) EXPECT_EQ(sorted[i], i);

  // The hook hands out the exact records that land in SimResult::spans,
  // in non-decreasing communication-completion order.
  for (std::size_t i = 0; i < schedule.size(); ++i) {
    EXPECT_EQ(spans[i].worker, result.spans[i].worker);
    EXPECT_EQ(spans[i].comm_end, result.spans[i].comm_end);
    EXPECT_EQ(spans[i].compute_start, result.spans[i].compute_start);
    EXPECT_EQ(spans[i].compute_end, result.spans[i].compute_end);
  }
  for (std::size_t i = 1; i < seen.size(); ++i) {
    EXPECT_LE(spans[seen[i - 1]].comm_end, spans[seen[i]].comm_end);
  }
}

TEST(Engine, CompletionHookTimestampsTheMakespan) {
  const Platform plat = Platform::from_speeds({1.0, 2.0, 4.0});
  const Engine engine(plat, {2.0});
  double finish = 0.0;
  const SimResult result =
      engine.run(single_round_schedule({10.0, 20.0, 30.0}), OnePortModel(),
                 [&](std::size_t, const ChunkSpan& span) {
                   finish = std::max(finish, span.compute_end);
                 });
  EXPECT_EQ(finish, result.makespan);
}

TEST(Engine, EmptyHookIsIgnored) {
  const Platform plat = Platform::homogeneous(2);
  const Engine engine(plat);
  const auto schedule = single_round_schedule({1.0, 2.0});
  const SimResult with_hook =
      engine.run(schedule, ParallelLinksModel(), ChunkCompletionHook{});
  const SimResult without = engine.run(schedule, ParallelLinksModel());
  EXPECT_EQ(with_hook.makespan, without.makespan);
}

// --- run_until: chunk-boundary pause/resume -------------------------------

TEST(Engine, RunUntilPastTheMakespanCompletesEverything) {
  const Platform plat = Platform::homogeneous(2);
  const Engine engine(plat);
  const auto schedule = single_round_schedule({1.0, 2.0});
  const SimResult full = engine.run(schedule, ParallelLinksModel());
  const PartialRun partial =
      engine.run_until(schedule, ParallelLinksModel(), full.makespan);
  EXPECT_TRUE(partial.remaining.empty());
  EXPECT_EQ(partial.pause_time, full.makespan);
  EXPECT_EQ(partial.result.makespan, full.makespan);
  EXPECT_DOUBLE_EQ(partial.completed_load, 3.0);
}

TEST(Engine, RunUntilHonorsTheNextChunkBoundary) {
  // One worker (w = 2), two sequential chunks: comm 0→2 / 2→4, compute
  // 2→6 / 6→10, so the chunk boundaries sit at t = 6 and t = 10. A stop
  // request at t = 3 lands on the t = 6 boundary: the in-flight chunk
  // finishes, the second is cancelled at full size.
  const Platform plat = Platform::homogeneous(1, 1.0, 2.0);
  const Engine engine(plat);
  const std::vector<ChunkAssignment> schedule{{0, 2.0}, {0, 2.0}};
  const PartialRun partial =
      engine.run_until(schedule, ParallelLinksModel(), 3.0);
  EXPECT_DOUBLE_EQ(partial.pause_time, 6.0);  // first compute_end
  ASSERT_EQ(partial.remaining.size(), 1u);
  EXPECT_EQ(partial.remaining[0].worker, 0u);
  EXPECT_DOUBLE_EQ(partial.remaining[0].size, 2.0);
  EXPECT_DOUBLE_EQ(partial.completed_load, 2.0);
  // The kept chunk's span is bit-identical to the uninterrupted run's.
  const SimResult full = engine.run(schedule, ParallelLinksModel());
  EXPECT_EQ(partial.result.spans[0].compute_end,
            full.spans[0].compute_end);
  EXPECT_EQ(partial.result.makespan, partial.pause_time);
  // The cancelled chunk keeps its identity but a zeroed timeline.
  EXPECT_DOUBLE_EQ(partial.result.spans[1].size, 2.0);
  EXPECT_DOUBLE_EQ(partial.result.spans[1].compute_end, 0.0);
}

TEST(Engine, RunUntilBeforeAnyBoundaryKeepsTheFirstChunk) {
  // A stop request at t = 0 still lets the running chunk finish: the
  // boundary is the FIRST compute completion, never mid-chunk.
  const Platform plat = Platform::homogeneous(1, 1.0, 2.0);
  const Engine engine(plat);
  const std::vector<ChunkAssignment> schedule{{0, 2.0}, {0, 2.0}};
  const PartialRun partial =
      engine.run_until(schedule, ParallelLinksModel(), 0.0);
  EXPECT_DOUBLE_EQ(partial.pause_time, 6.0);
  EXPECT_EQ(partial.remaining.size(), 1u);
}

TEST(Engine, RunUntilResumeReproducesTotalWorkWhenNothingInFlight) {
  // Two workers, two rounds each. Pause after round 1 and replay the
  // cancelled chunks through a fresh run: every load unit is computed
  // exactly once across the two runs (Σ compute time is conserved),
  // because durable chunks are never re-dispatched.
  const Platform plat = Platform::homogeneous(2, 1.0, 1.0);
  const Engine engine(plat, EngineOptions{2.0});
  const std::vector<ChunkAssignment> schedule{
      {0, 3.0}, {1, 3.0}, {0, 3.0}, {1, 3.0}};
  const SimResult full = engine.run(schedule, ParallelLinksModel());
  // Pause just after the first wave of compute completions.
  const double first_wave = full.spans[0].compute_end;
  const PartialRun partial =
      engine.run_until(schedule, ParallelLinksModel(), first_wave);
  ASSERT_EQ(partial.remaining.size(), 2u);
  const SimResult resumed =
      engine.run(partial.remaining, ParallelLinksModel());
  double paused_compute = 0.0;
  for (const double t : partial.result.worker_compute_time) {
    paused_compute += t;
  }
  double resumed_compute = 0.0;
  for (const double t : resumed.worker_compute_time) {
    resumed_compute += t;
  }
  double full_compute = 0.0;
  for (const double t : full.worker_compute_time) full_compute += t;
  EXPECT_DOUBLE_EQ(paused_compute + resumed_compute, full_compute);
  EXPECT_DOUBLE_EQ(partial.completed_load, 6.0);
}

// --- time-released chunks -------------------------------------------------

TEST(Engine, ReleaseTimeDelaysLinkEntry) {
  // One worker, c = 1, w = 1: a chunk released at t = 5 starts its
  // transfer exactly then, even though the link was free from t = 0.
  const Platform plat = Platform::homogeneous(1, 1.0, 1.0);
  const Engine engine(plat);
  const SimResult result =
      engine.run({{0, 2.0, 5.0}}, CommModelKind::kParallelLinks);
  EXPECT_DOUBLE_EQ(result.spans[0].comm_start, 5.0);
  EXPECT_DOUBLE_EQ(result.spans[0].comm_end, 7.0);
  EXPECT_DOUBLE_EQ(result.makespan, 9.0);
}

TEST(Engine, ReleasedChunkWaitsForTheLinkFifo) {
  // The second chunk is released at t = 1 but the link is busy until
  // t = 4: FIFO order holds and the transfer starts at the link-free
  // instant, not the release.
  const Platform plat = Platform::homogeneous(1, 1.0, 1.0);
  const Engine engine(plat);
  const SimResult result = engine.run({{0, 4.0}, {0, 2.0, 1.0}},
                                      CommModelKind::kParallelLinks);
  EXPECT_DOUBLE_EQ(result.spans[1].comm_start, 4.0);
  EXPECT_DOUBLE_EQ(result.spans[1].comm_end, 6.0);
}

TEST(Engine, ZeroReleasesAreBitIdenticalToTheClassicSchedule) {
  // Explicit release = 0 must reproduce the default-schedule replay bit
  // for bit (the no-release path is the pre-release engine).
  const Platform plat = Platform::from_speeds({1.0, 2.0, 4.0}, 0.5);
  const Engine engine(plat, EngineOptions{2.0});
  const std::vector<ChunkAssignment> classic{
      {0, 2.0}, {1, 4.0}, {2, 1.0}, {0, 3.0}};
  std::vector<ChunkAssignment> released = classic;
  for (ChunkAssignment& chunk : released) chunk.release = 0.0;
  for (const CommModelKind kind :
       {CommModelKind::kParallelLinks, CommModelKind::kOnePort}) {
    const SimResult a = engine.run(classic, kind);
    const SimResult b = engine.run(released, kind);
    ASSERT_EQ(a.spans.size(), b.spans.size());
    for (std::size_t i = 0; i < a.spans.size(); ++i) {
      EXPECT_EQ(a.spans[i].comm_start, b.spans[i].comm_start);
      EXPECT_EQ(a.spans[i].comm_end, b.spans[i].comm_end);
      EXPECT_EQ(a.spans[i].compute_end, b.spans[i].compute_end);
    }
    EXPECT_EQ(a.makespan, b.makespan);
  }
}

TEST(Engine, ReleaseIntoASharedMasterRecomputesWaterFilling) {
  // Capacity 1, private caps 10: transfer A (6 units) runs alone at rate
  // 1 until t = 2, when B (2 units) is released and the master splits
  // 0.5/0.5. B finishes at t = 6; A's remaining 2 units then run at rate
  // 1 again, ending at t = 8.
  const Platform plat = Platform::homogeneous(2, 0.1, 1.0);
  const Engine engine(plat);
  const SimResult result = engine.run({{0, 6.0}, {1, 2.0, 2.0}},
                                      BoundedMultiportModel(1.0));
  EXPECT_DOUBLE_EQ(result.spans[1].comm_start, 2.0);
  EXPECT_NEAR(result.spans[1].comm_end, 6.0, 1e-9);
  EXPECT_NEAR(result.spans[0].comm_end, 8.0, 1e-9);
}

TEST(Engine, QuietGapBetweenReleasesAdvancesTime) {
  // Everything is released late: the engine must jump from an empty
  // in-flight set to the first release, serve it, go quiet again, and
  // jump to the second.
  const Platform plat = Platform::homogeneous(2, 1.0, 1.0);
  const Engine engine(plat);
  const SimResult result = engine.run({{0, 1.0, 10.0}, {1, 1.0, 20.0}},
                                      CommModelKind::kParallelLinks);
  EXPECT_DOUBLE_EQ(result.spans[0].comm_start, 10.0);
  EXPECT_DOUBLE_EQ(result.spans[1].comm_start, 20.0);
  EXPECT_DOUBLE_EQ(result.makespan, 22.0);
}

TEST(Engine, ZeroSizeChunkHonorsItsRelease) {
  const Platform plat = Platform::homogeneous(1, 1.0, 1.0);
  const Engine engine(plat);
  const SimResult result =
      engine.run({{0, 0.0, 3.0}}, CommModelKind::kParallelLinks);
  EXPECT_DOUBLE_EQ(result.spans[0].comm_start, 3.0);
  EXPECT_DOUBLE_EQ(result.spans[0].comm_end, 3.0);
  EXPECT_DOUBLE_EQ(result.makespan, 3.0);
}

TEST(Engine, PerChunkAlphaOverridesTheEngineDefault) {
  // Engine alpha 1, chunk alpha 2: the chunk pays the quadratic cost; a
  // sibling chunk with alpha 0 uses the engine default.
  const Platform plat = Platform::homogeneous(2, 1.0, 1.0);
  const Engine engine(plat);
  const SimResult result =
      engine.run({{0, 3.0, 0.0, 2.0}, {1, 3.0}},
                 CommModelKind::kParallelLinks);
  EXPECT_DOUBLE_EQ(result.spans[0].compute_end, 3.0 + 9.0);
  EXPECT_DOUBLE_EQ(result.spans[1].compute_end, 3.0 + 3.0);
}

TEST(Engine, RejectsBadReleaseAndAlpha) {
  const Platform plat = Platform::homogeneous(1);
  const Engine engine(plat);
  EXPECT_THROW(
      (void)engine.run({{0, 1.0, -1.0}}, CommModelKind::kParallelLinks),
      util::PreconditionError);
  EXPECT_THROW((void)engine.run({{0, 1.0, kInf}},
                                CommModelKind::kParallelLinks),
               util::PreconditionError);
  EXPECT_THROW(
      (void)engine.run({{0, 1.0, 0.0, 0.5}}, CommModelKind::kParallelLinks),
      util::PreconditionError);
}

TEST(Engine, RunUntilFlagsCancelledSpans) {
  const Platform plat = Platform::homogeneous(1, 1.0, 2.0);
  const Engine engine(plat);
  const std::vector<ChunkAssignment> schedule{{0, 2.0}, {0, 2.0}};
  const PartialRun partial =
      engine.run_until(schedule, ParallelLinksModel(), 3.0);
  EXPECT_FALSE(partial.result.spans[0].cancelled);
  EXPECT_TRUE(partial.result.spans[1].cancelled);
}

TEST(Engine, PausedRunDoesNotMisclassifyCancelledWorkersAsIdle) {
  // Two workers; worker 1's only chunk is still in flight at the pause
  // boundary and gets cancelled. The paused statistics must not report
  // worker 1 as a worker the schedule never fed, and the imbalance must
  // cover only the completed work.
  const Platform plat = Platform::homogeneous(2, 1.0, 1.0);
  const Engine engine(plat);
  const std::vector<ChunkAssignment> schedule{{0, 1.0}, {1, 20.0}};
  const SimResult full = engine.run(schedule, ParallelLinksModel());
  const PartialRun partial = engine.run_until(
      schedule, ParallelLinksModel(), full.spans[0].compute_end);
  ASSERT_EQ(partial.remaining.size(), 1u);
  EXPECT_EQ(partial.remaining[0].worker, 1u);
  EXPECT_EQ(partial.result.idle_workers(), 0u);
  EXPECT_DOUBLE_EQ(partial.result.load_imbalance(), 0.0);
}

TEST(Engine, PausedRunStillCountsTrulyIdleWorkers) {
  // Three workers, but the schedule only ever feeds two: the untouched
  // worker stays idle in the paused statistics, while the cancelled one
  // does not.
  const Platform plat = Platform::homogeneous(3, 1.0, 1.0);
  const Engine engine(plat);
  const std::vector<ChunkAssignment> schedule{{0, 1.0}, {1, 20.0}};
  const SimResult full = engine.run(schedule, ParallelLinksModel());
  const PartialRun partial = engine.run_until(
      schedule, ParallelLinksModel(), full.spans[0].compute_end);
  EXPECT_EQ(partial.result.idle_workers(), 1u);
}

TEST(Engine, PausedZeroSizeChunkAtTheBoundaryIsNotCancelled) {
  // A zero-size chunk that completed exactly at t = 0 must stay a
  // completed chunk in the paused result (distinguishable from a
  // cancelled chunk only via the flag — their timelines are identical).
  const Platform plat = Platform::homogeneous(2, 1.0, 1.0);
  const Engine engine(plat);
  const std::vector<ChunkAssignment> schedule{{0, 0.0}, {1, 20.0}};
  const PartialRun partial =
      engine.run_until(schedule, ParallelLinksModel(), 0.0);
  EXPECT_FALSE(partial.result.spans[0].cancelled);
  EXPECT_TRUE(partial.result.spans[1].cancelled);
  EXPECT_DOUBLE_EQ(partial.completed_load, 0.0);
  // Worker 0 completed only a zero-size chunk — genuinely idle; worker 1
  // was cancelled — not idle.
  EXPECT_EQ(partial.result.idle_workers(), 1u);
}

TEST(Engine, RunUntilPreservesReleasesInRemaining) {
  const Platform plat = Platform::homogeneous(1, 1.0, 1.0);
  const Engine engine(plat);
  const std::vector<ChunkAssignment> schedule{{0, 2.0},
                                              {0, 2.0, 50.0, 2.0}};
  const PartialRun partial =
      engine.run_until(schedule, ParallelLinksModel(), 3.0);
  ASSERT_EQ(partial.remaining.size(), 1u);
  EXPECT_DOUBLE_EQ(partial.remaining[0].release, 50.0);
  EXPECT_DOUBLE_EQ(partial.remaining[0].alpha, 2.0);
}

}  // namespace
}  // namespace nldl::sim
