// Unit tests for the dense matrix substrate.
#include "linalg/matrix.hpp"

#include <gtest/gtest.h>

#include "util/assert.hpp"

namespace nldl::linalg {
namespace {

TEST(Matrix, ConstructionAndFill) {
  const Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2U);
  EXPECT_EQ(m.cols(), 3U);
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_DOUBLE_EQ(m(i, j), 1.5);
    }
  }
}

TEST(Matrix, RowMajorIndexing) {
  Matrix m(2, 2);
  m(0, 0) = 1.0;
  m(0, 1) = 2.0;
  m(1, 0) = 3.0;
  m(1, 1) = 4.0;
  EXPECT_EQ(m.data(), (std::vector<double>{1.0, 2.0, 3.0, 4.0}));
}

TEST(Matrix, Identity) {
  const Matrix eye = Matrix::identity(3);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_DOUBLE_EQ(eye(i, j), i == j ? 1.0 : 0.0);
    }
  }
}

TEST(Matrix, RandomInRange) {
  util::Rng rng(1);
  const Matrix m = Matrix::random(10, 10, rng, -2.0, 3.0);
  for (const double v : m.data()) {
    ASSERT_GE(v, -2.0);
    ASSERT_LT(v, 3.0);
  }
}

TEST(Matrix, MaxAbsDiffAndApproxEqual) {
  Matrix a(2, 2, 1.0);
  Matrix b(2, 2, 1.0);
  b(1, 1) = 1.5;
  EXPECT_DOUBLE_EQ(a.max_abs_diff(b), 0.5);
  EXPECT_TRUE(a.approx_equal(b, 0.5));
  EXPECT_FALSE(a.approx_equal(b, 0.4));
}

TEST(Matrix, MaxAbsDiffRejectsShapeMismatch) {
  const Matrix a(2, 2);
  const Matrix b(2, 3);
  EXPECT_THROW((void)a.max_abs_diff(b), util::PreconditionError);
  EXPECT_FALSE(a.approx_equal(b, 1.0));
}

TEST(Matrix, FrobeniusNorm) {
  Matrix m(1, 2);
  m(0, 0) = 3.0;
  m(0, 1) = 4.0;
  EXPECT_DOUBLE_EQ(m.frobenius_norm(), 5.0);
}

TEST(MultiplyNaive, IdentityIsNeutral) {
  util::Rng rng(2);
  const Matrix a = Matrix::random(5, 5, rng);
  const Matrix eye = Matrix::identity(5);
  EXPECT_TRUE(multiply_naive(a, eye).approx_equal(a, 1e-12));
  EXPECT_TRUE(multiply_naive(eye, a).approx_equal(a, 1e-12));
}

TEST(MultiplyNaive, KnownProduct) {
  Matrix a(2, 2);
  a(0, 0) = 1.0; a(0, 1) = 2.0;
  a(1, 0) = 3.0; a(1, 1) = 4.0;
  Matrix b(2, 2);
  b(0, 0) = 5.0; b(0, 1) = 6.0;
  b(1, 0) = 7.0; b(1, 1) = 8.0;
  const Matrix c = multiply_naive(a, b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(MultiplyNaive, RectangularShapes) {
  util::Rng rng(3);
  const Matrix a = Matrix::random(3, 7, rng);
  const Matrix b = Matrix::random(7, 2, rng);
  const Matrix c = multiply_naive(a, b);
  EXPECT_EQ(c.rows(), 3U);
  EXPECT_EQ(c.cols(), 2U);
}

TEST(MultiplyNaive, RejectsDimensionMismatch) {
  const Matrix a(2, 3);
  const Matrix b(2, 3);
  EXPECT_THROW((void)multiply_naive(a, b), util::PreconditionError);
}

}  // namespace
}  // namespace nldl::linalg
