// Tests for obs::TimeSeries (fixed-width windowed aggregation on the
// simulated clock) and obs::BurnRateMonitor (multi-window SLO burn-rate
// alerting): window addressing and clamping, registry folding, JSON
// shape, rising-edge alert semantics, determinism, and the kAlert /
// registry side channels of finalize().
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/slo.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#include "obs/validate.hpp"
#include "util/assert.hpp"
#include "util/json.hpp"
#include "util/json_parse.hpp"

namespace nldl {
namespace {

// --- TimeSeries --------------------------------------------------------------

TEST(TimeSeries, WindowAddressingAndClamping) {
  obs::TimeSeries series(10.0, 35.0);  // ceil(35/10) = 4 windows
  EXPECT_EQ(series.window(), 10.0);
  EXPECT_EQ(series.windows(), 4u);
  EXPECT_EQ(series.index_of(0.0), 0u);
  EXPECT_EQ(series.index_of(9.999), 0u);
  EXPECT_EQ(series.index_of(10.0), 1u);
  EXPECT_EQ(series.index_of(35.0), 3u);    // clamped into the last window
  EXPECT_EQ(series.index_of(1000.0), 3u);  // far past the horizon too

  series.observe("lat", 1.0, 5.0);
  series.observe("lat", 2.0, 3.0);
  series.observe("lat", 12.0, 7.0);
  series.observe("lat", 99.0, 11.0);  // clamps into window 3
  const auto& row = series.at("lat");
  ASSERT_EQ(row.size(), 4u);
  EXPECT_EQ(row[0].count, 2u);
  EXPECT_EQ(row[0].sum, 8.0);
  EXPECT_EQ(row[0].min, 3.0);
  EXPECT_EQ(row[0].max, 5.0);
  EXPECT_EQ(row[0].last, 3.0);
  EXPECT_EQ(row[1].count, 1u);
  EXPECT_EQ(row[2].count, 0u);
  EXPECT_EQ(row[3].count, 1u);
  EXPECT_EQ(row[3].last, 11.0);

  EXPECT_THROW(series.observe("lat", -1.0, 0.0), util::PreconditionError);
  EXPECT_THROW((void)series.at("missing"), util::PreconditionError);
  EXPECT_THROW(obs::TimeSeries(0.0, 10.0), util::PreconditionError);
  EXPECT_THROW(obs::TimeSeries(1.0, -1.0), util::PreconditionError);
  // Zero horizon still yields one window.
  EXPECT_EQ(obs::TimeSeries(1.0, 0.0).windows(), 1u);
}

TEST(TimeSeries, ChannelsKeepFirstTouchOrder) {
  obs::TimeSeries series(1.0, 3.0);
  series.observe("b", 0.0, 1.0);
  series.observe("a", 0.0, 1.0);
  series.observe("b", 1.0, 2.0);
  EXPECT_EQ(series.channels(), (std::vector<std::string>{"b", "a"}));
}

TEST(TimeSeries, FoldImportsRegistrySamples) {
  obs::MetricsRegistry registry;
  registry.counter("jobs") += 7;
  registry.gauge("rho") = 1.5;
  registry.quantile("lat.p95", 0.95).push(4.0);

  obs::TimeSeries series(10.0, 30.0);
  series.fold(registry, 25.0, "reg.");
  EXPECT_EQ(series.channels(),
            (std::vector<std::string>{"reg.jobs", "reg.rho", "reg.lat.p95"}));
  EXPECT_EQ(series.at("reg.jobs")[2].last, 7.0);
  EXPECT_EQ(series.at("reg.rho")[2].last, 1.5);
  EXPECT_EQ(series.at("reg.lat.p95")[2].count, 1u);
}

TEST(TimeSeries, WriteJsonListsNonEmptyWindows) {
  obs::TimeSeries series(10.0, 30.0);
  series.observe("lat", 1.0, 5.0);
  series.observe("lat", 25.0, 7.0);
  std::ostringstream out;
  {
    util::JsonWriter json(out);
    series.write_json(json);
    EXPECT_TRUE(json.complete());
  }
  const util::JsonValue root = util::parse_json(out.str());
  ASSERT_TRUE(root.is_object());
  EXPECT_EQ(root.find("window")->number, 10.0);
  EXPECT_EQ(root.find("windows")->number, 3.0);
  const util::JsonValue* channels = root.find("channels");
  ASSERT_NE(channels, nullptr);
  const util::JsonValue* lat = channels->find("lat");
  ASSERT_NE(lat, nullptr);
  // Two non-empty windows → two [index,count,sum,min,max,last] rows.
  ASSERT_EQ(lat->array.size(), 2u);
  EXPECT_EQ(lat->array[0].array[0].number, 0.0);
  EXPECT_EQ(lat->array[1].array[0].number, 2.0);
  EXPECT_EQ(lat->array[1].array[5].number, 7.0);
}

// --- BurnRateMonitor ---------------------------------------------------------

obs::SloPolicy tight_policy() {
  obs::SloPolicy policy;
  policy.objective = 0.9;  // budget = 0.1
  policy.window = 10.0;
  policy.rules = {{10.0, 20.0, 2.0}};
  return policy;
}

TEST(BurnRate, PolicyValidation) {
  // Non-multiple windows are rejected.
  obs::SloPolicy bad = tight_policy();
  bad.rules = {{15.0, 20.0, 2.0}};
  EXPECT_THROW(obs::BurnRateMonitor(bad, 100.0), util::PreconditionError);
  // Fast window above the slow window is rejected.
  bad.rules = {{20.0, 10.0, 2.0}};
  EXPECT_THROW(obs::BurnRateMonitor(bad, 100.0), util::PreconditionError);
  // Objective outside (0, 1) is rejected.
  obs::SloPolicy off = tight_policy();
  off.objective = 1.0;
  EXPECT_THROW(obs::BurnRateMonitor(off, 100.0), util::PreconditionError);

  const obs::SloPolicy paging = obs::SloPolicy::paging(0.99, 5.0);
  EXPECT_EQ(paging.window, 5.0);
  ASSERT_EQ(paging.rules.size(), 2u);
  EXPECT_EQ(paging.rules[0].fast, 5.0);
  EXPECT_EQ(paging.rules[0].slow, 60.0);
  EXPECT_EQ(paging.rules[0].threshold, 14.4);
  EXPECT_EQ(paging.rules[1].fast, 30.0);
  EXPECT_EQ(paging.rules[1].slow, 360.0);
  // The standard pair always constructs, whatever the base.
  obs::BurnRateMonitor monitor(paging, 360.0);
  monitor.finalize();
  EXPECT_TRUE(monitor.alerts().empty());
}

TEST(BurnRate, RisingEdgeFiresOncePerBreachRun) {
  // budget 0.1, threshold 2 → fires when both trailing windows miss at
  // a rate >= 0.2. Windows 0-1 healthy, 2-4 bad, 5 healthy again.
  obs::BurnRateMonitor monitor(tight_policy(), 60.0);
  for (std::size_t w = 0; w < 6; ++w) {
    const bool bad = w >= 2 && w <= 4;
    const double t = 10.0 * static_cast<double>(w) + 5.0;
    for (int i = 0; i < 10; ++i) {
      monitor.observe(t, bad && i < 5);  // 50% misses in bad windows
    }
  }
  monitor.finalize();
  EXPECT_EQ(monitor.observations(), 60u);
  EXPECT_EQ(monitor.misses(), 15u);
  // One rising edge only: window 2 trips both windows (fast burn 5,
  // trailing-20s burn 2.5) and the breach holds through windows 3-4
  // without re-firing.
  ASSERT_EQ(monitor.alerts().size(), 1u);
  EXPECT_EQ(monitor.alerts()[0].rule, 0u);
  EXPECT_EQ(monitor.alerts()[0].time, 30.0);  // window 2's end
  EXPECT_GE(monitor.alerts()[0].fast_burn, 2.0);
  EXPECT_GE(monitor.alerts()[0].slow_burn, 2.0);
  EXPECT_DOUBLE_EQ(monitor.peak_burn(), 5.0);  // 0.5 miss rate / 0.1 budget

  // Finalize is idempotent and observe-after-finalize is rejected.
  monitor.finalize();
  EXPECT_EQ(monitor.alerts().size(), 1u);
  EXPECT_THROW(monitor.observe(1.0, false), util::PreconditionError);

  const std::string report = monitor.render();
  EXPECT_NE(report.find("slo burn-rate"), std::string::npos);
  EXPECT_NE(report.find("1 alert"), std::string::npos);
}

TEST(BurnRate, ShortBlipDiesInTheSlowWindow) {
  // One bad fast window surrounded by health: the fast burn spikes but
  // the 20 s confirmation window stays under threshold → no alert.
  obs::BurnRateMonitor monitor(tight_policy(), 60.0);
  for (std::size_t w = 0; w < 6; ++w) {
    const bool bad = w == 3;
    const double t = 10.0 * static_cast<double>(w) + 5.0;
    for (int i = 0; i < 10; ++i) {
      monitor.observe(t, bad && i < 3);  // 30% misses, one window only
    }
  }
  monitor.finalize();
  EXPECT_TRUE(monitor.alerts().empty());
  EXPECT_DOUBLE_EQ(monitor.peak_burn(), 3.0);  // the blip still registers
}

TEST(BurnRate, ObservationOrderDoesNotMatter) {
  const auto feed = [](obs::BurnRateMonitor& monitor, bool reversed) {
    std::vector<std::pair<double, bool>> events;
    for (int i = 0; i < 40; ++i) {
      events.emplace_back(1.5 * i, i % 3 == 0);
    }
    if (reversed) {
      std::vector<std::pair<double, bool>> flipped(events.rbegin(),
                                                   events.rend());
      events = flipped;
    }
    for (const auto& [t, miss] : events) monitor.observe(t, miss);
    monitor.finalize();
  };
  obs::BurnRateMonitor forward(tight_policy(), 60.0);
  obs::BurnRateMonitor backward(tight_policy(), 60.0);
  feed(forward, false);
  feed(backward, true);
  ASSERT_EQ(forward.alerts().size(), backward.alerts().size());
  for (std::size_t i = 0; i < forward.alerts().size(); ++i) {
    EXPECT_EQ(forward.alerts()[i].time, backward.alerts()[i].time);
    EXPECT_EQ(forward.alerts()[i].fast_burn, backward.alerts()[i].fast_burn);
  }
  EXPECT_EQ(forward.peak_burn(), backward.peak_burn());
}

TEST(BurnRate, FinalizeEmitsAlertsAndAccountsRegistry) {
  obs::BurnRateMonitor monitor(tight_policy(), 30.0);
  for (int i = 0; i < 30; ++i) {
    monitor.observe(static_cast<double>(i), i % 2 == 0);  // 50% misses
  }
  obs::TraceRecorder recorder;
  obs::MetricsRegistry registry;
  monitor.finalize(&recorder, &registry);
  ASSERT_FALSE(monitor.alerts().empty());

  const auto alerts = recorder.of_kind(obs::EventKind::kAlert);
  ASSERT_EQ(alerts.size(), monitor.alerts().size());
  for (std::size_t i = 0; i < alerts.size(); ++i) {
    EXPECT_EQ(alerts[i].start, monitor.alerts()[i].time);
    EXPECT_EQ(alerts[i].end, monitor.alerts()[i].time);
    EXPECT_EQ(alerts[i].value, monitor.alerts()[i].fast_burn);
    EXPECT_EQ(alerts[i].size, monitor.alerts()[i].slow_burn);
  }
  EXPECT_EQ(registry.counter_value("slo.observations"), 30u);
  EXPECT_EQ(registry.counter_value("slo.misses"), 15u);
  EXPECT_EQ(registry.counter_value("slo.alerts"), monitor.alerts().size());
  EXPECT_EQ(registry.gauge_value("slo.peak_burn"), monitor.peak_burn());

  // The emitted instants export into a validating Chrome trace.
  std::ostringstream out;
  obs::ChromeTraceOptions options;
  obs::write_chrome_trace(out, recorder.events(), options);
  const obs::ValidationResult result =
      obs::validate_chrome_trace_text(out.str());
  EXPECT_TRUE(result) << result.error;
  EXPECT_NE(out.str().find("\"alert\""), std::string::npos);
}

TEST(BurnRate, EmptyRunIsSilent) {
  obs::BurnRateMonitor monitor(tight_policy(), 10.0);
  monitor.finalize();
  EXPECT_TRUE(monitor.alerts().empty());
  EXPECT_EQ(monitor.peak_burn(), 0.0);
  EXPECT_EQ(monitor.observations(), 0u);
  EXPECT_NE(monitor.render().find("0 jobs"), std::string::npos);
}

}  // namespace
}  // namespace nldl
