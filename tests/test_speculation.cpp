// Tests for straggler injection + speculative re-execution (the MapReduce
// mechanism of paper Section 1.1).
#include "mapreduce/speculation.hpp"

#include <gtest/gtest.h>

#include "util/assert.hpp"

namespace nldl::mapreduce {
namespace {

std::vector<SimTask> identical_tasks(std::size_t count, double cost) {
  std::vector<SimTask> tasks(count);
  for (std::size_t t = 0; t < count; ++t) {
    tasks[t].compute_cost = cost;
    tasks[t].inputs = {static_cast<BlockId>(t)};
  }
  return tasks;
}

TEST(Speculation, HealthyClusterMatchesPlainSchedule) {
  StragglerConfig config;
  config.speeds = {1.0, 2.0};
  const auto tasks = identical_tasks(30, 1.0);
  const auto outcome = run_with_stragglers(tasks, config);

  ClusterConfig plain;
  plain.speeds = config.speeds;
  const auto reference = run_cluster(tasks, plain);
  EXPECT_NEAR(outcome.makespan, reference.makespan, 1e-9);
  EXPECT_EQ(outcome.backup_launches, 0U);
}

TEST(Speculation, StragglerStretchesMakespan) {
  StragglerConfig healthy;
  healthy.speeds = {1.0, 1.0, 1.0, 1.0};
  const auto tasks = identical_tasks(40, 1.0);
  const auto base = run_with_stragglers(tasks, healthy);

  StragglerConfig degraded = healthy;
  degraded.slowdown = {1.0, 1.0, 1.0, 10.0};
  const auto slow = run_with_stragglers(tasks, degraded);
  EXPECT_GT(slow.makespan, base.makespan);
}

TEST(Speculation, BackupTasksRescueTheTail) {
  // One worker 20x degraded: without speculation its last task dominates
  // the makespan; with backups an idle healthy worker re-runs it.
  StragglerConfig config;
  config.speeds = {1.0, 1.0, 1.0, 1.0};
  config.slowdown = {1.0, 1.0, 1.0, 20.0};
  const auto tasks = identical_tasks(40, 1.0);

  const auto without = run_with_stragglers(tasks, config);
  auto speculative = config;
  speculative.speculative_execution = true;
  const auto with = run_with_stragglers(tasks, speculative);

  EXPECT_LT(with.makespan, without.makespan);
  EXPECT_GE(with.backup_launches, 1U);
  EXPECT_GE(with.backups_won, 1U);
}

TEST(Speculation, BackupsCostExtraBytes) {
  StragglerConfig config;
  config.speeds = {1.0, 1.0};
  config.slowdown = {1.0, 50.0};
  config.bytes_per_block = 4.0;
  config.speculative_execution = true;
  const auto tasks = identical_tasks(10, 1.0);
  const auto with = run_with_stragglers(tasks, config);

  auto plain = config;
  plain.speculative_execution = false;
  const auto without = run_with_stragglers(tasks, plain);
  // Duplicated tasks re-fetch their inputs on the backup worker.
  EXPECT_GE(with.total_bytes, without.total_bytes);
}

TEST(Speculation, NoBackupWhenItCannotWin) {
  // Degraded worker is only slightly slow: a backup started after the
  // original cannot finish earlier, so none should launch.
  StragglerConfig config;
  config.speeds = {1.0, 1.0};
  config.slowdown = {1.0, 1.01};
  config.speculative_execution = true;
  const auto tasks = identical_tasks(2, 1.0);
  const auto outcome = run_with_stragglers(tasks, config);
  EXPECT_EQ(outcome.backups_won, 0U);
}

TEST(Speculation, EmptyTaskList) {
  StragglerConfig config;
  config.speeds = {1.0};
  const auto outcome = run_with_stragglers({}, config);
  EXPECT_DOUBLE_EQ(outcome.makespan, 0.0);
}

TEST(Speculation, RejectsBadConfig) {
  StragglerConfig bad;
  EXPECT_THROW((void)run_with_stragglers({}, bad), util::PreconditionError);
  StragglerConfig mismatched;
  mismatched.speeds = {1.0, 1.0};
  mismatched.slowdown = {1.0};
  EXPECT_THROW((void)run_with_stragglers(identical_tasks(1, 1.0),
                                         mismatched),
               util::PreconditionError);
  StragglerConfig speedup;
  speedup.speeds = {1.0};
  speedup.slowdown = {0.5};
  EXPECT_THROW((void)run_with_stragglers(identical_tasks(1, 1.0), speedup),
               util::PreconditionError);
}

}  // namespace
}  // namespace nldl::mapreduce
