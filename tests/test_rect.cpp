// Geometry unit tests for Rect / IRect.
#include "partition/rect.hpp"

#include <gtest/gtest.h>

namespace nldl::partition {
namespace {

TEST(Rect, AreaAndHalfPerimeter) {
  const Rect rect{0.0, 0.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(rect.area(), 12.0);
  EXPECT_DOUBLE_EQ(rect.half_perimeter(), 7.0);
}

TEST(Rect, ContainsHalfOpenSemantics) {
  const Rect rect{1.0, 2.0, 2.0, 2.0};
  EXPECT_TRUE(rect.contains(1.0, 2.0));    // lower-left inclusive
  EXPECT_TRUE(rect.contains(2.9, 3.9));
  EXPECT_FALSE(rect.contains(3.0, 3.0));   // upper edges exclusive
  EXPECT_FALSE(rect.contains(0.9, 3.0));
}

TEST(Rect, OverlapsDetectsInteriorIntersection) {
  const Rect a{0.0, 0.0, 2.0, 2.0};
  const Rect b{1.0, 1.0, 2.0, 2.0};
  EXPECT_TRUE(a.overlaps(b));
  EXPECT_TRUE(b.overlaps(a));
}

TEST(Rect, TouchingEdgesDoNotOverlap) {
  const Rect a{0.0, 0.0, 1.0, 1.0};
  const Rect right{1.0, 0.0, 1.0, 1.0};
  const Rect above{0.0, 1.0, 1.0, 1.0};
  EXPECT_FALSE(a.overlaps(right));
  EXPECT_FALSE(a.overlaps(above));
}

TEST(Rect, ZeroSizeNeverOverlaps) {
  const Rect empty{0.5, 0.5, 0.0, 0.0};
  const Rect full{0.0, 0.0, 1.0, 1.0};
  EXPECT_FALSE(empty.overlaps(full));
  EXPECT_FALSE(full.overlaps(empty));
}

TEST(IRect, AreaAndHalfPerimeter) {
  const IRect rect{2, 3, 5, 7};
  EXPECT_EQ(rect.area(), 35);
  EXPECT_EQ(rect.half_perimeter(), 12);
}

TEST(IRect, EmptyHasZeroArea) {
  const IRect rect{0, 0, 0, 9};
  EXPECT_EQ(rect.area(), 0);
}

}  // namespace
}  // namespace nldl::partition
