// Unit and statistical tests for the deterministic RNG.
#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "util/assert.hpp"
#include "util/stats.hpp"

namespace nldl::util {
namespace {

TEST(SplitMix64, MatchesReferenceSequence) {
  // Reference values for seed 1234567 from the public-domain reference
  // implementation (Steele/Lea/Flood).
  SplitMix64 sm(1234567);
  EXPECT_EQ(sm.next(), 6457827717110365317ULL);
  EXPECT_EQ(sm.next(), 3203168211198807973ULL);
  EXPECT_EQ(sm.next(), 9817491932198370423ULL);
}

TEST(Xoshiro, DeterministicAcrossInstances) {
  Xoshiro256StarStar a(42);
  Xoshiro256StarStar b(42);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a(), b());
  }
}

TEST(Xoshiro, DifferentSeedsDiffer) {
  Xoshiro256StarStar a(1);
  Xoshiro256StarStar b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Xoshiro, JumpProducesDisjointStream) {
  Xoshiro256StarStar a(7);
  Xoshiro256StarStar b(7);
  b.jump();
  std::set<std::uint64_t> first;
  for (int i = 0; i < 1000; ++i) first.insert(a());
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(first.count(b()), 0U);
  }
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(10);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(3.5, 12.25);
    ASSERT_GE(u, 3.5);
    ASSERT_LT(u, 12.25);
  }
}

TEST(Rng, UniformRejectsEmptyRange) {
  Rng rng(1);
  EXPECT_THROW((void)rng.uniform(2.0, 2.0), PreconditionError);
  EXPECT_THROW((void)rng.uniform(3.0, 1.0), PreconditionError);
}

TEST(Rng, UniformMeanIsCentered) {
  Rng rng(11);
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) stats.push(rng.uniform());
  EXPECT_NEAR(stats.mean(), 0.5, 0.005);
  EXPECT_NEAR(stats.variance(), 1.0 / 12.0, 0.005);
}

TEST(Rng, UniformIntCoversAllValues) {
  Rng rng(12);
  std::vector<int> counts(6, 0);
  for (int i = 0; i < 60000; ++i) {
    const auto v = rng.uniform_int(1, 6);
    ASSERT_GE(v, 1);
    ASSERT_LE(v, 6);
    ++counts[static_cast<std::size_t>(v - 1)];
  }
  for (const int c : counts) {
    EXPECT_NEAR(c, 10000, 500);
  }
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.uniform_int(5, 5), 5);
  }
}

TEST(Rng, UniformIntRejectsInvertedRange) {
  Rng rng(1);
  EXPECT_THROW((void)rng.uniform_int(3, 2), PreconditionError);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(14);
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) stats.push(rng.normal());
  EXPECT_NEAR(stats.mean(), 0.0, 0.01);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.01);
}

TEST(Rng, NormalScalesAndShifts) {
  Rng rng(15);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.push(rng.normal(10.0, 3.0));
  EXPECT_NEAR(stats.mean(), 10.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 3.0, 0.05);
}

TEST(Rng, NormalRejectsNegativeStddev) {
  Rng rng(1);
  EXPECT_THROW((void)rng.normal(0.0, -1.0), PreconditionError);
}

TEST(Rng, LogNormalMedianIsExpMu) {
  // The median of LogNormal(mu, sigma) is exp(mu); with mu = 0 it is 1.
  Rng rng(16);
  std::vector<double> sample;
  sample.reserve(100001);
  for (int i = 0; i < 100001; ++i) sample.push_back(rng.lognormal(0.0, 1.0));
  EXPECT_NEAR(quantile(std::move(sample), 0.5), 1.0, 0.03);
}

TEST(Rng, LogNormalIsPositive) {
  Rng rng(17);
  for (int i = 0; i < 10000; ++i) {
    ASSERT_GT(rng.lognormal(0.0, 1.0), 0.0);
  }
}

TEST(Rng, SplitStreamsAreIndependent) {
  Rng parent(18);
  Rng child = parent.split();
  // The child should not replay the parent's outputs.
  std::set<std::uint64_t> parent_draws;
  for (int i = 0; i < 1000; ++i) parent_draws.insert(parent.next_u64());
  int collisions = 0;
  for (int i = 0; i < 1000; ++i) {
    if (parent_draws.count(child.next_u64()) != 0) ++collisions;
  }
  EXPECT_EQ(collisions, 0);
}

TEST(Rng, RepeatedSplitsDiffer) {
  Rng parent(19);
  Rng a = parent.split();
  Rng b = parent.split();
  EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(Rng, ShufflePreservesMultiset) {
  Rng rng(20);
  std::vector<int> values{1, 2, 3, 4, 5, 6, 7, 8, 9};
  auto shuffled = values;
  rng.shuffle(shuffled);
  auto sorted = shuffled;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, values);
}

TEST(Rng, ShuffleIsUniformish) {
  // Each position should host each value ~ 1/n of the time.
  Rng rng(21);
  constexpr int kN = 5;
  constexpr int kTrials = 50000;
  int first_position_counts[kN] = {};
  for (int t = 0; t < kTrials; ++t) {
    std::vector<int> values{0, 1, 2, 3, 4};
    rng.shuffle(values);
    ++first_position_counts[values[0]];
  }
  for (const int c : first_position_counts) {
    EXPECT_NEAR(c, kTrials / kN, 600);
  }
}

TEST(Rng, ExponentialMatchesTheRate) {
  Rng rng(2024);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) stats.push(rng.exponential(4.0));
  // Mean 1/rate, stddev 1/rate.
  EXPECT_NEAR(stats.mean(), 0.25, 0.01);
  EXPECT_NEAR(stats.stddev(), 0.25, 0.01);
  EXPECT_GT(stats.min(), 0.0);
}

TEST(Rng, ExponentialIsDeterministicAndValidated) {
  Rng a(9);
  Rng b(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.exponential(2.0), b.exponential(2.0));
  }
  EXPECT_THROW(a.exponential(0.0), PreconditionError);
  EXPECT_THROW(a.exponential(-1.0), PreconditionError);
}

TEST(Rng, ParetoMatchesTheMomentsForShapeAboveFour) {
  // Pareto(scale, shape): mean = a·x_m/(a−1) for a > 1, variance
  // = x_m²·a/((a−1)²(a−2)) for a > 2. Use a = 5 — the 4th moment exists
  // (a > 4), so the SAMPLE variance is stable enough to assert on.
  Rng rng(77);
  const double scale = 2.0;
  const double shape = 5.0;
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) stats.push(rng.pareto(scale, shape));
  EXPECT_NEAR(stats.mean(), shape * scale / (shape - 1.0), 0.02);
  const double variance =
      scale * scale * shape / ((shape - 1.0) * (shape - 1.0) * (shape - 2.0));
  EXPECT_NEAR(stats.variance(), variance, 0.05);
  EXPECT_GE(stats.min(), scale);  // support is [scale, inf)
}

TEST(Rng, ParetoMedianMatchesTheClosedForm) {
  // Median = scale · 2^(1/shape); check the empirical median and that
  // the tail is genuinely heavier than exponential at the same mean.
  Rng rng(78);
  const double scale = 1.0;
  const double shape = 1.5;
  std::vector<double> sample;
  for (int i = 0; i < 100000; ++i) sample.push_back(rng.pareto(scale, shape));
  EXPECT_NEAR(quantile(sample, 0.5), scale * std::pow(2.0, 1.0 / shape),
              0.02);
  // P(X > 8) = 8^-1.5 ≈ 4.4% — far above the exponential tail at the
  // same mean (mean 3, P ≈ e^(-8/3) ≈ 7e-2... use a starker threshold).
  std::size_t tail = 0;
  for (const double x : sample) {
    if (x > 100.0) ++tail;
  }
  // P(X > 100) = 100^-1.5 = 1e-3; exponential(mean 3) gives e^-33 ≈ 0.
  EXPECT_NEAR(static_cast<double>(tail) / 100000.0, 1e-3, 5e-4);
}

TEST(Rng, ParetoIsDeterministicAndValidated) {
  Rng a(13);
  Rng b(13);
  for (int i = 0; i < 100; ++i) {
    const double x = a.pareto(5.0, 1.5);
    EXPECT_EQ(x, b.pareto(5.0, 1.5));
    EXPECT_TRUE(std::isfinite(x));
    EXPECT_GE(x, 5.0);
  }
  EXPECT_THROW(a.pareto(0.0, 1.0), PreconditionError);
  EXPECT_THROW(a.pareto(1.0, 0.0), PreconditionError);
  EXPECT_THROW(a.pareto(-1.0, 2.0), PreconditionError);
}

}  // namespace
}  // namespace nldl::util
