// Equivalence tests across the three communication models, on randomized
// platforms and randomized multi-round schedules:
//
//   - bounded-multiport with capacity = +inf (unlimited concurrency)
//     reproduces parallel links bit for bit;
//   - bounded-multiport restricted to one transfer at a time — the
//     one-port model's defining constraint — reproduces one-port bit for
//     bit, including with capacity set exactly to a single link's rate on
//     uniform-bandwidth platforms;
//   - with capacity equal to a single link's rate but unrestricted
//     concurrency, fluid max-min sharing still moves the same aggregate
//     volume as the serialized port, so the communication phase ends at
//     the same instant;
//   - makespan is monotone non-increasing in master capacity.
#include "sim/comm_model.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "platform/processor.hpp"
#include "sim/bounded_multiport.hpp"
#include "sim/engine.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace nldl::sim {
namespace {

using platform::Platform;
using platform::Processor;

constexpr double kInf = std::numeric_limits<double>::infinity();

Platform random_platform(util::Rng& rng, bool uniform_c) {
  const std::size_t p = static_cast<std::size_t>(rng.uniform_int(1, 6));
  std::vector<Processor> workers;
  workers.reserve(p);
  for (std::size_t i = 0; i < p; ++i) {
    Processor proc;
    proc.c = uniform_c ? 1.0 : rng.uniform(0.2, 3.0);
    proc.w = rng.uniform(0.2, 3.0);
    workers.push_back(proc);
  }
  return Platform(std::move(workers));
}

std::vector<ChunkAssignment> random_schedule(util::Rng& rng, std::size_t p,
                                             bool with_releases = false) {
  const std::size_t chunks = static_cast<std::size_t>(rng.uniform_int(0, 24));
  std::vector<ChunkAssignment> schedule;
  schedule.reserve(chunks);
  for (std::size_t k = 0; k < chunks; ++k) {
    ChunkAssignment chunk;
    chunk.worker = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(p) - 1));
    // A few zero-size chunks exercise the instant-completion path.
    chunk.size = rng.uniform() < 0.1 ? 0.0 : rng.uniform(0.1, 10.0);
    if (with_releases) {
      // A mix of immediately-available and time-released chunks,
      // including releases that land mid-flight of earlier transfers.
      chunk.release = rng.uniform() < 0.4 ? 0.0 : rng.uniform(0.0, 30.0);
    }
    schedule.push_back(chunk);
  }
  return schedule;
}

void expect_identical(const SimResult& a, const SimResult& b) {
  ASSERT_EQ(a.spans.size(), b.spans.size());
  for (std::size_t i = 0; i < a.spans.size(); ++i) {
    EXPECT_EQ(a.spans[i].worker, b.spans[i].worker);
    EXPECT_EQ(a.spans[i].comm_start, b.spans[i].comm_start) << "chunk " << i;
    EXPECT_EQ(a.spans[i].comm_end, b.spans[i].comm_end) << "chunk " << i;
    EXPECT_EQ(a.spans[i].compute_start, b.spans[i].compute_start)
        << "chunk " << i;
    EXPECT_EQ(a.spans[i].compute_end, b.spans[i].compute_end)
        << "chunk " << i;
  }
  EXPECT_EQ(a.makespan, b.makespan);
}

TEST(CommModelEquivalence, InfiniteCapacityIsParallelLinks) {
  util::Rng rng(2013);
  for (int rep = 0; rep < 50; ++rep) {
    const Platform plat = random_platform(rng, /*uniform_c=*/false);
    const auto schedule = random_schedule(rng, plat.size());
    const Engine engine(plat, EngineOptions{rep % 2 == 0 ? 1.0 : 2.0});
    const SimResult links =
        engine.run(schedule, CommModelKind::kParallelLinks);
    const SimResult bounded =
        engine.run(schedule, BoundedMultiportModel(kInf));
    expect_identical(links, bounded);
  }
}

TEST(CommModelEquivalence, SingleTransferAtATimeIsOnePort) {
  // One transfer at a time with an uncapped budget: the heterogeneous-
  // bandwidth one-port star.
  util::Rng rng(41);
  for (int rep = 0; rep < 50; ++rep) {
    const Platform plat = random_platform(rng, /*uniform_c=*/false);
    const auto schedule = random_schedule(rng, plat.size());
    const Engine engine(plat);
    const SimResult one_port = engine.run(schedule, CommModelKind::kOnePort);
    const SimResult bounded =
        engine.run(schedule, BoundedMultiportModel::one_port());
    expect_identical(one_port, bounded);
  }
}

TEST(CommModelEquivalence, LinkRateCapacitySerialIsOnePort) {
  // Capacity equal to a single link's rate, serving one transfer at a
  // time, on platforms with uniform bandwidth (the generated-platform
  // setting): exactly the one-port star.
  util::Rng rng(42);
  for (int rep = 0; rep < 50; ++rep) {
    const Platform plat = random_platform(rng, /*uniform_c=*/true);
    const auto schedule = random_schedule(rng, plat.size());
    const Engine engine(plat, EngineOptions{rep % 2 == 0 ? 1.0 : 1.5});
    const SimResult one_port = engine.run(schedule, CommModelKind::kOnePort);
    const double link_rate = plat.worker(0).bandwidth();
    const SimResult bounded =
        engine.run(schedule, BoundedMultiportModel(link_rate, 1));
    expect_identical(one_port, bounded);
  }
}

TEST(CommModelEquivalence, LinkRateCapacityFluidEndsCommWithOnePort) {
  // Fluid max-min sharing at aggregate capacity = one link's rate divides
  // the port among pending workers instead of serializing, so individual
  // arrivals differ — but the total volume moves at the same capped rate,
  // and the communication phase ends at the one-port instant.
  util::Rng rng(43);
  for (int rep = 0; rep < 50; ++rep) {
    const Platform plat = random_platform(rng, /*uniform_c=*/true);
    const auto schedule = random_schedule(rng, plat.size());
    const Engine engine(plat);
    const double link_rate = plat.worker(0).bandwidth();
    const SimResult one_port = engine.run(schedule, CommModelKind::kOnePort);
    const SimResult fluid =
        engine.run(schedule, BoundedMultiportModel(link_rate));
    double one_port_end = 0.0;
    double fluid_end = 0.0;
    for (const ChunkSpan& span : one_port.spans) {
      one_port_end = std::max(one_port_end, span.comm_end);
    }
    for (const ChunkSpan& span : fluid.spans) {
      fluid_end = std::max(fluid_end, span.comm_end);
    }
    EXPECT_NEAR(fluid_end, one_port_end, 1e-9 * std::max(1.0, one_port_end));
  }
}

TEST(CommModelEquivalence, MakespanMonotoneInCapacity) {
  util::Rng rng(7);
  for (int rep = 0; rep < 20; ++rep) {
    const Platform plat = random_platform(rng, /*uniform_c=*/false);
    const auto schedule = random_schedule(rng, plat.size());
    const Engine engine(plat);
    double previous = kInf;
    for (const double capacity : {0.25, 1.0, 4.0, 16.0, kInf}) {
      const double makespan =
          engine.run(schedule, BoundedMultiportModel(capacity)).makespan;
      EXPECT_LE(makespan, previous * (1.0 + 1e-9) + 1e-9)
          << "capacity " << capacity;
      previous = makespan;
    }
  }
}

TEST(CommModelEquivalence, DeprecatedShimMatchesEngine) {
  // simulate_bounded_multiport() is a thin wrapper over the engine; its
  // per-worker view must agree with the spans.
  util::Rng rng(99);
  for (int rep = 0; rep < 20; ++rep) {
    const Platform plat = random_platform(rng, /*uniform_c=*/false);
    std::vector<double> amounts(plat.size());
    for (double& amount : amounts) {
      amount = rng.uniform() < 0.2 ? 0.0 : rng.uniform(0.1, 10.0);
    }
    const double capacity = rng.uniform(0.5, 8.0);
    const auto shim =
        simulate_bounded_multiport(plat, amounts, capacity, 2.0);
    const Engine engine(plat, EngineOptions{2.0});
    const SimResult direct =
        engine.run_single_round(amounts, BoundedMultiportModel(capacity));
    for (const ChunkSpan& span : direct.spans) {
      EXPECT_EQ(shim.comm_finish[span.worker], span.comm_end);
      EXPECT_EQ(shim.compute_finish[span.worker], span.compute_end);
    }
    EXPECT_EQ(shim.makespan, direct.makespan);
  }
}

TEST(CommModel, MaxMinFairRatesWaterFill) {
  // Private caps 0.5 and 10 sharing capacity 4: the slow link saturates,
  // the fast one takes the rest.
  const auto rates = max_min_fair_rates({0.5, 10.0}, 4.0);
  EXPECT_DOUBLE_EQ(rates[0], 0.5);
  EXPECT_DOUBLE_EQ(rates[1], 3.5);
  // Equal caps under a binding capacity split evenly.
  const auto equal = max_min_fair_rates({10.0, 10.0}, 1.0);
  EXPECT_DOUBLE_EQ(equal[0], 0.5);
  EXPECT_DOUBLE_EQ(equal[1], 0.5);
  // Unbounded capacity saturates every private cap.
  const auto caps = max_min_fair_rates({1.0, 2.0, 3.0}, kInf);
  EXPECT_DOUBLE_EQ(caps[0], 1.0);
  EXPECT_DOUBLE_EQ(caps[1], 2.0);
  EXPECT_DOUBLE_EQ(caps[2], 3.0);
}

TEST(CommModel, FactoryAndNames) {
  EXPECT_EQ(to_string(CommModelKind::kParallelLinks), "parallel-links");
  EXPECT_EQ(to_string(CommModelKind::kOnePort), "one-port");
  EXPECT_EQ(to_string(CommModelKind::kBoundedMultiport),
            "bounded-multiport");
  const auto links = make_comm_model(CommModelKind::kParallelLinks);
  EXPECT_EQ(links->kind(), CommModelKind::kParallelLinks);
  const auto port = make_comm_model(CommModelKind::kOnePort);
  EXPECT_EQ(port->kind(), CommModelKind::kOnePort);
  const auto bounded = make_comm_model(CommModelKind::kBoundedMultiport, 2.5);
  EXPECT_EQ(bounded->kind(), CommModelKind::kBoundedMultiport);
}

TEST(CommModel, CompatibilityAliasesDenoteKinds) {
  // The pre-engine spelling `sim::CommModel::kOnePort` still works.
  EXPECT_EQ(CommModel::kParallelLinks, CommModelKind::kParallelLinks);
  EXPECT_EQ(CommModel::kOnePort, CommModelKind::kOnePort);
  EXPECT_EQ(CommModel::kBoundedMultiport, CommModelKind::kBoundedMultiport);
}

TEST(CommModel, RejectsBadParameters) {
  EXPECT_THROW(BoundedMultiportModel(0.0), util::PreconditionError);
  EXPECT_THROW(BoundedMultiportModel(-1.0), util::PreconditionError);
  EXPECT_THROW(BoundedMultiportModel(1.0, 0), util::PreconditionError);
  // Degenerate knobs are rejected, not silently water-filled.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW((void)BoundedMultiportModel(nan), util::PreconditionError);
  EXPECT_THROW((void)make_comm_model(CommModelKind::kBoundedMultiport, nan),
               util::PreconditionError);
  EXPECT_THROW(
      (void)make_comm_model(CommModelKind::kBoundedMultiport, -2.0),
      util::PreconditionError);
  EXPECT_THROW(
      (void)make_comm_model(CommModelKind::kBoundedMultiport, 1.0, 0),
      util::PreconditionError);
}

TEST(CommModel, MaxMinFairRatesRejectsDegenerateInputs) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW((void)max_min_fair_rates({1.0, 2.0}, nan),
               util::PreconditionError);
  EXPECT_THROW((void)max_min_fair_rates({1.0, 2.0}, -1.0),
               util::PreconditionError);
  EXPECT_THROW((void)max_min_fair_rates({1.0, nan}, 4.0),
               util::PreconditionError);
  EXPECT_THROW((void)max_min_fair_rates({-0.5, 1.0}, 4.0),
               util::PreconditionError);
  // Zero capacity is a defined (all-zero) answer, not garbage.
  const auto zero = max_min_fair_rates({1.0, 2.0}, 0.0);
  EXPECT_DOUBLE_EQ(zero[0], 0.0);
  EXPECT_DOUBLE_EQ(zero[1], 0.0);
}

// --- degenerate limits on time-released schedules -------------------------

TEST(CommModelEquivalence, InfiniteCapacityIsParallelLinksWithReleases) {
  util::Rng rng(2026);
  for (int rep = 0; rep < 50; ++rep) {
    const Platform plat = random_platform(rng, /*uniform_c=*/false);
    const auto schedule =
        random_schedule(rng, plat.size(), /*with_releases=*/true);
    const Engine engine(plat, EngineOptions{rep % 2 == 0 ? 1.0 : 2.0});
    const SimResult links =
        engine.run(schedule, CommModelKind::kParallelLinks);
    const SimResult bounded =
        engine.run(schedule, BoundedMultiportModel(kInf));
    expect_identical(links, bounded);
  }
}

TEST(CommModelEquivalence, SingleTransferAtATimeIsOnePortWithReleases) {
  util::Rng rng(1729);
  for (int rep = 0; rep < 50; ++rep) {
    const Platform plat = random_platform(rng, /*uniform_c=*/false);
    const auto schedule =
        random_schedule(rng, plat.size(), /*with_releases=*/true);
    const Engine engine(plat);
    const SimResult one_port = engine.run(schedule, CommModelKind::kOnePort);
    const SimResult bounded =
        engine.run(schedule, BoundedMultiportModel::one_port());
    expect_identical(one_port, bounded);
  }
}

TEST(CommModelEquivalence, MakespanMonotoneInCapacityWithReleases) {
  util::Rng rng(77);
  for (int rep = 0; rep < 20; ++rep) {
    const Platform plat = random_platform(rng, /*uniform_c=*/false);
    const auto schedule =
        random_schedule(rng, plat.size(), /*with_releases=*/true);
    const Engine engine(plat);
    double previous = kInf;
    for (const double capacity : {0.25, 1.0, 4.0, 16.0, kInf}) {
      const double makespan =
          engine.run(schedule, BoundedMultiportModel(capacity)).makespan;
      EXPECT_LE(makespan, previous * (1.0 + 1e-9) + 1e-9)
          << "capacity " << capacity;
      previous = makespan;
    }
  }
}

}  // namespace
}  // namespace nldl::sim
