// Tests for the deterministic parallel sweep framework: grid layout,
// RNG sub-stream pre-splitting, and — the core contract — bit-identical
// results and reductions for every thread count.
#include "util/sweep.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "util/assert.hpp"
#include "util/stats.hpp"

namespace nldl::util {
namespace {

TEST(Grid, EmptyGridHasOnePoint) {
  Grid grid;
  EXPECT_EQ(grid.size(), 1U);
  EXPECT_EQ(grid.axes(), 0U);
}

TEST(Grid, SizeIsProductOfAxes) {
  Grid grid;
  grid.axis("a", {1.0, 2.0, 3.0}).axis("b", std::size_t{4});
  EXPECT_EQ(grid.axes(), 2U);
  EXPECT_EQ(grid.size(), 12U);
}

TEST(Grid, RowMajorLastAxisFastest) {
  Grid grid;
  grid.axis("a", {10.0, 20.0}).axis("b", {1.0, 2.0, 3.0});
  // Flat order: (10,1) (10,2) (10,3) (20,1) (20,2) (20,3).
  EXPECT_DOUBLE_EQ(grid.value(0, "a"), 10.0);
  EXPECT_DOUBLE_EQ(grid.value(0, "b"), 1.0);
  EXPECT_DOUBLE_EQ(grid.value(2, "a"), 10.0);
  EXPECT_DOUBLE_EQ(grid.value(2, "b"), 3.0);
  EXPECT_DOUBLE_EQ(grid.value(3, "a"), 20.0);
  EXPECT_DOUBLE_EQ(grid.value(3, "b"), 1.0);
  EXPECT_DOUBLE_EQ(grid.value(5, "b"), 3.0);
}

TEST(Grid, CategoricalAxisReadsBackAsIndex) {
  Grid grid;
  grid.axis("model", std::size_t{3}).axis("x", {0.5, 1.5});
  EXPECT_EQ(grid.index_of(0, "model"), 0U);
  EXPECT_EQ(grid.index_of(5, "model"), 2U);
  EXPECT_THROW((void)grid.index_of(1, "x"), PreconditionError);
}

TEST(Grid, RejectsMisuse) {
  Grid grid;
  EXPECT_THROW(grid.axis("empty", std::vector<double>{}),
               PreconditionError);
  grid.axis("a", std::vector<double>{1.0});
  EXPECT_THROW(grid.axis("a", std::vector<double>{2.0}),
               PreconditionError);
  EXPECT_THROW((void)grid.value(0, "unknown"), PreconditionError);
  EXPECT_THROW((void)grid.value(7, "a"), PreconditionError);
}

/// A point function that consumes randomness and produces thread-count
/// sensitive results if the sub-stream contract were broken.
double noisy_point(const SweepPoint& point, Rng& rng) {
  double acc = point.value("x");
  // Uneven work per point so threads genuinely interleave.
  const int draws = 1 + static_cast<int>(point.index()) % 7;
  for (int i = 0; i < draws; ++i) acc += rng.uniform();
  return acc;
}

TEST(Sweep, MapBitIdenticalAcrossThreadCounts) {
  Grid grid;
  grid.axis("x", {1.0, 2.0, 3.0, 4.0, 5.0}).axis("trial", std::size_t{9});
  SweepOptions serial_options;
  serial_options.threads = 1;
  serial_options.seed = 12345;
  const auto reference =
      Sweep(grid, serial_options).map<double>(noisy_point);
  ASSERT_EQ(reference.size(), 45U);

  for (const std::size_t threads : {2UL, 4UL, 7UL, 0UL}) {
    SweepOptions options;
    options.threads = threads;
    options.seed = 12345;
    const auto parallel = Sweep(grid, options).map<double>(noisy_point);
    ASSERT_EQ(parallel.size(), reference.size());
    for (std::size_t i = 0; i < reference.size(); ++i) {
      EXPECT_EQ(parallel[i], reference[i]) << "point " << i;
    }
  }
}

TEST(Sweep, SeedChangesResults) {
  Grid grid;
  grid.axis("x", {1.0, 2.0});
  SweepOptions a;
  a.seed = 1;
  SweepOptions b;
  b.seed = 2;
  EXPECT_NE(Sweep(grid, a).map<double>(noisy_point),
            Sweep(grid, b).map<double>(noisy_point));
}

TEST(Sweep, OrderedReductionBitIdentical) {
  // Welford accumulators are order-sensitive; the fold must observe
  // points in flat order whatever the thread count.
  Grid grid;
  grid.axis("x", {0.25, 0.5, 1.0}).axis("trial", std::size_t{16});

  const auto reduce = [&](std::size_t threads) {
    SweepOptions options;
    options.threads = threads;
    options.seed = 99;
    return Sweep(grid, options).run<double, RunningStats>(
        noisy_point, RunningStats{},
        [](RunningStats& acc, const double& value, const SweepPoint&) {
          acc.push(value);
        });
  };

  const RunningStats reference = reduce(1);
  for (const std::size_t threads : {2UL, 5UL, 0UL}) {
    const RunningStats stats = reduce(threads);
    EXPECT_EQ(stats.count(), reference.count());
    EXPECT_EQ(stats.mean(), reference.mean());
    EXPECT_EQ(stats.variance(), reference.variance());
    EXPECT_EQ(stats.min(), reference.min());
    EXPECT_EQ(stats.max(), reference.max());
  }
}

TEST(Sweep, GrainDoesNotChangeResults) {
  Grid grid;
  grid.axis("x", {1.0, 2.0, 3.0}).axis("trial", std::size_t{11});
  SweepOptions reference_options;
  reference_options.threads = 1;
  const auto reference =
      Sweep(grid, reference_options).map<double>(noisy_point);
  for (const std::size_t grain : {2UL, 5UL, 100UL}) {
    SweepOptions options;
    options.threads = 3;
    options.grain = grain;
    EXPECT_EQ(Sweep(grid, options).map<double>(noisy_point), reference);
  }
}

TEST(Sweep, PointExceptionPropagates) {
  Grid grid;
  grid.axis("x", {1.0, 2.0, 3.0, 4.0});
  SweepOptions options;
  options.threads = 2;
  const Sweep sweep(std::move(grid), options);
  EXPECT_THROW(
      (void)sweep.map<double>([](const SweepPoint& point, Rng&) -> double {
        if (point.index() == 2) throw std::runtime_error("bad point");
        return 0.0;
      }),
      std::runtime_error);
}

TEST(ResolveThreads, ZeroMeansHardware) {
  EXPECT_GE(resolve_threads(0), 1U);
  EXPECT_EQ(resolve_threads(5), 5U);
}

}  // namespace
}  // namespace nldl::util
