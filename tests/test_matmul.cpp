// Unit + integration tests for the outer-product-based matmul (Section 4.2).
#include "linalg/matmul.hpp"

#include <gtest/gtest.h>

#include "partition/peri_sum.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace nldl::linalg {
namespace {

TEST(MultiplyBlocked, MatchesNaive) {
  util::Rng rng(1);
  const Matrix a = Matrix::random(37, 37, rng);
  const Matrix b = Matrix::random(37, 37, rng);
  EXPECT_TRUE(multiply_blocked(a, b, 8).approx_equal(
      multiply_naive(a, b), 1e-10));
}

TEST(MultiplyBlocked, BlockLargerThanMatrix) {
  util::Rng rng(2);
  const Matrix a = Matrix::random(5, 5, rng);
  const Matrix b = Matrix::random(5, 5, rng);
  EXPECT_TRUE(multiply_blocked(a, b, 64).approx_equal(
      multiply_naive(a, b), 1e-12));
}

TEST(MatmulOuterProduct, MatchesNaiveOnHeterogeneousLayout) {
  util::Rng rng(3);
  const std::size_t n = 48;
  const Matrix a = Matrix::random(n, n, rng);
  const Matrix b = Matrix::random(n, n, rng);
  const std::vector<double> speeds{1.0, 2.0, 5.0};
  const auto layout = partition::discretize(
      partition::peri_sum_partition(speeds), static_cast<long long>(n));
  const auto dist = matmul_outer_product(a, b, layout, speeds);
  EXPECT_TRUE(dist.result.approx_equal(multiply_naive(a, b), 1e-10));
}

TEST(MatmulOuterProduct, PanelWidthDoesNotChangeResultOrVolume) {
  util::Rng rng(4);
  const std::size_t n = 32;
  const Matrix a = Matrix::random(n, n, rng);
  const Matrix b = Matrix::random(n, n, rng);
  const std::vector<double> speeds{1.0, 3.0};
  const auto layout = partition::discretize(
      partition::peri_sum_partition(speeds), static_cast<long long>(n));
  const auto fine = matmul_outer_product(a, b, layout, speeds, 1);
  const auto coarse = matmul_outer_product(a, b, layout, speeds, 8);
  EXPECT_TRUE(fine.result.approx_equal(coarse.result, 1e-10));
  EXPECT_EQ(fine.total_elements, coarse.total_elements);
  EXPECT_EQ(coarse.steps, 4U);
}

TEST(MatmulOuterProduct, CommVolumeIsNTimesPerimeterSum) {
  const std::size_t n = 64;
  const Matrix a = Matrix::identity(n);
  const Matrix b = Matrix::identity(n);
  const std::vector<double> speeds{1.0, 1.0, 2.0, 4.0};
  const auto layout = partition::discretize(
      partition::peri_sum_partition(speeds), static_cast<long long>(n));
  const auto dist = matmul_outer_product(a, b, layout, speeds);
  EXPECT_EQ(dist.total_elements,
            static_cast<long long>(n) * layout.total_half_perimeter);
  EXPECT_EQ(dist.total_elements, matmul_comm_volume(layout));
}

TEST(MatmulOuterProduct, ParallelMatchesSerial) {
  util::Rng rng(5);
  const std::size_t n = 40;
  const Matrix a = Matrix::random(n, n, rng);
  const Matrix b = Matrix::random(n, n, rng);
  const std::vector<double> speeds{2.0, 3.0};
  const auto layout = partition::discretize(
      partition::peri_sum_partition(speeds), static_cast<long long>(n));
  util::ThreadPool pool(2);
  const auto parallel = matmul_outer_product(a, b, layout, speeds, 4, &pool);
  const auto serial = matmul_outer_product(a, b, layout, speeds, 4);
  EXPECT_TRUE(parallel.result.approx_equal(serial.result, 0.0));
}

TEST(MatmulOuterProduct, BalancedForProportionalAreas) {
  util::Rng rng(6);
  const std::size_t n = 512;
  const Matrix a = Matrix::identity(n);
  const Matrix b = Matrix::identity(n);
  const std::vector<double> speeds{1.0, 2.0, 3.0, 4.0};
  const auto layout = partition::discretize(
      partition::peri_sum_partition(speeds), static_cast<long long>(n));
  const auto dist = matmul_outer_product(a, b, layout, speeds, 64);
  EXPECT_LT(dist.imbalance, 0.05);
}

TEST(MatmulOuterProduct, RejectsNonSquare) {
  const Matrix a(4, 5);
  const Matrix b(5, 5);
  const auto layout =
      partition::discretize(partition::peri_sum_partition({1.0}), 4);
  EXPECT_THROW((void)matmul_outer_product(a, b, layout, {1.0}),
               util::PreconditionError);
}

TEST(MatmulCommVolume, SkipsEmptyRects) {
  partition::GridLayout layout;
  layout.n = 10;
  layout.rects = {{0, 0, 10, 10}, {0, 0, 0, 0}};
  EXPECT_EQ(matmul_comm_volume(layout), 10 * 20);
}

}  // namespace
}  // namespace nldl::linalg
