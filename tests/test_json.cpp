// Tests for the streaming JSON writer used by the bench harness.
#include "util/json.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <charconv>
#include <clocale>
#include <cmath>
#include <limits>
#include <sstream>
#include <string>

#include "util/assert.hpp"

namespace nldl::util {
namespace {

TEST(JsonNumber, RoundTripsAndTrims) {
  EXPECT_EQ(json_number(1.0), "1");
  EXPECT_EQ(json_number(0.5), "0.5");
  EXPECT_EQ(json_number(-3.25), "-3.25");
  // Round-trip: parsing the emitted text recovers the exact double.
  const double awkward = 0.1 + 0.2;
  EXPECT_EQ(std::stod(json_number(awkward)), awkward);  // nldl-lint: allow(locale): round-trip oracle under the default C locale of the test runner
}

TEST(JsonNumber, NonFiniteBecomesNull) {
  EXPECT_EQ(json_number(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(json_number(-std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(json_number(std::nan("")), "null");
}

TEST(JsonNumber, RoundTripsViaFromChars) {
  for (const double value :
       {0.1, 1.0 / 3.0, -2.5e-300, 1.7976931348623157e308,
        5e-324 /* min subnormal */, 0.0, -0.0}) {
    const std::string text = json_number(value);
    double parsed = 0.0;
    const auto result =
        std::from_chars(text.data(), text.data() + text.size(), parsed);
    ASSERT_EQ(result.ec, std::errc{}) << text;
    EXPECT_EQ(parsed, value) << text;
  }
}

// Regression: json_number used to format through %g/%lf, which honor the
// C locale — under a comma-decimal locale (de_DE, fr_FR, ...) the emitted
// file contained "3,25", which is invalid JSON. std::to_chars is
// locale-independent by specification.
TEST(JsonNumber, IgnoresCommaDecimalLocale) {
  const char* previous = std::setlocale(LC_ALL, nullptr);  // nldl-lint: allow(locale): this IS the locale regression test — forces a comma locale to prove json_number ignores it
  const std::string saved = previous ? previous : "C";
  const char* comma_locale = nullptr;
  for (const char* candidate :
       {"de_DE.UTF-8", "de_DE.utf8", "de_DE", "fr_FR.UTF-8", "fr_FR"}) {
    if (std::setlocale(LC_ALL, candidate) != nullptr) {  // nldl-lint: allow(locale): this IS the locale regression test — forces a comma locale to prove json_number ignores it
      comma_locale = candidate;
      break;
    }
  }
  if (comma_locale == nullptr) {
    GTEST_SKIP() << "no comma-decimal locale available on this system";
  }
  const std::string text = json_number(3.25);
  std::setlocale(LC_ALL, saved.c_str());  // nldl-lint: allow(locale): this IS the locale regression test — forces a comma locale to prove json_number ignores it
  EXPECT_EQ(text, "3.25");
  EXPECT_EQ(text.find(','), std::string::npos);
}

TEST(JsonQuote, EscapesSpecials) {
  EXPECT_EQ(json_quote("plain"), "\"plain\"");
  EXPECT_EQ(json_quote("a\"b"), "\"a\\\"b\"");
  EXPECT_EQ(json_quote("line\nbreak"), "\"line\\nbreak\"");
  EXPECT_EQ(json_quote("tab\there"), "\"tab\\there\"");
  EXPECT_EQ(json_quote(std::string(1, '\x01')), "\"\\u0001\"");
}

TEST(JsonWriter, WritesNestedDocument) {
  std::ostringstream out;
  JsonWriter json(out);
  json.begin_object();
  json.key("name").value("fig4a");
  json.key("trials").value(100);
  json.key("fast").value(true);
  json.key("points").begin_array();
  json.begin_object();
  json.key("p").value(std::size_t{10});
  json.key("mean").value(1.25);
  json.end_object();
  json.end_array();
  json.end_object();
  EXPECT_TRUE(json.complete());

  const std::string text = out.str();
  EXPECT_NE(text.find("\"name\": \"fig4a\""), std::string::npos);
  EXPECT_NE(text.find("\"trials\": 100"), std::string::npos);
  EXPECT_NE(text.find("\"fast\": true"), std::string::npos);
  EXPECT_NE(text.find("\"mean\": 1.25"), std::string::npos);
  // Balanced braces/brackets.
  EXPECT_EQ(std::count(text.begin(), text.end(), '{'),
            std::count(text.begin(), text.end(), '}'));
  EXPECT_EQ(std::count(text.begin(), text.end(), '['),
            std::count(text.begin(), text.end(), ']'));
}

TEST(JsonWriter, ArraysSeparateElements) {
  std::ostringstream out;
  JsonWriter json(out);
  json.begin_array();
  json.value(1).value(2).value(3);
  json.end_array();
  std::string text = out.str();
  // Exactly two commas for three elements.
  EXPECT_EQ(std::count(text.begin(), text.end(), ','), 2);
}

TEST(JsonWriter, MisuseThrows) {
  std::ostringstream out;
  JsonWriter json(out);
  EXPECT_THROW(json.end_object(), util::InvariantError);
  json.begin_object();
  EXPECT_THROW(json.value(1.0), util::InvariantError);  // key required
  json.key("k");
  EXPECT_THROW(json.key("k2"), util::InvariantError);  // two keys in a row
}

}  // namespace
}  // namespace nldl::util
