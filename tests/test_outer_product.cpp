// Unit + integration tests for distributed outer products (Section 4.1).
#include "linalg/outer_product.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "partition/block_homogeneous.hpp"
#include "partition/peri_sum.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace nldl::linalg {
namespace {

std::vector<double> iota_vector(std::size_t n, double start = 1.0) {
  std::vector<double> v(n);
  std::iota(v.begin(), v.end(), start);
  return v;
}

TEST(OuterProductSerial, KnownValues) {
  const Matrix c = outer_product_serial({1.0, 2.0}, {3.0, 4.0, 5.0});
  EXPECT_EQ(c.rows(), 2U);
  EXPECT_EQ(c.cols(), 3U);
  EXPECT_DOUBLE_EQ(c(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(c(1, 2), 10.0);
}

TEST(OuterProductPartitioned, MatchesSerial) {
  util::Rng rng(1);
  const std::size_t n = 64;
  std::vector<double> a(n);
  std::vector<double> b(n);
  for (auto& v : a) v = rng.uniform(-1.0, 1.0);
  for (auto& v : b) v = rng.uniform(-1.0, 1.0);

  const std::vector<double> speeds{1.0, 2.0, 3.0, 10.0};
  const auto part = partition::peri_sum_partition(speeds);
  const auto layout = partition::discretize(part, static_cast<long long>(n));
  ASSERT_TRUE(partition::verify_exact_cover(layout));

  const auto dist = outer_product_partitioned(a, b, layout, speeds);
  EXPECT_TRUE(dist.result.approx_equal(outer_product_serial(a, b), 1e-12));
}

TEST(OuterProductPartitioned, CommMatchesHalfPerimeters) {
  const std::size_t n = 100;
  const auto a = iota_vector(n);
  const auto b = iota_vector(n);
  const std::vector<double> speeds{1.0, 1.0, 2.0};
  const auto layout = partition::discretize(
      partition::peri_sum_partition(speeds), static_cast<long long>(n));
  const auto dist = outer_product_partitioned(a, b, layout, speeds);
  EXPECT_EQ(dist.total_elements, layout.total_half_perimeter);
  for (std::size_t w = 0; w < speeds.size(); ++w) {
    EXPECT_EQ(dist.elements_per_worker[w],
              layout.rects[w].area() > 0 ? layout.rects[w].half_perimeter()
                                         : 0);
  }
}

TEST(OuterProductPartitioned, BalancedWhenAreasProportional) {
  const std::size_t n = 1000;
  const auto a = iota_vector(n);
  const auto b = iota_vector(n);
  const std::vector<double> speeds{1.0, 2.0, 3.0, 4.0};
  const auto layout = partition::discretize(
      partition::peri_sum_partition(speeds), static_cast<long long>(n));
  const auto dist = outer_product_partitioned(a, b, layout, speeds);
  EXPECT_LT(dist.imbalance, 0.02);  // discretization noise only
}

TEST(OuterProductPartitioned, ParallelMatchesSerialExecution) {
  util::Rng rng(2);
  const std::size_t n = 128;
  std::vector<double> a(n);
  std::vector<double> b(n);
  for (auto& v : a) v = rng.uniform(-1.0, 1.0);
  for (auto& v : b) v = rng.uniform(-1.0, 1.0);
  const std::vector<double> speeds{1.0, 5.0};
  const auto layout = partition::discretize(
      partition::peri_sum_partition(speeds), static_cast<long long>(n));
  util::ThreadPool pool(2);
  const auto parallel = outer_product_partitioned(a, b, layout, speeds, &pool);
  const auto serial = outer_product_partitioned(a, b, layout, speeds);
  EXPECT_TRUE(parallel.result.approx_equal(serial.result, 0.0));
}

TEST(OuterProductPartitioned, RejectsMismatchedShapes) {
  const auto layout = partition::discretize(
      partition::peri_sum_partition({1.0}), 8);
  EXPECT_THROW((void)outer_product_partitioned(iota_vector(8),
                                               iota_vector(7), layout,
                                               {1.0}),
               util::PreconditionError);
  EXPECT_THROW((void)outer_product_partitioned(iota_vector(9),
                                               iota_vector(9), layout,
                                               {1.0}),
               util::PreconditionError);
  EXPECT_THROW((void)outer_product_partitioned(iota_vector(8),
                                               iota_vector(8), layout,
                                               {1.0, 2.0}),
               util::PreconditionError);
}

TEST(OuterProductBlocked, MatchesSerial) {
  util::Rng rng(3);
  const std::size_t n = 60;
  std::vector<double> a(n);
  std::vector<double> b(n);
  for (auto& v : a) v = rng.uniform(-1.0, 1.0);
  for (auto& v : b) v = rng.uniform(-1.0, 1.0);
  const auto dist =
      outer_product_blocked(a, b, 10, {1.0, 2.0, 3.0});
  EXPECT_TRUE(dist.result.approx_equal(outer_product_serial(a, b), 1e-12));
}

TEST(OuterProductBlocked, CommIsBlocksTimesTwoD) {
  const std::size_t n = 100;
  const auto dist = outer_product_blocked(iota_vector(n), iota_vector(n),
                                          10, {1.0, 3.0});
  // 100 blocks, each shipping 2·10 elements, no reuse.
  EXPECT_EQ(dist.total_elements, 100LL * 20LL);
}

TEST(OuterProductBlocked, MoreCommThanPartitionedOnHeterogeneous) {
  // The paper's core claim, on an executable instance.
  // Speeds chosen so that D = √x₁·N divides N exactly: Σ s = 64, so
  // x₁ = 1/64 and D = N/8 = 30.
  const std::size_t n = 240;
  const auto a = iota_vector(n);
  const auto b = iota_vector(n);
  const std::vector<double> speeds{1.0, 1.0, 31.0, 31.0};

  const auto layout = partition::discretize(
      partition::peri_sum_partition(speeds), static_cast<long long>(n));
  const auto het = outer_product_partitioned(a, b, layout, speeds);

  const auto formula = partition::homogeneous_blocks_formula(speeds,
                                                             double(n));
  const auto d = static_cast<long long>(std::llround(formula.block_dim));
  ASSERT_EQ(d, 30);
  const auto hom = outer_product_blocked(a, b, d, speeds);

  EXPECT_GT(static_cast<double>(hom.total_elements),
            1.5 * static_cast<double>(het.total_elements));
}

TEST(OuterProductBlocked, RejectsBadBlocks) {
  EXPECT_THROW((void)outer_product_blocked(iota_vector(10), iota_vector(10),
                                           3, {1.0}),
               util::PreconditionError);
  EXPECT_THROW((void)outer_product_blocked(iota_vector(10), iota_vector(10),
                                           0, {1.0}),
               util::PreconditionError);
  EXPECT_THROW((void)outer_product_blocked(iota_vector(10), iota_vector(10),
                                           5, {}),
               util::PreconditionError);
}

}  // namespace
}  // namespace nldl::linalg
