// Unit + property tests for the unified strategy evaluation (Section 4).
#include "core/strategies.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "platform/speed_distributions.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace nldl::core {
namespace {

TEST(StrategyNames, MatchPaper) {
  EXPECT_EQ(to_string(Strategy::kHomogeneousBlocks), "Comm_hom");
  EXPECT_EQ(to_string(Strategy::kHomogeneousBlocksRefined), "Comm_hom/k");
  EXPECT_EQ(to_string(Strategy::kHeterogeneousBlocks), "Comm_het");
}

TEST(Evaluate, HomogeneousPlatformAllNearOptimal) {
  // Figure 4(a): all strategies within ~1 % of the bound.
  const std::vector<double> speeds(25, 3.0);
  for (const auto strategy :
       {Strategy::kHomogeneousBlocks, Strategy::kHomogeneousBlocksRefined,
        Strategy::kHeterogeneousBlocks}) {
    const auto eval = evaluate_strategy(strategy, speeds, 100.0);
    EXPECT_LE(eval.ratio_to_lower_bound, 1.01)
        << to_string(strategy);
    EXPECT_GE(eval.ratio_to_lower_bound, 1.0 - 1e-9);
  }
}

TEST(Evaluate, HeterogeneousOrdering) {
  // Under heterogeneity: Comm_het ≪ Comm_hom, and Comm_hom/k >= Comm_hom
  // in volume (it trades communication for balance).
  util::Rng rng(5);
  const auto plat =
      platform::make_platform(platform::SpeedModel::kUniform, 50, rng);
  const auto speeds = plat.speeds();
  const auto het =
      evaluate_strategy(Strategy::kHeterogeneousBlocks, speeds, 10.0);
  const auto hom =
      evaluate_strategy(Strategy::kHomogeneousBlocks, speeds, 10.0);
  const auto hom_k =
      evaluate_strategy(Strategy::kHomogeneousBlocksRefined, speeds, 10.0);
  EXPECT_LT(het.ratio_to_lower_bound, 1.1);
  EXPECT_GT(hom.ratio_to_lower_bound, 2.0);
  EXPECT_GE(hom_k.comm_volume, hom.comm_volume - 1e-9);
  EXPECT_LE(hom_k.load_imbalance, 0.01);
}

TEST(Evaluate, HetHasZeroImbalanceAndPChunks) {
  const std::vector<double> speeds{1.0, 2.0, 3.0};
  const auto eval =
      evaluate_strategy(Strategy::kHeterogeneousBlocks, speeds, 5.0);
  EXPECT_DOUBLE_EQ(eval.load_imbalance, 0.0);
  EXPECT_EQ(eval.num_chunks, 3);
  EXPECT_EQ(eval.refinement_k, 1);
}

TEST(Evaluate, VolumeScalesLinearlyInN) {
  const std::vector<double> speeds{1.0, 4.0, 9.0};
  for (const auto strategy :
       {Strategy::kHomogeneousBlocks, Strategy::kHeterogeneousBlocks}) {
    const auto small = evaluate_strategy(strategy, speeds, 10.0);
    const auto large = evaluate_strategy(strategy, speeds, 1000.0);
    EXPECT_NEAR(large.comm_volume / small.comm_volume, 100.0, 1e-6);
    EXPECT_NEAR(large.ratio_to_lower_bound, small.ratio_to_lower_bound,
                1e-9);
  }
}

TEST(Evaluate, AllStrategiesReturnsThree) {
  const auto evals = evaluate_all_strategies({1.0, 2.0}, 4.0);
  ASSERT_EQ(evals.size(), 3U);
  EXPECT_EQ(evals[0].strategy, Strategy::kHomogeneousBlocks);
  EXPECT_EQ(evals[1].strategy, Strategy::kHomogeneousBlocksRefined);
  EXPECT_EQ(evals[2].strategy, Strategy::kHeterogeneousBlocks);
}

TEST(RhoBounds, HomogeneousGivesFourSevenths) {
  // All equal speeds: ρ bound = (4/7)·p·s/(√s·p·√s) = 4/7.
  EXPECT_NEAR(rho_lower_bound(std::vector<double>(10, 4.0)), 4.0 / 7.0,
              1e-12);
}

TEST(RhoBounds, TwoClassFormula) {
  EXPECT_DOUBLE_EQ(rho_two_class_bound(1.0), 1.0);
  EXPECT_NEAR(rho_two_class_bound(16.0), 17.0 / 5.0, 1e-12);
  // (1+k)/(1+√k) >= √k − 1 for all k >= 1.
  for (double k = 1.0; k <= 100.0; k += 7.3) {
    EXPECT_GE(rho_two_class_bound(k), std::sqrt(k) - 1.0);
  }
}

TEST(RhoBounds, MeasuredRatioBeatsTheBound) {
  // Section 4.1.3: ρ = Comm_hom/Comm_het >= (4/7)·Σs/(√s₁·Σ√s).
  util::Rng rng(6);
  for (int rep = 0; rep < 10; ++rep) {
    const auto plat = platform::make_platform(
        platform::SpeedModel::kLogNormal, 30, rng);
    const auto speeds = plat.speeds();
    const auto hom =
        evaluate_strategy(Strategy::kHomogeneousBlocks, speeds, 1.0);
    const auto het =
        evaluate_strategy(Strategy::kHeterogeneousBlocks, speeds, 1.0);
    const double rho = hom.comm_volume / het.comm_volume;
    EXPECT_GE(rho, rho_lower_bound(speeds) * (1.0 - 1e-6));
  }
}

TEST(Evaluate, RejectsBadInput) {
  EXPECT_THROW(
      (void)evaluate_strategy(Strategy::kHeterogeneousBlocks, {}, 1.0),
      util::PreconditionError);
  EXPECT_THROW((void)evaluate_strategy(Strategy::kHeterogeneousBlocks,
                                       {1.0}, 0.0),
               util::PreconditionError);
}

// Property: on two-class platforms the measured ρ grows like √k, per the
// paper's closing example of Section 4.1.3.
class TwoClassProperty : public ::testing::TestWithParam<int> {};

TEST_P(TwoClassProperty, RhoScalesWithRootK) {
  const double k = std::pow(2.0, GetParam());
  const auto plat = platform::Platform::two_class(16, 1.0, k);
  const auto speeds = plat.speeds();
  const auto hom =
      evaluate_strategy(Strategy::kHomogeneousBlocks, speeds, 1.0);
  const auto het =
      evaluate_strategy(Strategy::kHeterogeneousBlocks, speeds, 1.0);
  const double rho = hom.comm_volume / het.comm_volume;
  // Rigorous guarantee (Comm_het <= 7/4·LB): ρ >= (4/7)·(1+k)/(1+√k).
  EXPECT_GE(rho, 4.0 / 7.0 * rho_two_class_bound(k) - 1e-9);
  // Empirically Comm_het is within a few % of LB, so ρ tracks the paper's
  // LB-relative bound (1+k)/(1+√k) much more closely than 4/7 of it.
  EXPECT_GE(rho, 0.85 * rho_two_class_bound(k));
  // ρ cannot exceed the hom strategy's own ratio (het >= LB).
  EXPECT_LE(rho, hom.ratio_to_lower_bound + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(GrowingK, TwoClassProperty,
                         ::testing::Range(0, 7));

}  // namespace
}  // namespace nldl::core
