// Cross-module integration tests: the paper's end-to-end stories.
#include <gtest/gtest.h>

#include <cmath>

#include "core/nldl.hpp"

namespace nldl {
namespace {

// Story 1 (Section 2): a quadratic workload distributed by DLT leaves
// almost everything undone, while the linear workload is fully covered —
// verified through the simulator, not just formulas.
TEST(Integration, NoFreeLunchEndToEnd) {
  const auto plat = platform::Platform::homogeneous(64, 1.0, 1.0);
  const double n = 6400.0;

  const auto linear = dlt::linear_parallel_single_round(plat, n);
  std::vector<sim::ChunkAssignment> schedule;
  for (std::size_t i = 0; i < plat.size(); ++i) {
    schedule.push_back({i, linear.amounts[i]});
  }
  const auto linear_sim = sim::simulate(plat, schedule);
  EXPECT_NEAR(linear_sim.makespan, linear.makespan, 1e-9);

  const auto quadratic = dlt::nonlinear_parallel_single_round(plat, n, 2.0);
  EXPECT_NEAR(quadratic.remaining_fraction,
              dlt::remaining_fraction_homogeneous(64, 2.0), 1e-6);
  EXPECT_GT(quadratic.remaining_fraction, 0.98);
}

// Story 2 (Section 3): sample sort turns sorting into a divisible load —
// executed for real, with per-phase costs dominated by the parallel phase.
TEST(Integration, SortingIsAlmostDivisible) {
  util::Rng rng(1);
  const std::size_t n = 1 << 18;
  std::vector<double> data(n);
  for (double& v : data) v = rng.uniform();

  util::ThreadPool pool(2);
  sort::SampleSortConfig config;
  config.num_buckets = 8;
  config.pool = &pool;
  sort::SampleSortStats stats;
  const auto sorted = sort::sample_sort(std::move(data), config, &stats);
  EXPECT_TRUE(std::is_sorted(sorted.begin(), sorted.end()));
  // Bucket balance within the theorem's slack.
  EXPECT_LT(stats.max_over_expected,
            1.0 + std::pow(1.0 / std::log(double(n)), 1.0 / 3.0) + 0.1);
}

// Story 3 (Section 4.1): on a strongly heterogeneous platform, the
// PERI-SUM distribution ships far less data than MapReduce-style blocks,
// with both computing the exact same outer product.
TEST(Integration, HeterogeneityAwarePartitioningWins) {
  util::Rng rng(2);
  const std::size_t n = 210;
  std::vector<double> a(n);
  std::vector<double> b(n);
  for (auto& v : a) v = rng.uniform(-1.0, 1.0);
  for (auto& v : b) v = rng.uniform(-1.0, 1.0);
  const auto plat = platform::Platform::two_class(6, 1.0, 25.0);
  const auto speeds = plat.speeds();

  const auto layout = partition::discretize(
      partition::peri_sum_partition(speeds), static_cast<long long>(n));
  ASSERT_TRUE(partition::verify_exact_cover(layout));
  const auto het = linalg::outer_product_partitioned(a, b, layout, speeds);

  const auto formula = partition::homogeneous_blocks_formula(speeds,
                                                             double(n));
  const auto block = std::max(1LL,
                              static_cast<long long>(formula.block_dim));
  // Round n down to a multiple of the block for the blocked run.
  const std::size_t n_round = (n / static_cast<std::size_t>(block)) *
                              static_cast<std::size_t>(block);
  std::vector<double> a2(a.begin(), a.begin() + n_round);
  std::vector<double> b2(b.begin(), b.begin() + n_round);
  const auto hom = linalg::outer_product_blocked(a2, b2, block, speeds);

  const auto reference = linalg::outer_product_serial(a, b);
  EXPECT_TRUE(het.result.approx_equal(reference, 1e-12));

  const double het_per_cell = static_cast<double>(het.total_elements) /
                              (double(n) * double(n));
  const double hom_per_cell = static_cast<double>(hom.total_elements) /
                              (double(n_round) * double(n_round));
  EXPECT_GT(hom_per_cell, 1.5 * het_per_cell);
}

// Story 4 (Section 4.2): matmul inherits the outer-product ratio; the
// executable SUMMA on a PERI-SUM layout matches the reference product and
// its measured communication equals N × Σ half-perimeters.
TEST(Integration, MatmulInheritsTheRatio) {
  util::Rng rng(3);
  const std::size_t n = 60;
  const auto a = linalg::Matrix::random(n, n, rng);
  const auto b = linalg::Matrix::random(n, n, rng);
  const std::vector<double> speeds{1.0, 2.0, 4.0, 8.0};
  const auto layout = partition::discretize(
      partition::peri_sum_partition(speeds), static_cast<long long>(n));
  const auto dist = linalg::matmul_outer_product(a, b, layout, speeds, 5);
  EXPECT_TRUE(dist.result.approx_equal(linalg::multiply_naive(a, b), 1e-9));
  EXPECT_EQ(dist.total_elements,
            static_cast<long long>(n) * layout.total_half_perimeter);
}

// Story 5 (Conclusion): affinity-aware demand-driven scheduling reduces
// MapReduce bytes on the matmul job without hurting balance much. Both
// schedulers beat the no-cache MapReduce accounting (every task ships its
// own inputs).
TEST(Integration, AffinityDirectiveHelps) {
  const long long n = 64;
  const long long block = 8;
  const auto tasks = mapreduce::matmul_tasks(n, block);
  mapreduce::ClusterConfig plain;
  plain.speeds = {1.0, 2.0, 3.0, 4.0};
  plain.bytes_per_block = double(block) * double(block);
  const auto blind = mapreduce::run_cluster(tasks, plain);

  auto aware = plain;
  aware.affinity_aware = true;
  const auto smart = mapreduce::run_cluster(tasks, aware);

  const double no_cache = mapreduce::matmul_replication_volume(
      double(n), double(block));
  EXPECT_LT(smart.total_bytes, blind.total_bytes);
  EXPECT_LT(blind.total_bytes, no_cache);
  EXPECT_LT(smart.imbalance, 0.25);
}

// Story 6 (Section 4.3 in miniature): the three strategies ranked on one
// random platform exactly as the paper's figures show.
TEST(Integration, StrategyRankingOnRandomPlatform) {
  util::Rng rng(4);
  const auto plat = platform::make_platform(
      platform::SpeedModel::kLogNormal, 60, rng);
  const auto speeds = plat.speeds();
  const auto evals = core::evaluate_all_strategies(speeds, 1000.0);
  const auto& hom = evals[0];
  const auto& hom_k = evals[1];
  const auto& het = evals[2];
  EXPECT_LT(het.ratio_to_lower_bound, 1.05);
  EXPECT_GT(hom.ratio_to_lower_bound, het.ratio_to_lower_bound);
  EXPECT_GE(hom_k.comm_volume, hom.comm_volume - 1e-9);
  EXPECT_LE(hom_k.load_imbalance, 0.01);
}

}  // namespace
}  // namespace nldl
