// Project fixture: legal downward include (sim, rank 2 -> util, rank 0).
#pragma once

#include "util/base.hpp"

namespace demo {
inline int engine_step() { return util_base_fn(); }
}  // namespace demo
