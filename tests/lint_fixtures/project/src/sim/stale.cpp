// Project fixture: a stale include (iwyu-lite) next to a justified one.
#include "sim/engine.hpp"
#include "util/base.hpp"
#include "util/unused.hpp"  // nldl-lint: allow(iwyu-lite): reserved for the next fixture stage

namespace demo {
int stale_run() { return engine_step(); }
}  // namespace demo
