// Project fixture: include cycle, half A.
#pragma once

#include "sim/cycle_b.hpp"

namespace demo {
inline constexpr int cycle_a_marker = 3;
inline int cycle_a_fn() { return cycle_b_fn() + 1; }
}  // namespace demo
