// Project fixture: include cycle, half B — this include closes the
// cycle when the DFS enters through cycle_a.hpp.
#pragma once

#include "sim/cycle_a.hpp"

namespace demo {
inline int cycle_b_fn() { return cycle_a_marker; }
}  // namespace demo
