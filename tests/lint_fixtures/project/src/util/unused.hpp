// Project fixture: exports unused_helper, which no fixture file uses —
// including it is only legal behind a justified iwyu-lite suppression.
#pragma once

namespace demo {
inline int unused_helper() { return 7; }
}  // namespace demo
