// Project fixture: a util header reaching UP into sim — layer-violation.
#pragma once

#include "sim/engine.hpp"

namespace demo {
inline int backedge_call() { return engine_step(); }
}  // namespace demo
