// Project fixture: the bottom layer; exports util_base_fn.
#pragma once

namespace demo {
inline int util_base_fn() { return 1; }
}  // namespace demo
