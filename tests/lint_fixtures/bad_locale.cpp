// Fixture: locale must fire on locale-dependent float parsing/formatting.
#include <clocale>
#include <cstdio>
#include <cstdlib>
#include <string>

double parse_all(const std::string& text) {
  double a = std::stod(text);                       // line 8: stod
  double b = atof(text.c_str());                    // line 9: atof
  double c = strtod(text.c_str(), nullptr);         // line 10: strtod
  double d = 0.0;
  sscanf(text.c_str(), "%lf", &d);                  // line 12: sscanf
  std::setlocale(LC_ALL, "de_DE.UTF-8");            // line 13: setlocale
  return a + b + c + d;
}
