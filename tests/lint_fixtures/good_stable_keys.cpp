// Fixture: stable-id keys pass; `*` in VALUE position is fine.
#include <cstddef>
#include <map>
#include <set>

struct Worker {
  std::size_t id = 0;
};

std::map<std::size_t, double> busy_by_worker;
std::set<std::size_t> ready;
std::map<std::size_t, Worker*> worker_by_id;  // pointer value, stable key
