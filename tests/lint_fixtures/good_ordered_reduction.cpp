// Fixture: map-then-ordered-fold passes — per-item results are collected
// and reduced serially in index order (the util::Sweep contract), and a
// compound update OUTSIDE any parallel_for extent is ordinary code.
#include <cstddef>
#include <vector>

template <typename Pool, typename Fn>
std::vector<double> ordered_map(Pool& pool, std::size_t n, Fn fn) {
  std::vector<double> results(n);
  parallel_for(pool, 0, n, 64, [&](std::size_t i) { results[i] = fn(i); });
  return results;
}

template <typename Pool, typename Fn>
double ordered_reduce(Pool& pool, std::size_t n, Fn fn) {
  const std::vector<double> results = ordered_map(pool, n, fn);
  double sum = 0.0;
  for (std::size_t i = 0; i < results.size(); ++i) sum += results[i];
  return sum;
}
