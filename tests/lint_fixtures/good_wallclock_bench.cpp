// Fixture: wall-clock confinement, good side — in the bench layer (any
// path containing "bench") the sanctioned WallClock::now() funnel
// passes, and the raw steady_clock read inside it carries a justified
// suppression, mirroring src/bench/profile.cpp.
#include <chrono>

namespace bench {
struct WallClock {
  static double now() {
    const auto tick = std::chrono::steady_clock::now();  // nldl-lint: allow(nondet-source): the harness wall clock — measured sidecar only
    return std::chrono::duration<double>(tick.time_since_epoch()).count();
  }
};
}  // namespace bench

double harness_timer() {
  const double start = bench::WallClock::now();
  return bench::WallClock::now() - start;
}
