// Fixture: wall-clock confinement. bench::WallClock::now() is the one
// sanctioned wall-clock funnel, and only the bench layer may call it;
// this fixture's path has no "bench" in it, so the funnel calls fire
// alongside the raw chrono read.
#include <chrono>

double simulate_with_a_real_clock() {
  const double start = bench::WallClock::now();       // line 8: funnel
  const auto raw = std::chrono::steady_clock::now();  // line 9: raw read
  (void)raw;
  return bench::WallClock::now() - start;             // line 11: funnel
}
