// Fixture: broken suppressions are themselves findings, and a suppression
// never silences a rule it does not name.
#include <unordered_map>
#include <unordered_set>

std::unordered_map<int, int> a;  // nldl-lint: allow(unordered-container)
std::unordered_set<int> b;       // nldl-lint: allow(no-such-rule): typo'd rule id
std::unordered_set<int> c;       // nldl-lint: allow(unordered-container):
std::unordered_set<int> d;       // nldl-lint: suppress this please
int clean = 0;                   // nldl-lint: allow(locale): unused — nothing to allow here
std::unordered_set<int> e;       // nldl-lint: allow(locale): wrong rule, finding must survive
