// Fixture: fixed-order accumulation is not a float-order finding —
// ordered containers, index loops, and integer reductions stay silent.
#include <cstddef>
#include <map>
#include <string>
#include <vector>

double ordered_sum(const std::map<std::string, double>& weights) {
  double total = 0.0;
  for (const auto& [name, w] : weights) total += w;
  return total;
}

double indexed_sum(const std::vector<double>& values) {
  double acc = 0.0;
  for (std::size_t i = 0; i < values.size(); ++i) acc += values[i];
  return acc;
}

long long tally(const std::vector<int>& hits) {
  long long count = 0;
  for (const int h : hits) count += h;
  return count;
}
