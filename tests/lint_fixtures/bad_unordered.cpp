// Fixture: unordered-container must fire on declarations and members.
#include <unordered_map>
#include <unordered_set>

struct ResultCache {
  std::unordered_map<int, double> totals;  // line 6: member
};

double sum_all(const ResultCache& cache) {
  double sum = 0.0;
  std::unordered_set<int> seen;  // line 11: local
  for (const auto& [id, value] : cache.totals) {
    if (seen.insert(id).second) sum += value;
  }
  return sum;
}
