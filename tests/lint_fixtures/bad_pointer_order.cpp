// Fixture: pointer-order must fire on pointer-keyed ordered containers
// and std::less over raw pointers.
#include <functional>
#include <map>
#include <set>

struct Worker {
  int id = 0;
};

std::map<const Worker*, double> busy_by_worker;     // line 11: pointer key
std::set<Worker*> ready;                            // line 12: pointer key
std::less<const Worker*> by_address;                // line 13: address order
