// Fixture: exact-zero sentinel guards and integer equality are exempt
// from double-eq.
double safe_div(double num, double den) {
  if (den == 0.0) return 0.0;
  return num / den;
}

bool not_yet_started(double t) { return t == 0.0 || t != 0.; }

bool same_count(int lhs, int rhs) { return lhs == rhs; }

bool not_a_string_compare(double value, const char* text) {
  return text == "auto" && value > 0.0 && text != nullptr;
}

double checked(double v) {
  NLDL_ASSERT(v == 1.5, "assertion extents state exact invariants");
  return v;
}
