// Fixture: float-order must fire on compound float updates whose order
// follows hash iteration or thread scheduling, across physical lines.
#include <cstddef>
#include <string>
#include <unordered_map>
#include <vector>

double hash_ordered_sum(
    const std::unordered_map<std::string, double>& weights) {
  double total = 0.0;
  for (const auto& [name, w] :
       weights) {
    total +=
        w * 2.0;
  }
  return total;
}

template <typename Pool>
double racing_sum(Pool& pool, const std::vector<double>& values) {
  double acc = 0.0;
  parallel_for(pool, 0, values.size(), 64, [&](std::size_t i) {
    acc += values[i];
  });
  return acc;
}
