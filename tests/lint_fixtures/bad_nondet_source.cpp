// Fixture: nondet-source must fire on C PRNGs, entropy, and clocks.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

unsigned noisy_seed() {
  std::srand(42);                                   // line 8: srand
  std::random_device entropy;                       // line 9: entropy
  const auto stamp = std::time(nullptr);            // line 10: time()
  const auto tick = std::chrono::steady_clock::now();  // line 11: now()
  (void)stamp;
  (void)tick;
  return entropy() + static_cast<unsigned>(std::rand());  // line 14: rand
}
