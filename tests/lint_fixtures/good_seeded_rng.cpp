// Fixture: explicit seeding passes; identifiers that merely CONTAIN the
// banned tokens (wait_time, runtime, run.clock()) must not fire.
#include <cstddef>

struct Run {
  double clock() const { return now; }
  double now = 0.0;
};

double wait_time(std::size_t ticks) {
  Run run;
  double runtime = run.clock();
  for (std::size_t i = 0; i < ticks; ++i) runtime += 1.0;
  return runtime;
}

std::size_t seeded(std::size_t seed) { return seed * 6364136223846793005ULL; }
