// Fixture: double-eq must fire on exact float comparisons outside
// tests/ — identifiers declared floating in this file, and nonzero
// float literals on either side.
double pick(double a, double b) {
  if (a == b) return a;
  if (a == 1.0) return b;
  if (0.5 != b) return a + b;
  return 0.0;
}

bool converged(float err) {
  return err == 1e-9f;
}
