// Fixture: well-formed, USED suppressions silence findings entirely —
// including a multi-rule allow() — so this file must scan clean.
#include <chrono>
#include <string>
#include <unordered_set>  // nldl-lint: allow(unordered-container): fixture needs the header for the suppressed probe set below

double wall_seconds() {
  const auto t = std::chrono::steady_clock::now();  // nldl-lint: allow(nondet-source): reported wall time only, never feeds a result
  return std::chrono::duration<double>(t.time_since_epoch()).count();
}

std::unordered_set<int> scratch;  // nldl-lint: allow(unordered-container): membership-only probe set, never iterated

double parse_legacy(const std::string& s) {
  return std::stod(s) + static_cast<double>(std::rand());  // nldl-lint: allow(locale, nondet-source): exercising a legacy API for comparison in this fixture
}
