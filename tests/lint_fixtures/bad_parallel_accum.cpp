// Fixture: parallel-accum must fire on float atomics, parallel execution
// policies, OpenMP pragmas, and compound updates inside an inline
// parallel_for lambda.
#include <atomic>
#include <cstddef>
#include <execution>
#include <numeric>
#include <vector>

std::atomic<double> global_sum{0.0};  // line 10: float atomic

double reduce_fast(const std::vector<double>& values) {
  return std::reduce(std::execution::par, values.begin(),
                     values.end());  // line 13: par policy
}

void omp_reduce(const std::vector<double>& values, double& out) {
#pragma omp parallel for reduction(+ : out)
  for (std::size_t i = 0; i < values.size(); ++i) out += values[i];
}

template <typename Pool>
double pool_reduce(Pool& pool, const std::vector<double>& values) {
  double sum = 0.0;
  parallel_for(pool, 0, values.size(), 64, [&](std::size_t i) {
    sum += values[i];  // line 26: racing compound update
  });
  return sum;
}
