// Fixture: ordered containers pass; prose about std::unordered_map in a
// comment or a string must NOT fire (the scanner strips both).
#include <map>
#include <set>

struct ResultCache {
  std::map<int, double> totals;
};

double sum_all(const ResultCache& cache) {
  const char* docs = "never use std::unordered_map here";
  (void)docs;
  double sum = 0.0;
  std::set<int> seen;
  for (const auto& [id, value] : cache.totals) {
    if (seen.insert(id).second) sum += value;
  }
  return sum;
}
