// Fixture: std::from_chars / std::to_chars pass (locale-independent by
// specification); so do identifiers containing the banned tokens
// (custom_stod is someone's wrapper, method(...) is not atof).
#include <charconv>
#include <string>

double custom_stod(const std::string& text) {
  double value = 0.0;
  std::from_chars(text.data(), text.data() + text.size(), value);
  return value;
}

std::string format(double value) {
  char buffer[64];
  const auto [end, ec] = std::to_chars(buffer, buffer + sizeof buffer, value);
  return ec == std::errc() ? std::string(buffer, end) : std::string();
}
