// Tests for src/obs/: the tracing contract (attaching a sink never
// changes results, recording is deterministic), the metrics registry's
// ordering/type/merge rules, Chrome trace-event export validating
// against the schema checker, the time-attribution partition, and the
// event-stream ASCII gantt.
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "obs/validate.hpp"
#include "online/scheduler.hpp"
#include "online/server.hpp"
#include "platform/platform.hpp"
#include "qos/policy.hpp"
#include "qos/server.hpp"
#include "sim/trace.hpp"
#include "util/assert.hpp"
#include "util/json.hpp"
#include "util/json_parse.hpp"

namespace nldl {
namespace {

platform::Platform test_platform() {
  return platform::Platform::two_class(6, 1.0, 3.0);
}

/// Overlapping arrivals (multi-job busy periods), mixed alphas, finite
/// deadlines so the qos admission path exercises every verdict.
std::vector<online::Job> burst_jobs() {
  return {{0, 0.0, 60.0, 2.0, 400.0, 0},  {1, 1.0, 30.0, 1.0, 150.0, 1},
          {2, 2.0, 45.0, 2.0, 500.0, 0},  {3, 15.0, 20.0, 1.0, 90.0, 2},
          {4, 16.0, 80.0, 2.0, 900.0, 1}, {5, 40.0, 25.0, 1.0, 200.0, 2}};
}

const std::vector<sim::CommModelKind> kCommKinds{
    sim::CommModelKind::kParallelLinks, sim::CommModelKind::kOnePort,
    sim::CommModelKind::kBoundedMultiport};

online::ServerOptions online_options(sim::CommModelKind comm,
                                     online::MasterMode master) {
  online::ServerOptions options;
  options.comm = comm;
  if (comm == sim::CommModelKind::kBoundedMultiport) {
    options.capacity = 2.0;
  }
  options.master = master;
  return options;
}

qos::ServerOptions qos_options(sim::CommModelKind comm,
                               std::size_t concurrency) {
  qos::ServerOptions options;
  options.service.comm = comm;
  if (comm == sim::CommModelKind::kBoundedMultiport) {
    options.service.capacity = 2.0;
  }
  options.service.plan.rounds = 3;
  options.service.plan.restart_load_fraction = 1.0;
  options.concurrency = concurrency;
  return options;
}

void expect_identical(const std::vector<online::JobStats>& a,
                      const std::vector<online::JobStats>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].dispatch, b[i].dispatch) << "job " << i;
    EXPECT_EQ(a[i].finish, b[i].finish) << "job " << i;
    EXPECT_EQ(a[i].slot, b[i].slot) << "job " << i;
    EXPECT_EQ(a[i].workers, b[i].workers) << "job " << i;
    EXPECT_EQ(a[i].compute_time, b[i].compute_time) << "job " << i;
    EXPECT_EQ(a[i].isolated_makespan, b[i].isolated_makespan) << "job " << i;
  }
}

void expect_identical(const std::vector<qos::JobRecord>& a,
                      const std::vector<qos::JobRecord>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].admitted, b[i].admitted) << "job " << i;
    EXPECT_EQ(a[i].degraded, b[i].degraded) << "job " << i;
    EXPECT_EQ(a[i].served_load, b[i].served_load) << "job " << i;
    EXPECT_EQ(a[i].predicted_service, b[i].predicted_service) << "job " << i;
    EXPECT_EQ(a[i].dispatch, b[i].dispatch) << "job " << i;
    EXPECT_EQ(a[i].finish, b[i].finish) << "job " << i;
    EXPECT_EQ(a[i].service_time, b[i].service_time) << "job " << i;
    EXPECT_EQ(a[i].compute_time, b[i].compute_time) << "job " << i;
    EXPECT_EQ(a[i].preemptions, b[i].preemptions) << "job " << i;
    EXPECT_EQ(a[i].restart_time, b[i].restart_time) << "job " << i;
  }
}

// --- tracing never changes results ------------------------------------------

TEST(TraceNeutrality, OnlineServerAcrossCommModelsAndMasterModes) {
  const platform::Platform plat = test_platform();
  const std::vector<online::Job> jobs = burst_jobs();
  for (const sim::CommModelKind comm : kCommKinds) {
    for (const online::MasterMode master :
         {online::MasterMode::kPrivatePort,
          online::MasterMode::kSharedMaster}) {
      online::ServerOptions bare_options = online_options(comm, master);
      const online::Server bare(plat, bare_options);
      const online::FairShareScheduler fair_a(2);
      const auto untraced = bare.run(jobs, fair_a);

      obs::TraceRecorder recorder;
      online::ServerOptions traced_options = online_options(comm, master);
      traced_options.trace = &recorder;
      const online::Server traced(plat, traced_options);
      const online::FairShareScheduler fair_b(2);
      const auto with_trace = traced.run(jobs, fair_b);

      SCOPED_TRACE(sim::to_string(comm) + " / " +
                   online::to_string(master));
      expect_identical(untraced, with_trace);
      EXPECT_FALSE(recorder.empty());

      // Recording is deterministic: a second traced run emits the same
      // event sequence bit for bit.
      obs::TraceRecorder again;
      online::ServerOptions repeat_options = online_options(comm, master);
      repeat_options.trace = &again;
      const online::Server repeat(plat, repeat_options);
      const online::FairShareScheduler fair_c(2);
      (void)repeat.run(jobs, fair_c);
      EXPECT_EQ(recorder.events(), again.events());
    }
  }
}

TEST(TraceNeutrality, QosServerAcrossCommModelsAndConcurrency) {
  const platform::Platform plat = test_platform();
  const std::vector<online::Job> jobs = burst_jobs();
  for (const sim::CommModelKind comm : kCommKinds) {
    for (const std::size_t concurrency : {std::size_t{1}, std::size_t{2}}) {
      const qos::Server bare(plat, qos_options(comm, concurrency));
      qos::SrptPolicy srpt_a;
      const auto untraced = bare.run(jobs, srpt_a);

      obs::TraceRecorder recorder;
      qos::ServerOptions traced_options = qos_options(comm, concurrency);
      traced_options.trace = &recorder;
      const qos::Server traced(plat, traced_options);
      qos::SrptPolicy srpt_b;
      const auto with_trace = traced.run(jobs, srpt_b);

      SCOPED_TRACE(sim::to_string(comm) + " / concurrency " +
                   std::to_string(concurrency));
      expect_identical(untraced, with_trace);
      EXPECT_FALSE(recorder.empty());

      obs::TraceRecorder again;
      qos::ServerOptions repeat_options = qos_options(comm, concurrency);
      repeat_options.trace = &again;
      const qos::Server repeat(plat, repeat_options);
      qos::SrptPolicy srpt_c;
      (void)repeat.run(jobs, srpt_c);
      EXPECT_EQ(recorder.events(), again.events());
    }
  }
}

// --- event content -----------------------------------------------------------

TEST(TraceContent, QosSerialEmitsVerdictsInstallmentsAndPreemptions) {
  const platform::Platform plat = test_platform();
  obs::TraceRecorder recorder;
  qos::ServerOptions options =
      qos_options(sim::CommModelKind::kParallelLinks, 1);
  options.trace = &recorder;
  const qos::Server server(plat, options);
  qos::SrptPolicy srpt;
  const auto records = server.run(burst_jobs(), srpt);

  std::size_t admitted = 0;
  std::size_t preemptions = 0;
  for (const qos::JobRecord& record : records) {
    if (record.admitted) ++admitted;
    preemptions += record.preemptions;
  }
  ASSERT_GT(admitted, 0u);
  ASSERT_GT(preemptions, 0u) << "scenario must exercise preemption";

  // One admission verdict per offered job, stamped at its arrival.
  const auto admits = recorder.of_kind(obs::EventKind::kAdmit);
  const auto degrades = recorder.of_kind(obs::EventKind::kDegrade);
  const auto rejects = recorder.of_kind(obs::EventKind::kReject);
  EXPECT_EQ(admits.size() + degrades.size() + rejects.size(),
            records.size());

  // One whole-job span per admitted job, [dispatch, finish].
  const auto job_spans = recorder.of_kind(obs::EventKind::kJob);
  EXPECT_EQ(job_spans.size(), admitted);
  for (const obs::TraceEvent& span : job_spans) {
    EXPECT_LT(span.start, span.end);
    EXPECT_NE(span.job, obs::kNoIndex);
  }

  // Preemption instants match the per-record tallies and carry the
  // positive restart-surcharge estimate; each pays a restart span later.
  const auto preempts = recorder.of_kind(obs::EventKind::kPreempt);
  EXPECT_EQ(preempts.size(), preemptions);
  for (const obs::TraceEvent& event : preempts) {
    EXPECT_GT(event.value, 0.0);
  }
  EXPECT_EQ(recorder.of_kind(obs::EventKind::kRestart).size(), preemptions);
  EXPECT_FALSE(recorder.of_kind(obs::EventKind::kInstallment).empty());
}

TEST(TraceContent, SharedMasterRunsCarryWorkerSpans) {
  const platform::Platform plat = test_platform();
  obs::TraceRecorder recorder;
  qos::ServerOptions options =
      qos_options(sim::CommModelKind::kBoundedMultiport, 2);
  options.trace = &recorder;
  const qos::Server server(plat, options);
  qos::SrptPolicy srpt;
  (void)server.run(burst_jobs(), srpt);

  const auto transfers = recorder.of_kind(obs::EventKind::kTransfer);
  const auto computes = recorder.of_kind(obs::EventKind::kCompute);
  ASSERT_FALSE(transfers.empty());
  ASSERT_FALSE(computes.empty());
  for (const obs::TraceEvent& span : transfers) {
    EXPECT_NE(span.worker, obs::kNoIndex);
    EXPECT_LT(span.worker, plat.size());
    EXPECT_LE(span.start, span.end);
  }
  for (const obs::TraceEvent& span : computes) {
    EXPECT_NE(span.worker, obs::kNoIndex);
    EXPECT_NE(span.job, obs::kNoIndex);  // compute is job-attributed
    EXPECT_LT(span.start, span.end);
  }
  EXPECT_FALSE(recorder.of_kind(obs::EventKind::kDispatch).empty());
}

TEST(TraceContent, KindNamesAndSpanPredicate) {
  EXPECT_STREQ(obs::to_string(obs::EventKind::kTransfer), "transfer");
  EXPECT_STREQ(obs::to_string(obs::EventKind::kDeadlineMiss),
               "deadline_miss");
  EXPECT_TRUE(obs::is_span(obs::EventKind::kCompute));
  EXPECT_TRUE(obs::is_span(obs::EventKind::kRestart));
  EXPECT_FALSE(obs::is_span(obs::EventKind::kRerate));
  EXPECT_FALSE(obs::is_span(obs::EventKind::kPreempt));
}

// --- export + validation -----------------------------------------------------

TEST(ChromeExport, SharedMasterQosTraceValidates) {
  const platform::Platform plat = test_platform();
  obs::TraceRecorder recorder;
  qos::ServerOptions options =
      qos_options(sim::CommModelKind::kBoundedMultiport, 2);
  options.trace = &recorder;
  const qos::Server server(plat, options);
  qos::SrptPolicy srpt;
  (void)server.run(burst_jobs(), srpt);

  std::ostringstream out;
  obs::ChromeTraceOptions trace_options;
  trace_options.workers = plat.size();
  trace_options.label = "test qos";
  obs::write_chrome_trace(out, recorder.events(), trace_options);

  const obs::ValidationResult result =
      obs::validate_chrome_trace_text(out.str());
  EXPECT_TRUE(result) << result.error;
  EXPECT_GT(result.events, recorder.size());  // metadata rows on top
  EXPECT_NE(out.str().find("\"displayTimeUnit\": \"ms\""),
            std::string::npos);
}

TEST(ChromeExport, ValidatorRejectsBrokenDocuments) {
  EXPECT_FALSE(obs::validate_chrome_trace_text("not json"));
  EXPECT_FALSE(obs::validate_chrome_trace_text("{}"));
  // Decreasing timestamps.
  EXPECT_FALSE(obs::validate_chrome_trace_text(
      R"({"traceEvents":[
        {"name":"a","ph":"i","ts":5,"pid":1,"tid":1,"s":"t"},
        {"name":"b","ph":"i","ts":4,"pid":1,"tid":1,"s":"t"}]})"));
  // Unbalanced B/E.
  EXPECT_FALSE(obs::validate_chrome_trace_text(
      R"({"traceEvents":[
        {"name":"a","ph":"B","ts":1,"pid":1,"tid":1}]})"));
  EXPECT_FALSE(obs::validate_chrome_trace_text(
      R"({"traceEvents":[
        {"name":"a","ph":"E","ts":1,"pid":1,"tid":1}]})"));
  // Well-formed minimal document passes.
  EXPECT_TRUE(obs::validate_chrome_trace_text(
      R"({"traceEvents":[
        {"name":"a","ph":"B","ts":1,"pid":1,"tid":1},
        {"name":"a","ph":"E","ts":2,"pid":1,"tid":1}]})"));
}

// --- attribution -------------------------------------------------------------

TEST(Attribution, PartitionCoversWorkerSeconds) {
  const platform::Platform plat = test_platform();
  obs::TraceRecorder recorder;
  qos::ServerOptions options =
      qos_options(sim::CommModelKind::kBoundedMultiport, 2);
  options.trace = &recorder;
  const qos::Server server(plat, options);
  qos::SrptPolicy srpt;
  (void)server.run(burst_jobs(), srpt);

  const obs::Attribution attribution =
      obs::attribute_time(recorder.events(), plat.size());
  ASSERT_GT(attribution.span_events, 0u);
  EXPECT_GT(attribution.comm, 0.0);
  EXPECT_GT(attribution.compute, 0.0);
  EXPECT_GE(attribution.idle, 0.0);
  // comm + compute + restart + idle partitions workers × horizon.
  const double accounted = attribution.comm + attribution.compute +
                           attribution.restart + attribution.idle;
  EXPECT_NEAR(accounted, attribution.total(),
              1e-9 * attribution.total());
  EXPECT_GE(attribution.coverage(), 0.99);

  const std::string summary =
      obs::render_attribution(attribution, "unit");
  EXPECT_NE(summary.find("comm (exclusive)"), std::string::npos);
  EXPECT_NE(summary.find("restart re-work"), std::string::npos);
}

TEST(Attribution, EmptyStreamIsAllIdle) {
  const obs::Attribution attribution = obs::attribute_time({}, 4, 10.0);
  EXPECT_EQ(attribution.comm, 0.0);
  EXPECT_EQ(attribution.compute, 0.0);
  EXPECT_EQ(attribution.idle, 40.0);
  EXPECT_EQ(attribution.total(), 40.0);
}

TEST(Attribution, ZeroHorizonAndZeroLengthSpans) {
  // No events and no horizon: nothing to attribute, coverage is vacuously
  // full (no division by the zero total).
  const obs::Attribution empty = obs::attribute_time({}, 3, 0.0);
  EXPECT_EQ(empty.horizon, 0.0);
  EXPECT_EQ(empty.total(), 0.0);
  EXPECT_EQ(empty.coverage(), 1.0);

  // Cancelled (zero-length) spans contribute no worker-seconds; the
  // inferred horizon still extends to their timestamp, so the lane is
  // pure idle.
  std::vector<obs::TraceEvent> events;
  obs::TraceEvent cancelled;
  cancelled.kind = obs::EventKind::kCompute;
  cancelled.start = 5.0;
  cancelled.end = 5.0;
  cancelled.worker = 0;
  cancelled.job = 0;
  events.push_back(cancelled);
  const obs::Attribution degenerate = obs::attribute_time(events, 1);
  EXPECT_EQ(degenerate.horizon, 5.0);
  EXPECT_EQ(degenerate.compute, 0.0);
  EXPECT_EQ(degenerate.idle, 5.0);
  EXPECT_EQ(degenerate.coverage(), 1.0);
}

TEST(Attribution, AllIdleWorkersWithInstantOnlyStream) {
  // A stream of scheduler instants carries no worker spans: every lane
  // is idle across the horizon they imply.
  std::vector<obs::TraceEvent> events;
  obs::TraceEvent instant;
  instant.kind = obs::EventKind::kRerate;
  instant.start = instant.end = 8.0;
  events.push_back(instant);
  const obs::Attribution attribution = obs::attribute_time(events, 2);
  EXPECT_EQ(attribution.span_events, 0u);
  EXPECT_EQ(attribution.comm, 0.0);
  EXPECT_EQ(attribution.compute, 0.0);
  EXPECT_EQ(attribution.restart, 0.0);
  EXPECT_EQ(attribution.idle, 16.0);
  EXPECT_EQ(attribution.coverage(), 1.0);
}

// --- metrics registry --------------------------------------------------------

TEST(MetricsRegistry, FirstTouchOrderAndTypes) {
  obs::MetricsRegistry registry;
  registry.counter("b.count") += 2;
  registry.gauge("a.gauge") = 1.5;
  registry.quantile("c.q95", 0.95).push(10.0);
  registry.counter("b.count") += 3;

  EXPECT_EQ(registry.names(),
            (std::vector<std::string>{"b.count", "a.gauge", "c.q95"}));
  EXPECT_EQ(registry.counter_value("b.count"), 5u);
  EXPECT_EQ(registry.gauge_value("a.gauge"), 1.5);
  EXPECT_TRUE(registry.contains("c.q95"));
  EXPECT_FALSE(registry.contains("missing"));
  EXPECT_THROW((void)registry.counter_value("missing"),
               util::PreconditionError);
  EXPECT_THROW((void)registry.counter_value("a.gauge"),
               util::PreconditionError);
  EXPECT_THROW((void)registry.gauge_value("b.count"),
               util::PreconditionError);
  // The probability is fixed on first use.
  EXPECT_THROW((void)registry.quantile("c.q95", 0.5),
               util::PreconditionError);
}

TEST(MetricsRegistry, MergeSumsAndWriteJsonIsOrdered) {
  obs::MetricsRegistry a;
  a.counter("events") += 10;
  a.gauge("seconds") = 1.25;
  obs::MetricsRegistry b;
  b.counter("events") += 5;
  b.gauge("seconds") = 0.75;
  b.counter("extra") += 1;
  a.merge(b);
  EXPECT_EQ(a.counter_value("events"), 15u);
  EXPECT_EQ(a.gauge_value("seconds"), 2.0);
  EXPECT_EQ(a.counter_value("extra"), 1u);

  std::ostringstream out;
  {
    util::JsonWriter json(out);
    a.write_json(json);
  }
  const std::string text = out.str();
  EXPECT_NE(text.find("\"events\": 15"), std::string::npos);
  EXPECT_NE(text.find("\"seconds\": 2"), std::string::npos);
  EXPECT_LT(text.find("\"events\""), text.find("\"seconds\""));

  // Quantile slots cannot merge into an existing estimator.
  obs::MetricsRegistry with_quantile;
  with_quantile.quantile("lat.p95", 0.95).push(1.0);
  obs::MetricsRegistry other;
  other.quantile("lat.p95", 0.95).push(2.0);
  EXPECT_THROW(with_quantile.merge(other), util::PreconditionError);
}

TEST(MetricsRegistry, ServersAccountIntoRegistry) {
  const platform::Platform plat = test_platform();
  const std::vector<online::Job> jobs = burst_jobs();

  obs::MetricsRegistry online_metrics;
  const online::Server server(
      plat, online_options(sim::CommModelKind::kBoundedMultiport,
                           online::MasterMode::kSharedMaster));
  const online::FairShareScheduler fair(2);
  (void)server.run(jobs, fair, &online_metrics);
  EXPECT_GT(online_metrics.counter_value("replay.engine_events"), 0u);
  EXPECT_GT(online_metrics.counter_value("replay.busy_periods"), 0u);

  obs::MetricsRegistry qos_metrics;
  const qos::Server qos_server(
      plat, qos_options(sim::CommModelKind::kParallelLinks, 1));
  qos::SrptPolicy srpt;
  const auto records = qos_server.run(jobs, srpt, &qos_metrics);
  std::size_t preemptions = 0;
  for (const qos::JobRecord& record : records) {
    preemptions += record.preemptions;
  }
  EXPECT_EQ(qos_metrics.counter_value("qos.admitted") +
                qos_metrics.counter_value("qos.rejected"),
            records.size());
  EXPECT_EQ(qos_metrics.counter_value("qos.preemptions"), preemptions);
  EXPECT_GE(qos_metrics.gauge_value("qos.restart_time_s"), 0.0);
}

TEST(MetricsRegistry, SamplesSnapshotInFirstTouchOrder) {
  obs::MetricsRegistry registry;
  registry.counter("jobs") += 4;
  registry.gauge("rho") = 2.5;
  registry.quantile("lat.p95", 0.95).push(10.0);
  (void)registry.quantile("empty.p50", 0.5);

  const std::vector<obs::MetricsRegistry::Sample> samples =
      registry.samples();
  ASSERT_EQ(samples.size(), 4u);
  EXPECT_EQ(samples[0].name, "jobs");
  EXPECT_EQ(samples[0].kind, obs::MetricsRegistry::SampleKind::kCounter);
  EXPECT_EQ(samples[0].value, 4.0);
  EXPECT_EQ(samples[0].count, 4u);
  EXPECT_EQ(samples[1].name, "rho");
  EXPECT_EQ(samples[1].kind, obs::MetricsRegistry::SampleKind::kGauge);
  EXPECT_EQ(samples[1].value, 2.5);
  EXPECT_EQ(samples[2].kind, obs::MetricsRegistry::SampleKind::kQuantile);
  EXPECT_EQ(samples[2].value, 10.0);
  EXPECT_EQ(samples[2].count, 1u);
  EXPECT_EQ(samples[3].count, 0u);  // empty estimator reports value 0
  EXPECT_EQ(samples[3].value, 0.0);
}

// --- metrics JSON validation -------------------------------------------------

TEST(MetricsValidation, AcceptsRegistryDumpsRejectsMalformed) {
  obs::MetricsRegistry registry;
  registry.counter("events") += 3;
  registry.gauge("seconds") = 1.5;
  registry.quantile("lat.p95", 0.95).push(2.0);
  std::ostringstream out;
  {
    util::JsonWriter json(out);
    registry.write_json(json);
    EXPECT_TRUE(json.complete());
  }
  const obs::ValidationResult ok =
      obs::validate_metrics_json(util::parse_json(out.str()));
  EXPECT_TRUE(ok) << ok.error;
  EXPECT_EQ(ok.events, 3u);

  // Root must be an object.
  EXPECT_FALSE(obs::validate_metrics_json(util::parse_json("[]")));
  // Non-numeric scalar entries are rejected.
  EXPECT_FALSE(obs::validate_metrics_json(
      util::parse_json(R"({"name": "oops"})")));
  // Quantile objects need q in (0, 1)...
  EXPECT_FALSE(obs::validate_metrics_json(
      util::parse_json(R"({"lat": {"q": 1.5, "count": 1, "value": 2}})")));
  // ...a value exactly when count > 0...
  EXPECT_FALSE(obs::validate_metrics_json(
      util::parse_json(R"({"lat": {"q": 0.95, "count": 1}})")));
  EXPECT_FALSE(obs::validate_metrics_json(
      util::parse_json(R"({"lat": {"q": 0.95, "count": 0, "value": 2}})")));
  // ...and an empty estimator without a value is fine.
  EXPECT_TRUE(obs::validate_metrics_json(
      util::parse_json(R"({"lat": {"q": 0.95, "count": 0}})")));
}

// --- event-kind round trip ---------------------------------------------------

TEST(TraceContent, KindNamesRoundTripThroughStrings) {
  for (const obs::EventKind kind :
       {obs::EventKind::kTransfer, obs::EventKind::kArrival,
        obs::EventKind::kAlert, obs::EventKind::kDeadlineMiss,
        obs::EventKind::kCheckpoint}) {
    obs::EventKind parsed = obs::EventKind::kTransfer;
    EXPECT_TRUE(obs::event_kind_from_string(obs::to_string(kind), parsed));
    EXPECT_EQ(parsed, kind);
  }
  obs::EventKind parsed = obs::EventKind::kTransfer;
  EXPECT_FALSE(obs::event_kind_from_string("no_such_kind", parsed));
}

// --- event-stream ascii gantt ------------------------------------------------

TEST(EventGantt, MultiJobGlyphsAndReleaseMarkers) {
  std::vector<obs::TraceEvent> events;
  const auto span = [&](obs::EventKind kind, double start, double end,
                        std::size_t worker, std::size_t job) {
    obs::TraceEvent event;
    event.kind = kind;
    event.start = start;
    event.end = end;
    event.worker = worker;
    event.job = job;
    events.push_back(event);
  };
  // Job 0 ('A') on worker 0, job 1 ('B') on worker 1, receive spans,
  // overlapping compute of both jobs on worker 0 (the '*' mixed cell),
  // and two dispatch instants for the release markers.
  span(obs::EventKind::kTransfer, 0.0, 2.0, 0, 0);
  span(obs::EventKind::kCompute, 2.0, 10.0, 0, 0);
  span(obs::EventKind::kCompute, 8.0, 10.0, 0, 1);  // overlap → '*'
  span(obs::EventKind::kTransfer, 5.0, 6.0, 1, 1);
  span(obs::EventKind::kCompute, 6.0, 14.0, 1, 1);
  obs::TraceEvent dispatch;
  dispatch.kind = obs::EventKind::kDispatch;
  dispatch.start = dispatch.end = 0.0;
  events.push_back(dispatch);
  dispatch.start = dispatch.end = 5.0;
  events.push_back(dispatch);

  const std::string gantt = sim::ascii_gantt(events, 2, 40);
  EXPECT_NE(gantt.find("releases"), std::string::npos);
  EXPECT_NE(gantt.find('v'), std::string::npos);
  EXPECT_NE(gantt.find('A'), std::string::npos);
  EXPECT_NE(gantt.find('B'), std::string::npos);
  EXPECT_NE(gantt.find('*'), std::string::npos);
  EXPECT_NE(gantt.find('-'), std::string::npos);
  EXPECT_NE(gantt.find("w0"), std::string::npos);
  EXPECT_NE(gantt.find("w1"), std::string::npos);

  // Without dispatch events there is no releases header row.
  events.resize(events.size() - 2);
  const std::string bare = sim::ascii_gantt(events, 2, 40);
  EXPECT_EQ(bare.find("releases"), std::string::npos);
}

TEST(EventGantt, MaxColsDownsamplesWideCharts) {
  std::vector<obs::TraceEvent> events;
  obs::TraceEvent span;
  span.kind = obs::EventKind::kCompute;
  span.start = 0.0;
  span.end = 100.0;
  span.worker = 0;
  span.job = 0;
  events.push_back(span);

  const std::string wide = sim::ascii_gantt(events, 1, 72);
  const std::string narrow = sim::ascii_gantt(events, 1, 72, 24);
  EXPECT_GT(wide.find('\n'), narrow.find('\n'));  // shorter rows
  EXPECT_NE(narrow.find('A'), std::string::npos);
  // max_cols only ever shrinks: a cap above the width is a no-op, and
  // tiny caps clamp to a usable minimum instead of degenerating.
  EXPECT_EQ(sim::ascii_gantt(events, 1, 24, 72),
            sim::ascii_gantt(events, 1, 24));
  EXPECT_EQ(sim::ascii_gantt(events, 1, 72, 1),
            sim::ascii_gantt(events, 1, 72, 8));
}

// --- arrival / alert instants ------------------------------------------------

TEST(ChromeExport, ArrivalAndAlertInstantsRouteToTheirTracks) {
  std::vector<obs::TraceEvent> events;
  obs::TraceEvent arrival;
  arrival.kind = obs::EventKind::kArrival;
  arrival.start = arrival.end = 1.0;
  arrival.job = 3;
  arrival.tenant = 1;
  arrival.value = 2.0;  // two jobs ahead in the queue
  events.push_back(arrival);
  obs::TraceEvent alert;
  alert.kind = obs::EventKind::kAlert;
  alert.start = alert.end = 4.0;
  alert.value = 15.0;
  events.push_back(alert);

  std::ostringstream out;
  obs::write_chrome_trace(out, events, {});
  const std::string text = out.str();
  const obs::ValidationResult result = obs::validate_chrome_trace_text(text);
  EXPECT_TRUE(result) << result.error;
  EXPECT_NE(text.find("\"arrival\""), std::string::npos);
  EXPECT_NE(text.find("\"alert\""), std::string::npos);
  // kArrival is a job-track instant (pid 2), kAlert a scheduler-track
  // instant (pid 3).
  EXPECT_LT(text.find("\"arrival\""), text.find("\"alert\""));
  EXPECT_NE(text.find("\"pid\": 2"), std::string::npos);
  EXPECT_NE(text.find("\"pid\": 3"), std::string::npos);

  // Server arrivals survive the export→parse round trip.
  const std::vector<obs::TraceEvent> decoded =
      obs::events_from_chrome_trace(util::parse_json(text));
  ASSERT_EQ(decoded.size(), 2u);
  EXPECT_EQ(decoded[0].kind, obs::EventKind::kArrival);
  EXPECT_EQ(decoded[0].job, 3u);
  EXPECT_EQ(decoded[0].value, 2.0);
  EXPECT_EQ(decoded[1].kind, obs::EventKind::kAlert);
  EXPECT_EQ(decoded[1].value, 15.0);
}

TEST(TraceContent, ServersEmitOneArrivalPerOfferedJob) {
  const platform::Platform plat = test_platform();
  const std::vector<online::Job> jobs = burst_jobs();

  obs::TraceRecorder online_recorder;
  online::ServerOptions online_opts =
      online_options(sim::CommModelKind::kParallelLinks,
                     online::MasterMode::kPrivatePort);
  online_opts.trace = &online_recorder;
  const online::Server online_server(plat, online_opts);
  const online::FairShareScheduler fair(2);
  (void)online_server.run(jobs, fair);
  const auto online_arrivals =
      online_recorder.of_kind(obs::EventKind::kArrival);
  ASSERT_EQ(online_arrivals.size(), jobs.size());
  for (const obs::TraceEvent& event : online_arrivals) {
    EXPECT_EQ(event.start, event.end);  // instant, at the arrival time
    EXPECT_NE(event.job, obs::kNoIndex);
    EXPECT_GE(event.value, 0.0);  // queue depth
  }

  obs::TraceRecorder qos_recorder;
  qos::ServerOptions qos_opts =
      qos_options(sim::CommModelKind::kParallelLinks, 1);
  qos_opts.trace = &qos_recorder;
  const qos::Server qos_server(plat, qos_opts);
  qos::SrptPolicy srpt;
  (void)qos_server.run(jobs, srpt);
  EXPECT_EQ(qos_recorder.of_kind(obs::EventKind::kArrival).size(),
            jobs.size());
}

}  // namespace
}  // namespace nldl
