// Tests for the recursive-bisection partitioner.
#include "partition/recursive_bisection.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "partition/lower_bound.hpp"
#include "partition/peri_sum.hpp"
#include "platform/speed_distributions.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace nldl::partition {
namespace {

void expect_valid(const BisectionPartition& part,
                  const std::vector<double>& areas) {
  double total = 0.0;
  for (const double a : areas) total += a;
  double covered = 0.0;
  for (std::size_t i = 0; i < areas.size(); ++i) {
    EXPECT_NEAR(part.rects[i].area(), areas[i] / total, 1e-9);
    covered += part.rects[i].area();
  }
  EXPECT_NEAR(covered, 1.0, 1e-9);
  // Overlap check with an ulp-scale margin: deep recursive cuts can leave
  // boundaries ~1e-15 apart, which is not a real overlap.
  constexpr double kMargin = 1e-12;
  for (std::size_t i = 0; i < part.rects.size(); ++i) {
    Rect a = part.rects[i];
    a.x += kMargin;
    a.y += kMargin;
    a.width = std::max(0.0, a.width - 2 * kMargin);
    a.height = std::max(0.0, a.height - 2 * kMargin);
    for (std::size_t j = i + 1; j < part.rects.size(); ++j) {
      EXPECT_FALSE(a.overlaps(part.rects[j])) << i << " vs " << j;
    }
  }
}

TEST(RecursiveBisection, SingleArea) {
  const auto part = recursive_bisection_partition({3.0});
  EXPECT_NEAR(part.rects[0].area(), 1.0, 1e-12);
  EXPECT_NEAR(part.total_half_perimeter, 2.0, 1e-12);
}

TEST(RecursiveBisection, FourEqualGivesQuadrants) {
  const auto part =
      recursive_bisection_partition(std::vector<double>(4, 1.0));
  expect_valid(part, std::vector<double>(4, 1.0));
  // Quadrants: every half-perimeter is 1, total 4 (the lower bound).
  EXPECT_NEAR(part.total_half_perimeter, 4.0, 1e-9);
  EXPECT_NEAR(part.max_half_perimeter, 1.0, 1e-9);
}

TEST(RecursiveBisection, ProportionalAreas) {
  const std::vector<double> areas{0.5, 0.25, 0.125, 0.125};
  const auto part = recursive_bisection_partition(areas);
  expect_valid(part, areas);
}

TEST(RecursiveBisection, RejectsBadInput) {
  EXPECT_THROW((void)recursive_bisection_partition({}),
               util::PreconditionError);
  EXPECT_THROW((void)recursive_bisection_partition({1.0, 0.0}),
               util::PreconditionError);
}

TEST(RecursiveBisection, ComparableToPeriSum) {
  // Not as tight as the DP on the sum objective, but within a modest
  // factor of the lower bound across the paper's platforms.
  util::Rng rng(3);
  for (int rep = 0; rep < 20; ++rep) {
    const auto speeds =
        platform::make_platform(platform::SpeedModel::kLogNormal, 30, rng)
            .speeds();
    const auto bisection = recursive_bisection_partition(speeds);
    const auto column = peri_sum_partition(speeds);
    const double lb = comm_lower_bound_unit(speeds);
    EXPECT_LE(bisection.total_half_perimeter, 1.6 * lb);
    // The DP should win (or tie) on its own objective.
    EXPECT_LE(column.total_half_perimeter,
              bisection.total_half_perimeter + 1e-9);
  }
}

// Property: structural invariants across sizes and distributions.
class BisectionProperty
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(BisectionProperty, InvariantsHold) {
  const auto [p, seed] = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(seed) * 613 + 29);
  std::vector<double> areas;
  for (int i = 0; i < p; ++i) {
    areas.push_back(seed % 2 == 0 ? rng.uniform(0.5, 1.5)
                                  : rng.lognormal(0.0, 1.0));
  }
  const auto part = recursive_bisection_partition(areas);
  expect_valid(part, areas);
  EXPECT_GE(part.total_half_perimeter,
            comm_lower_bound_unit(areas) - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, BisectionProperty,
    ::testing::Combine(::testing::Values(2, 3, 7, 16, 33, 100),
                       ::testing::Range(0, 4)));

}  // namespace
}  // namespace nldl::partition
