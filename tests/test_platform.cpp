// Unit tests for the heterogeneous platform model.
#include "platform/platform.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "util/assert.hpp"

namespace nldl::platform {
namespace {

TEST(Processor, RatesAreReciprocal) {
  const Processor p{0.5, 0.25};
  EXPECT_DOUBLE_EQ(p.bandwidth(), 2.0);
  EXPECT_DOUBLE_EQ(p.speed(), 4.0);
}

TEST(Processor, ValidateRejectsNonPositive) {
  EXPECT_THROW((Processor{0.0, 1.0}.validate()), util::PreconditionError);
  EXPECT_THROW((Processor{1.0, -1.0}.validate()), util::PreconditionError);
}

TEST(Platform, RejectsEmpty) {
  EXPECT_THROW(Platform({}), util::PreconditionError);
}

TEST(Platform, HomogeneousBuilder) {
  const Platform plat = Platform::homogeneous(4, 2.0, 0.5);
  EXPECT_EQ(plat.size(), 4U);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(plat.c(i), 2.0);
    EXPECT_DOUBLE_EQ(plat.w(i), 0.5);
    EXPECT_DOUBLE_EQ(plat.speed(i), 2.0);
  }
  EXPECT_DOUBLE_EQ(plat.heterogeneity(), 1.0);
}

TEST(Platform, FromSpeeds) {
  const Platform plat = Platform::from_speeds({1.0, 2.0, 4.0}, 3.0);
  EXPECT_DOUBLE_EQ(plat.total_speed(), 7.0);
  EXPECT_DOUBLE_EQ(plat.w(2), 0.25);
  EXPECT_DOUBLE_EQ(plat.c(2), 3.0);
  EXPECT_DOUBLE_EQ(plat.heterogeneity(), 4.0);
}

TEST(Platform, FromSpeedsRejectsNonPositive) {
  EXPECT_THROW(Platform::from_speeds({1.0, 0.0}), util::PreconditionError);
}

TEST(Platform, NormalizedSpeedsSumToOne) {
  const Platform plat = Platform::from_speeds({3.0, 5.0, 2.0});
  const auto x = plat.normalized_speeds();
  EXPECT_NEAR(std::accumulate(x.begin(), x.end(), 0.0), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(x[0], 0.3);
  EXPECT_DOUBLE_EQ(x[1], 0.5);
  EXPECT_DOUBLE_EQ(x[2], 0.2);
}

TEST(Platform, SortedBySpeed) {
  const Platform plat = Platform::from_speeds({5.0, 1.0, 3.0});
  EXPECT_FALSE(plat.is_sorted_by_speed());
  const Platform sorted = plat.sorted_by_speed();
  EXPECT_TRUE(sorted.is_sorted_by_speed());
  EXPECT_DOUBLE_EQ(sorted.speed(0), 1.0);
  EXPECT_DOUBLE_EQ(sorted.speed(2), 5.0);
  // Sorting must not change aggregate speed.
  EXPECT_DOUBLE_EQ(sorted.total_speed(), plat.total_speed());
}

TEST(Platform, TwoClassShape) {
  const Platform plat = Platform::two_class(6, 2.0, 5.0);
  EXPECT_EQ(plat.size(), 6U);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_DOUBLE_EQ(plat.speed(i), 2.0);
  for (std::size_t i = 3; i < 6; ++i) EXPECT_DOUBLE_EQ(plat.speed(i), 10.0);
  EXPECT_DOUBLE_EQ(plat.heterogeneity(), 5.0);
}

TEST(Platform, TwoClassRejectsOddP) {
  EXPECT_THROW(Platform::two_class(5, 1.0, 2.0), util::PreconditionError);
  EXPECT_THROW(Platform::two_class(4, 1.0, 0.5), util::PreconditionError);
}

TEST(Platform, WorkerIndexBounds) {
  const Platform plat = Platform::homogeneous(2);
  EXPECT_THROW((void)plat.worker(2), util::PreconditionError);
}

}  // namespace
}  // namespace nldl::platform
