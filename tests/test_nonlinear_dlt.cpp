// Unit + property tests for the nonlinear DLT allocators — the machinery
// behind the paper's Section 2 "no free lunch" theorem.
#include "dlt/nonlinear_dlt.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "dlt/analysis.hpp"
#include "dlt/linear_dlt.hpp"
#include "platform/speed_distributions.hpp"
#include "sim/simulator.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace nldl::dlt {
namespace {

using platform::Platform;

TEST(NonlinearParallel, HomogeneousMatchesClosedForm) {
  const std::size_t p = 8;
  const double alpha = 2.0;
  const double n = 100.0;
  const Platform plat = Platform::homogeneous(p, 1.0, 1.0);
  const auto alloc = nonlinear_parallel_single_round(plat, n, alpha);
  for (const double amount : alloc.amounts) {
    EXPECT_NEAR(amount, n / static_cast<double>(p), 1e-6);
  }
  EXPECT_NEAR(alloc.makespan,
              homogeneous_nonlinear_makespan(p, 1.0, 1.0, n, alpha), 1e-6);
}

TEST(NonlinearParallel, RemainingFractionMatchesTheorem) {
  // (W − W_partial)/W = 1 − 1/p^(α−1) on homogeneous platforms.
  for (const std::size_t p : {2UL, 4UL, 16UL, 64UL}) {
    for (const double alpha : {1.5, 2.0, 3.0}) {
      const Platform plat = Platform::homogeneous(p, 1.0, 1.0);
      const auto alloc = nonlinear_parallel_single_round(plat, 1000.0, alpha);
      EXPECT_NEAR(alloc.remaining_fraction,
                  remaining_fraction_homogeneous(p, alpha), 1e-6)
          << "p=" << p << " alpha=" << alpha;
    }
  }
}

TEST(NonlinearParallel, AlphaOneMatchesLinearClosedForm) {
  const Platform plat = Platform::from_speeds({1.0, 2.0, 5.0}, 0.5);
  const auto nonlinear = nonlinear_parallel_single_round(plat, 60.0, 1.0);
  const auto linear = linear_parallel_single_round(plat, 60.0);
  for (std::size_t i = 0; i < plat.size(); ++i) {
    EXPECT_NEAR(nonlinear.amounts[i], linear.amounts[i], 1e-6);
  }
  EXPECT_NEAR(nonlinear.makespan, linear.makespan, 1e-6);
  EXPECT_NEAR(nonlinear.remaining_fraction, 0.0, 1e-9);
}

TEST(NonlinearParallel, EqualFinishTimes) {
  const Platform plat = Platform::from_speeds({1.0, 3.0, 9.0}, 2.0);
  const double alpha = 2.5;
  const auto alloc = nonlinear_parallel_single_round(plat, 40.0, alpha);
  for (std::size_t i = 0; i < plat.size(); ++i) {
    const double finish =
        plat.c(i) * alloc.amounts[i] +
        plat.w(i) * std::pow(alloc.amounts[i], alpha);
    EXPECT_NEAR(finish, alloc.makespan, 1e-6 * alloc.makespan);
  }
}

TEST(NonlinearParallel, SimulatorConfirmsMakespan) {
  const Platform plat = Platform::from_speeds({2.0, 7.0}, 1.0);
  const double alpha = 2.0;
  const auto alloc = nonlinear_parallel_single_round(plat, 25.0, alpha);
  std::vector<sim::ChunkAssignment> schedule;
  for (std::size_t i = 0; i < alloc.amounts.size(); ++i) {
    schedule.push_back({i, alloc.amounts[i]});
  }
  sim::SimOptions options;
  options.alpha = alpha;
  const auto result = sim::simulate(plat, schedule, options);
  EXPECT_NEAR(result.makespan, alloc.makespan, 1e-6 * alloc.makespan);
  for (const double finish : result.worker_finish) {
    EXPECT_NEAR(finish, result.makespan, 1e-5 * result.makespan);
  }
}

TEST(NonlinearParallel, ZeroLoad) {
  const Platform plat = Platform::homogeneous(3);
  const auto alloc = nonlinear_parallel_single_round(plat, 0.0, 2.0);
  for (const double amount : alloc.amounts) EXPECT_EQ(amount, 0.0);
  EXPECT_EQ(alloc.makespan, 0.0);
}

TEST(NonlinearParallel, RejectsBadArguments) {
  const Platform plat = Platform::homogeneous(2);
  EXPECT_THROW((void)nonlinear_parallel_single_round(plat, -1.0, 2.0),
               util::PreconditionError);
  EXPECT_THROW((void)nonlinear_parallel_single_round(plat, 1.0, 0.5),
               util::PreconditionError);
}

TEST(NonlinearOnePort, EqualFinishForFedWorkers) {
  const Platform plat = Platform::from_speeds({1.0, 2.0, 4.0}, 0.2);
  const double alpha = 2.0;
  const auto alloc = nonlinear_one_port_single_round(plat, 30.0, alpha);
  // Recompute finish times along the schedule.
  double clock = 0.0;
  for (std::size_t i = 0; i < plat.size(); ++i) {
    if (alloc.amounts[i] <= 0.0) continue;
    clock += plat.c(i) * alloc.amounts[i];
    const double finish =
        clock + plat.w(i) * std::pow(alloc.amounts[i], alpha);
    EXPECT_NEAR(finish, alloc.makespan, 1e-5 * alloc.makespan);
  }
}

TEST(NonlinearOnePort, MoreWorkersNeverHurtMakespan) {
  const double alpha = 2.0;
  double previous = std::numeric_limits<double>::infinity();
  for (const std::size_t p : {1UL, 2UL, 4UL, 8UL, 16UL}) {
    const Platform plat = Platform::homogeneous(p, 1.0, 1.0);
    const auto alloc = nonlinear_one_port_single_round(plat, 50.0, alpha);
    EXPECT_LE(alloc.makespan, previous + 1e-6);
    previous = alloc.makespan;
  }
}

TEST(NonlinearOnePort, WorkDoneNeverExceedsTotal) {
  util::Rng rng(5);
  for (int rep = 0; rep < 10; ++rep) {
    const Platform plat = platform::make_platform(
        platform::SpeedModel::kLogNormal, 6, rng);
    const auto alloc = nonlinear_one_port_single_round(plat, 20.0, 2.0);
    EXPECT_GE(alloc.remaining_fraction, 0.0);
    EXPECT_LE(alloc.remaining_fraction, 1.0);
    EXPECT_LE(alloc.work_done, alloc.total_work * (1.0 + 1e-9));
  }
}

// The central claim of Section 2: as p grows, the DLT round covers a
// vanishing fraction of a quadratic workload — even with the optimal
// allocation, and under both communication models.
TEST(NoFreeLunch, RemainingFractionTendsToOne) {
  const double alpha = 2.0;
  double last_parallel = 0.0;
  for (const std::size_t p : {2UL, 8UL, 32UL, 128UL}) {
    const Platform plat = Platform::homogeneous(p, 1.0, 1.0);
    const auto parallel =
        nonlinear_parallel_single_round(plat, 10000.0, alpha);
    EXPECT_GT(parallel.remaining_fraction, last_parallel);
    last_parallel = parallel.remaining_fraction;
  }
  EXPECT_GT(last_parallel, 0.99);  // 1 − 1/128 ≈ 0.992
}

// Property sweep: allocations are valid (non-negative, sum to N, equal
// finish) over random heterogeneous platforms and exponents.
class NonlinearAllocationProperty : public ::testing::TestWithParam<int> {};

TEST_P(NonlinearAllocationProperty, ParallelAllocationIsValid) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 131 + 17);
  const auto model = GetParam() % 2 == 0 ? platform::SpeedModel::kUniform
                                         : platform::SpeedModel::kLogNormal;
  const auto p =
      static_cast<std::size_t>(rng.uniform_int(2, 12));
  const Platform plat = platform::make_platform(model, p, rng);
  const double alpha = rng.uniform(1.1, 3.5);
  const double n = rng.uniform(1.0, 500.0);

  const auto alloc = nonlinear_parallel_single_round(plat, n, alpha);
  double total = 0.0;
  for (const double amount : alloc.amounts) {
    ASSERT_GE(amount, 0.0);
    total += amount;
  }
  EXPECT_NEAR(total, n, 1e-6 * n);
  for (std::size_t i = 0; i < plat.size(); ++i) {
    const double finish = plat.c(i) * alloc.amounts[i] +
                          plat.w(i) * std::pow(alloc.amounts[i], alpha);
    EXPECT_NEAR(finish, alloc.makespan, 1e-5 * alloc.makespan);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, NonlinearAllocationProperty,
                         ::testing::Range(0, 12));

}  // namespace
}  // namespace nldl::dlt
