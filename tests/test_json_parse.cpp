// Tests for util/json_parse.hpp — the read side of the JSON stack. The
// parser backs trace validation and bench-payload diffing, so the pins
// here are about strictness (malformed input throws), order
// preservation, and exact structural equality.
#include <string>

#include <gtest/gtest.h>

#include "util/assert.hpp"
#include "util/json_parse.hpp"

namespace nldl {
namespace {

using util::JsonValue;
using util::parse_json;

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(parse_json("null").is_null());
  EXPECT_TRUE(parse_json("true").boolean);
  EXPECT_FALSE(parse_json("false").boolean);
  EXPECT_EQ(parse_json("42").number, 42.0);
  EXPECT_EQ(parse_json("-1.5e3").number, -1500.0);
  EXPECT_EQ(parse_json("0.0078125").number, 0.0078125);  // exact binary
  EXPECT_EQ(parse_json("\"hi\"").string, "hi");
}

TEST(JsonParse, StringEscapes) {
  EXPECT_EQ(parse_json(R"("a\"b\\c\/d")").string, "a\"b\\c/d");
  EXPECT_EQ(parse_json(R"("line\nfeed\ttab")").string, "line\nfeed\ttab");
  EXPECT_EQ(parse_json(R"("Aé")").string, "A\xc3\xa9");
}

TEST(JsonParse, ArraysAndObjectsPreserveOrder) {
  const JsonValue doc = parse_json(
      R"({"z": [1, 2, 3], "a": {"nested": true}, "z": "dup"})");
  ASSERT_TRUE(doc.is_object());
  ASSERT_EQ(doc.object.size(), 3u);  // duplicate keys are both kept
  EXPECT_EQ(doc.object[0].first, "z");
  EXPECT_EQ(doc.object[1].first, "a");
  EXPECT_EQ(doc.object[2].first, "z");

  const JsonValue* z = doc.find("z");
  ASSERT_NE(z, nullptr);  // find returns the FIRST member
  ASSERT_TRUE(z->is_array());
  ASSERT_EQ(z->array.size(), 3u);
  EXPECT_EQ(z->array[2].number, 3.0);

  const JsonValue* a = doc.find("a");
  ASSERT_NE(a, nullptr);
  const JsonValue* nested = a->find("nested");
  ASSERT_NE(nested, nullptr);
  EXPECT_TRUE(nested->boolean);

  EXPECT_EQ(doc.find("missing"), nullptr);
  EXPECT_EQ(z->find("z"), nullptr);  // non-objects have no members
}

TEST(JsonParse, StructuralEqualityIsExact) {
  EXPECT_EQ(parse_json(R"({"a": [1, 2], "b": "x"})"),
            parse_json(R"({ "a" : [ 1 , 2 ] , "b" : "x" })"));
  // Member order matters.
  EXPECT_FALSE(parse_json(R"({"a": 1, "b": 2})") ==
               parse_json(R"({"b": 2, "a": 1})"));
  // Doubles compare exactly — bitwise reproduction is the point.
  EXPECT_FALSE(parse_json("0.1") == parse_json("0.10000000000000002"));
  EXPECT_FALSE(parse_json("1") == parse_json("true"));
  EXPECT_FALSE(parse_json("[1]") == parse_json("[1, 1]"));
}

TEST(JsonParse, MalformedInputThrows) {
  EXPECT_THROW((void)parse_json(""), util::PreconditionError);
  EXPECT_THROW((void)parse_json("{"), util::PreconditionError);
  EXPECT_THROW((void)parse_json("[1,]"), util::PreconditionError);
  EXPECT_THROW((void)parse_json("{\"a\" 1}"), util::PreconditionError);
  EXPECT_THROW((void)parse_json("'single'"), util::PreconditionError);
  EXPECT_THROW((void)parse_json("nul"), util::PreconditionError);
  EXPECT_THROW((void)parse_json("1 2"), util::PreconditionError);  // garbage
  EXPECT_THROW((void)parse_json("\"unterminated"), util::PreconditionError);
  EXPECT_THROW((void)parse_json("\"bad \\q escape\""),
               util::PreconditionError);
}

TEST(JsonParse, NestingDepthIsBounded) {
  std::string deep;
  for (int i = 0; i < 200; ++i) deep += '[';
  for (int i = 0; i < 200; ++i) deep += ']';
  EXPECT_THROW((void)parse_json(deep), util::PreconditionError);

  std::string ok;
  for (int i = 0; i < 64; ++i) ok += '[';
  for (int i = 0; i < 64; ++i) ok += ']';
  EXPECT_TRUE(parse_json(ok).is_array());
}

}  // namespace
}  // namespace nldl
