// Tests for the parallel Figure 4 runner (thread-count invariance) and the
// engine-backed capacity sweep.
#include "core/experiments.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "sim/engine.hpp"
#include "util/assert.hpp"

namespace nldl::core {
namespace {

Fig4Config small_config(std::size_t threads) {
  Fig4Config config;
  config.model = platform::SpeedModel::kLogNormal;
  config.processor_counts = {10, 20, 40};
  config.trials = 8;
  config.seed = 424242;
  config.threads = threads;
  return config;
}

void expect_rows_identical(const std::vector<Fig4Row>& a,
                           const std::vector<Fig4Row>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].p, b[i].p);
    EXPECT_EQ(a[i].het.count(), b[i].het.count());
    EXPECT_EQ(a[i].het.mean(), b[i].het.mean());
    EXPECT_EQ(a[i].het.variance(), b[i].het.variance());
    EXPECT_EQ(a[i].hom.mean(), b[i].hom.mean());
    EXPECT_EQ(a[i].hom.variance(), b[i].hom.variance());
    EXPECT_EQ(a[i].hom_k.mean(), b[i].hom_k.mean());
    EXPECT_EQ(a[i].hom_k.variance(), b[i].hom_k.variance());
    EXPECT_EQ(a[i].k_used.mean(), b[i].k_used.mean());
    EXPECT_EQ(a[i].hom_imbalance.count(), b[i].hom_imbalance.count());
    EXPECT_EQ(a[i].hom_imbalance.mean(), b[i].hom_imbalance.mean());
    EXPECT_EQ(a[i].hom_imbalance_dropped, b[i].hom_imbalance_dropped);
    EXPECT_EQ(a[i].hom_idle_trials, b[i].hom_idle_trials);
  }
}

TEST(Fig4Parallel, BitIdenticalAcrossThreadCounts) {
  const auto serial = run_fig4(small_config(1));
  for (const std::size_t threads : {2UL, 4UL, 7UL}) {
    const auto parallel = run_fig4(small_config(threads));
    expect_rows_identical(serial, parallel);
  }
}

TEST(Fig4Parallel, HardwareThreadCountAlsoIdentical) {
  const auto serial = run_fig4(small_config(1));
  const auto automatic = run_fig4(small_config(0));  // 0 = hardware
  expect_rows_identical(serial, automatic);
}

TEST(Fig4Parallel, MoreThreadsThanTrialsIsFine) {
  Fig4Config config = small_config(64);
  config.processor_counts = {10};
  config.trials = 3;
  const auto rows = run_fig4(config);
  ASSERT_EQ(rows.size(), 1U);
  EXPECT_EQ(rows[0].het.count(), 3U);
}

TEST(CapacitySweep, MakespanDropsCoveredFractionDoesNot) {
  CapacitySweepConfig config;
  config.p = 16;
  config.alpha = 2.0;
  config.total_load = 1000.0;
  const auto rows = capacity_sweep(config);
  ASSERT_EQ(rows.size(), config.capacities.size());
  double previous = std::numeric_limits<double>::infinity();
  for (const auto& row : rows) {
    EXPECT_LE(row.makespan, previous + 1e-9);
    previous = row.makespan;
    // The covered share is a property of the division, not the network.
    EXPECT_DOUBLE_EQ(row.covered_fraction, rows.front().covered_fraction);
    EXPECT_LE(row.comm_phase_end, row.makespan);
  }
}

TEST(CapacitySweep, InfiniteCapacityMatchesParallelLinksEngine) {
  CapacitySweepConfig config;
  config.p = 8;
  config.total_load = 800.0;
  config.capacities = {std::numeric_limits<double>::infinity()};
  const auto rows = capacity_sweep(config);
  ASSERT_EQ(rows.size(), 1U);

  const auto plat = platform::Platform::homogeneous(config.p, config.c,
                                                    config.w);
  const sim::Engine engine(plat, sim::EngineOptions{config.alpha});
  const std::vector<double> amounts(
      config.p, config.total_load / static_cast<double>(config.p));
  const auto direct = engine.run_single_round(
      amounts, sim::ParallelLinksModel{});
  EXPECT_EQ(rows[0].makespan, direct.makespan);
}

TEST(Fig4Parallel, ImbalanceSamplesAreAccountedFor) {
  // Every trial's imbalance sample is either pushed or counted as
  // dropped — never silently discarded (the pre-fix behavior).
  const auto rows = run_fig4(small_config(1));
  for (const auto& row : rows) {
    EXPECT_EQ(row.hom_imbalance.count() + row.hom_imbalance_dropped,
              row.het.count());
    // With imbalance defined over busy workers, nothing is non-finite.
    EXPECT_EQ(row.hom_imbalance_dropped, 0U);
    if (!row.hom_imbalance.empty()) {
      EXPECT_TRUE(std::isfinite(row.hom_imbalance.mean()));
      EXPECT_TRUE(std::isfinite(row.hom_imbalance.max()));
    }
  }
}

TEST(CapacitySweep, BitIdenticalAcrossThreadCounts) {
  CapacitySweepConfig config;
  config.p = 16;
  config.total_load = 1000.0;
  config.threads = 1;
  const auto serial = capacity_sweep(config);
  for (const std::size_t threads : {2UL, 4UL, 0UL}) {
    config.threads = threads;
    const auto parallel = capacity_sweep(config);
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(parallel[i].capacity, serial[i].capacity);
      EXPECT_EQ(parallel[i].comm_phase_end, serial[i].comm_phase_end);
      EXPECT_EQ(parallel[i].makespan, serial[i].makespan);
      EXPECT_EQ(parallel[i].covered_fraction, serial[i].covered_fraction);
    }
  }
}

TEST(CapacitySweep, RejectsBadConfig) {
  CapacitySweepConfig config;
  config.capacities = {};
  EXPECT_THROW((void)capacity_sweep(config), util::PreconditionError);
  CapacitySweepConfig bad_alpha;
  bad_alpha.alpha = 0.5;
  EXPECT_THROW((void)capacity_sweep(bad_alpha), util::PreconditionError);
}

}  // namespace
}  // namespace nldl::core
