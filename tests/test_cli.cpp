// Unit tests for the CLI argument parser.
#include "util/cli.hpp"

#include <gtest/gtest.h>

#include "util/assert.hpp"

namespace nldl::util {
namespace {

Args make(std::initializer_list<const char*> argv) {
  std::vector<const char*> raw(argv);
  return Args(static_cast<int>(raw.size()), raw.data());
}

TEST(Args, ParsesKeyValuePairs) {
  const Args args = make({"prog", "--n=100", "--ratio=2.5", "--name=hello"});
  EXPECT_EQ(args.get_int("n", 0), 100);
  EXPECT_DOUBLE_EQ(args.get_double("ratio", 0.0), 2.5);
  EXPECT_EQ(args.get_string("name", ""), "hello");
}

TEST(Args, FallbacksWhenMissing) {
  const Args args = make({"prog"});
  EXPECT_EQ(args.get_int("n", 7), 7);
  EXPECT_DOUBLE_EQ(args.get_double("x", 1.5), 1.5);
  EXPECT_EQ(args.get_string("s", "dft"), "dft");
  EXPECT_FALSE(args.get_bool("flag", false));
  EXPECT_TRUE(args.get_bool("flag", true));
}

TEST(Args, BareFlagIsTrue) {
  const Args args = make({"prog", "--verbose"});
  EXPECT_TRUE(args.has("verbose"));
  EXPECT_TRUE(args.get_bool("verbose", false));
}

TEST(Args, BooleanSpellings) {
  const Args args = make({"prog", "--a=true", "--b=FALSE", "--c=1",
                          "--d=0", "--e=Yes", "--f=no"});
  EXPECT_TRUE(args.get_bool("a", false));
  EXPECT_FALSE(args.get_bool("b", true));
  EXPECT_TRUE(args.get_bool("c", false));
  EXPECT_FALSE(args.get_bool("d", true));
  EXPECT_TRUE(args.get_bool("e", false));
  EXPECT_FALSE(args.get_bool("f", true));
}

TEST(Args, RejectsGarbageBoolean) {
  const Args args = make({"prog", "--x=maybe"});
  EXPECT_THROW((void)args.get_bool("x", false), PreconditionError);
}

TEST(Args, PositionalArguments) {
  const Args args = make({"prog", "input.txt", "--k=2", "output.txt"});
  ASSERT_EQ(args.positional().size(), 2U);
  EXPECT_EQ(args.positional()[0], "input.txt");
  EXPECT_EQ(args.positional()[1], "output.txt");
  EXPECT_EQ(args.program(), "prog");
}

TEST(Args, LastDuplicateWins) {
  const Args args = make({"prog", "--n=1", "--n=2"});
  EXPECT_EQ(args.get_int("n", 0), 2);
}

TEST(Args, ValueWithEqualsSign) {
  const Args args = make({"prog", "--expr=a=b"});
  EXPECT_EQ(args.get_string("expr", ""), "a=b");
}

}  // namespace
}  // namespace nldl::util
