// Insertion-order-independence pins for the three audited container
// sites of the nldl-lint unordered-container sweep (ISSUE 7): the
// mapreduce block caches (cluster_sim, speculation) and the online
// PredictionCache. All three were std::unordered_* and are now ordered;
// these tests permute the order in which elements ENTER each container
// and assert bitwise-identical outcomes, so a future reintroduction of
// order-sensitive iteration fails here before it reaches a bench.
#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "mapreduce/cluster_sim.hpp"
#include "mapreduce/speculation.hpp"
#include "online/scheduler.hpp"
#include "platform/platform.hpp"

namespace {

using nldl::mapreduce::BlockId;
using nldl::mapreduce::ClusterConfig;
using nldl::mapreduce::ClusterOutcome;
using nldl::mapreduce::SimTask;

// The per-worker block cache is populated in task-input order; permuting
// each task's input list permutes exactly the cache insertion order while
// naming the same block set, so every accounted quantity must be
// bit-identical.
std::vector<SimTask> affinity_tasks(bool reversed) {
  std::vector<SimTask> tasks;
  for (std::size_t t = 0; t < 24; ++t) {
    SimTask task;
    task.compute_cost = 3.0 + static_cast<double>(t % 5);
    // Overlapping block sets so affinity scheduling has real choices.
    task.inputs = {BlockId(t), BlockId(t / 2 + 100), BlockId(t % 7 + 200),
                   BlockId(301), BlockId(t % 3 + 400)};
    if (reversed) std::reverse(task.inputs.begin(), task.inputs.end());
    tasks.push_back(task);
  }
  return tasks;
}

void expect_identical(const ClusterOutcome& a, const ClusterOutcome& b) {
  EXPECT_EQ(a.owner, b.owner);
  EXPECT_EQ(a.worker_time, b.worker_time);
  EXPECT_EQ(a.bytes_per_worker, b.bytes_per_worker);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.imbalance, b.imbalance);
  EXPECT_EQ(a.total_bytes, b.total_bytes);
}

TEST(DeterminismOrder, ClusterSimCacheIgnoresInsertionOrder) {
  ClusterConfig config;
  config.speeds = {1.0, 1.5, 0.75};
  config.bytes_per_block = 2.0;
  for (const bool affinity : {false, true}) {
    config.affinity_aware = affinity;
    const ClusterOutcome forward = run_cluster(affinity_tasks(false), config);
    const ClusterOutcome reversed = run_cluster(affinity_tasks(true), config);
    expect_identical(forward, reversed);
  }
}

TEST(DeterminismOrder, SpeculationCacheIgnoresInsertionOrder) {
  nldl::mapreduce::StragglerConfig config;
  config.speeds = {1.0, 1.0, 2.0};
  config.slowdown = {1.0, 4.0, 1.0};
  config.bytes_per_block = 1.5;
  for (const bool speculate : {false, true}) {
    config.speculative_execution = speculate;
    const auto forward =
        run_with_stragglers(affinity_tasks(false), config);
    const auto reversed =
        run_with_stragglers(affinity_tasks(true), config);
    EXPECT_EQ(forward.makespan, reversed.makespan);
    EXPECT_EQ(forward.total_bytes, reversed.total_bytes);
    EXPECT_EQ(forward.backup_launches, reversed.backup_launches);
    EXPECT_EQ(forward.backups_won, reversed.backups_won);
    EXPECT_EQ(forward.worker_busy, reversed.worker_busy);
  }
}

TEST(DeterminismOrder, PredictionCacheIgnoresInsertionOrder) {
  const auto plat = nldl::platform::Platform::homogeneous(4, 1.0, 2.0);
  std::vector<nldl::online::Job> jobs;
  for (std::size_t i = 0; i < 12; ++i) {
    nldl::online::Job job;
    job.id = i;
    job.load = 10.0 + static_cast<double>(i);
    job.alpha = (i % 2 == 0) ? 1.0 : 2.0;
    jobs.push_back(job);
  }

  // Fill one cache front-to-back and one back-to-front, then query both
  // in a third order: every prediction must be bit-identical (and served
  // from the memo — no re-solve may sneak in a different code path).
  nldl::online::PredictionCache forward;
  nldl::online::PredictionCache backward;
  for (const auto& job : jobs) {
    (void)forward.predict(job, plat, nldl::sim::CommModelKind::kOnePort);
  }
  for (auto it = jobs.rbegin(); it != jobs.rend(); ++it) {
    (void)backward.predict(*it, plat, nldl::sim::CommModelKind::kOnePort);
  }
  ASSERT_EQ(forward.size(), backward.size());
  const std::size_t forward_misses = forward.misses();
  const std::size_t backward_misses = backward.misses();
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const auto& job = jobs[(i * 5) % jobs.size()];  // scrambled query order
    EXPECT_EQ(forward.predict(job, plat, nldl::sim::CommModelKind::kOnePort),
              backward.predict(job, plat,
                               nldl::sim::CommModelKind::kOnePort))
        << "prediction for job " << job.id
        << " depends on cache insertion order";
  }
  EXPECT_EQ(forward.misses(), forward_misses) << "scrambled queries re-solved";
  EXPECT_EQ(backward.misses(), backward_misses);
}

}  // namespace
