// Tests for the Figure 4 experiment runner (scaled-down sweeps — the full
// paper-scale run lives in bench/bench_fig4*).
#include "core/experiments.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/assert.hpp"

namespace nldl::core {
namespace {

Fig4Config small_config(platform::SpeedModel model) {
  Fig4Config config;
  config.model = model;
  config.processor_counts = {10, 20};
  config.trials = 10;
  config.seed = 20130520;  // IPDPS 2013 ;-)
  return config;
}

TEST(Fig4, HomogeneousRatiosNearOne) {
  const auto rows = run_fig4(small_config(platform::SpeedModel::kHomogeneous));
  ASSERT_EQ(rows.size(), 2U);
  for (const auto& row : rows) {
    // Comm_het pays ~1 % over the bound (the paper: "the increase is
    // usually as small as 1% of the lower bound").
    EXPECT_LE(row.het.mean(), 1.02);
    EXPECT_LE(row.hom.mean(), 1.001);
    EXPECT_LE(row.hom_k.mean(), 1.001);
    EXPECT_NEAR(row.k_used.mean(), 1.0, 1e-9);
    EXPECT_NEAR(row.het.stddev(), 0.0, 1e-9);
  }
}

TEST(Fig4, UniformShowsTheGap) {
  const auto rows = run_fig4(small_config(platform::SpeedModel::kUniform));
  for (const auto& row : rows) {
    EXPECT_LE(row.het.mean(), 1.05);   // paper: within 2 %
    EXPECT_GE(row.hom_k.mean(), 2.0);  // paper: large (15–30 at p = 100)
    EXPECT_GE(row.hom_k.mean(), row.hom.mean());  // refinement costs volume
  }
}

TEST(Fig4, GapGrowsWithP) {
  auto config = small_config(platform::SpeedModel::kLogNormal);
  config.processor_counts = {10, 100};
  config.trials = 20;
  const auto rows = run_fig4(config);
  ASSERT_EQ(rows.size(), 2U);
  EXPECT_GT(rows[1].hom_k.mean(), rows[0].hom_k.mean());
  EXPECT_LE(rows[1].het.mean(), 1.05);
}

TEST(Fig4, DeterministicGivenSeed) {
  const auto a = run_fig4(small_config(platform::SpeedModel::kUniform));
  const auto b = run_fig4(small_config(platform::SpeedModel::kUniform));
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].het.mean(), b[i].het.mean());
    EXPECT_DOUBLE_EQ(a[i].hom_k.mean(), b[i].hom_k.mean());
  }
}

TEST(Fig4, TrialCountsRespected) {
  const auto rows = run_fig4(small_config(platform::SpeedModel::kUniform));
  for (const auto& row : rows) {
    EXPECT_EQ(row.het.count(), 10U);
    EXPECT_EQ(row.hom.count(), 10U);
    EXPECT_EQ(row.hom_k.count(), 10U);
  }
}

TEST(Fig4, TableHasOneRowPerP) {
  const auto rows = run_fig4(small_config(platform::SpeedModel::kUniform));
  const auto table = fig4_table(rows);
  EXPECT_EQ(table.num_rows(), rows.size());
  std::ostringstream out;
  table.print(out);
  EXPECT_NE(out.str().find("Comm_het"), std::string::npos);
}

TEST(Fig4, RejectsBadConfig) {
  Fig4Config config;
  config.trials = 0;
  EXPECT_THROW((void)run_fig4(config), util::PreconditionError);
  Fig4Config empty;
  empty.processor_counts = {};
  EXPECT_THROW((void)run_fig4(empty), util::PreconditionError);
}

}  // namespace
}  // namespace nldl::core
