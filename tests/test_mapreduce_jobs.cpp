// Integration tests for the MapReduce outer-product and matmul jobs.
#include "mapreduce/matmul_job.hpp"
#include "mapreduce/outer_product_job.hpp"

#include <gtest/gtest.h>

#include "linalg/outer_product.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace nldl::mapreduce {
namespace {

TEST(OuterProductJob, MatchesSerialReference) {
  util::Rng rng(1);
  const std::size_t n = 24;
  std::vector<double> a(n);
  std::vector<double> b(n);
  for (auto& v : a) v = rng.uniform(-1.0, 1.0);
  for (auto& v : b) v = rng.uniform(-1.0, 1.0);

  JobConfig config;
  Counters counters;
  const auto result = outer_product_mapreduce(a, b, 6, config, &counters);
  EXPECT_TRUE(result.approx_equal(linalg::outer_product_serial(a, b), 1e-12));
  EXPECT_EQ(counters.map_tasks, 16U);                  // (24/6)²
  EXPECT_EQ(counters.map_output_records, n * n);       // one per cell
  EXPECT_EQ(counters.reduce_groups, n * n);            // unique keys
}

TEST(OuterProductJob, ParallelEngineAgrees) {
  util::Rng rng(2);
  const std::size_t n = 20;
  std::vector<double> a(n);
  std::vector<double> b(n);
  for (auto& v : a) v = rng.uniform(0.0, 2.0);
  for (auto& v : b) v = rng.uniform(0.0, 2.0);
  util::ThreadPool pool(2);
  JobConfig config;
  config.pool = &pool;
  config.num_reducers = 4;
  const auto result = outer_product_mapreduce(a, b, 5, config);
  EXPECT_TRUE(result.approx_equal(linalg::outer_product_serial(a, b), 1e-12));
}

TEST(OuterProductJob, RejectsIndivisibleBlocks) {
  JobConfig config;
  EXPECT_THROW((void)outer_product_mapreduce(std::vector<double>(10, 1.0),
                                             std::vector<double>(10, 1.0), 3,
                                             config),
               util::PreconditionError);
}

TEST(OuterProductTasks, ShapeAndInputs) {
  const auto tasks = outer_product_tasks(100, 10);
  ASSERT_EQ(tasks.size(), 100U);
  for (const auto& task : tasks) {
    EXPECT_DOUBLE_EQ(task.compute_cost, 100.0);
    ASSERT_EQ(task.inputs.size(), 2U);
    EXPECT_LT(task.inputs[0], kBSegmentBase);
    EXPECT_GE(task.inputs[1], kBSegmentBase);
  }
}

TEST(MatmulJob, MatchesNaiveReference) {
  util::Rng rng(3);
  const std::size_t n = 16;
  const auto a = linalg::Matrix::random(n, n, rng);
  const auto b = linalg::Matrix::random(n, n, rng);
  JobConfig config;
  Counters counters;
  const auto result = matmul_mapreduce(a, b, 4, config, &counters);
  EXPECT_TRUE(result.approx_equal(linalg::multiply_naive(a, b), 1e-10));
  EXPECT_EQ(counters.map_tasks, 64U);  // (16/4)³
  // Each of the n² cells receives n/b = 4 partial values.
  EXPECT_EQ(counters.map_output_records, n * n * 4);
}

TEST(MatmulJob, CombinerReducesShuffleNotResult) {
  util::Rng rng(4);
  const std::size_t n = 12;
  const auto a = linalg::Matrix::random(n, n, rng);
  const auto b = linalg::Matrix::random(n, n, rng);
  JobConfig plain;
  Counters plain_counters;
  const auto expected = matmul_mapreduce(a, b, 3, plain, &plain_counters);
  JobConfig combined;
  combined.use_combiner = true;
  Counters combined_counters;
  const auto actual = matmul_mapreduce(a, b, 3, combined, &combined_counters);
  EXPECT_TRUE(actual.approx_equal(expected, 1e-10));
  // Keys within one map task are unique, so the combiner cannot shrink the
  // shuffle here — it must at least not grow it.
  EXPECT_LE(combined_counters.shuffle_bytes, plain_counters.shuffle_bytes);
}

TEST(MatmulReplicationVolume, Formula) {
  EXPECT_DOUBLE_EQ(matmul_replication_volume(100.0, 10.0), 2e5);
  // Finer blocks replicate more.
  EXPECT_GT(matmul_replication_volume(100.0, 5.0),
            matmul_replication_volume(100.0, 20.0));
  EXPECT_THROW((void)matmul_replication_volume(10.0, 20.0),
               util::PreconditionError);
}

TEST(MatmulTasks, ShapeAndSharedBlocks) {
  const auto tasks = matmul_tasks(8, 4);  // g = 2 → 8 tasks
  ASSERT_EQ(tasks.size(), 8U);
  for (const auto& task : tasks) {
    EXPECT_DOUBLE_EQ(task.compute_cost, 64.0);
    ASSERT_EQ(task.inputs.size(), 2U);
  }
  // Each A block (bi, bk) is read by g tasks (all bj) — count one of them.
  std::size_t readers = 0;
  for (const auto& task : tasks) {
    if (task.inputs[0] == 0) ++readers;  // A block (0,0)
  }
  EXPECT_EQ(readers, 2U);
}

TEST(MatmulTasks, AffinitySchedulingSavesBytes) {
  const auto tasks = matmul_tasks(32, 8);  // g = 4, 64 tasks
  ClusterConfig plain;
  plain.speeds = {1.0, 1.0, 2.0, 3.0};
  const auto blind = run_cluster(tasks, plain);
  ClusterConfig aware = plain;
  aware.affinity_aware = true;
  const auto smart = run_cluster(tasks, aware);
  EXPECT_LT(smart.total_bytes, blind.total_bytes);
}

}  // namespace
}  // namespace nldl::mapreduce
