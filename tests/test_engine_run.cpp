// Unit tests for sim::EngineRun — the resumable, copyable run-state
// object behind Engine::run. The contract under test is bit-identity:
// pausing at barriers, appending at barriers, and checkpoint-copying must
// all reproduce the uninterrupted batch run to the last bit, under all
// three communication models on randomized schedules.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <vector>

#include "sim/comm_model.hpp"
#include "sim/engine.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace nldl::sim {
namespace {

using platform::Platform;

constexpr double kInf = std::numeric_limits<double>::infinity();

void expect_spans_identical(const std::vector<ChunkSpan>& a,
                            const std::vector<ChunkSpan>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].worker, b[i].worker) << "span " << i;
    EXPECT_EQ(a[i].size, b[i].size) << "span " << i;
    EXPECT_EQ(a[i].comm_start, b[i].comm_start) << "span " << i;
    EXPECT_EQ(a[i].comm_end, b[i].comm_end) << "span " << i;
    EXPECT_EQ(a[i].compute_start, b[i].compute_start) << "span " << i;
    EXPECT_EQ(a[i].compute_end, b[i].compute_end) << "span " << i;
    EXPECT_EQ(a[i].cancelled, b[i].cancelled) << "span " << i;
  }
}

void expect_results_identical(const SimResult& a, const SimResult& b) {
  expect_spans_identical(a.spans, b.spans);
  EXPECT_EQ(a.makespan, b.makespan);
  ASSERT_EQ(a.worker_finish.size(), b.worker_finish.size());
  for (std::size_t w = 0; w < a.worker_finish.size(); ++w) {
    EXPECT_EQ(a.worker_finish[w], b.worker_finish[w]) << "worker " << w;
    EXPECT_EQ(a.worker_compute_time[w], b.worker_compute_time[w])
        << "worker " << w;
    EXPECT_EQ(a.worker_comm_time[w], b.worker_comm_time[w])
        << "worker " << w;
  }
}

/// A random multi-round schedule with non-decreasing release times and
/// mixed per-chunk alphas — the dispatch-order shape SharedMasterPeriod
/// produces, which is also what append() requires (releases >= clock).
std::vector<ChunkAssignment> random_schedule(util::Rng& rng, std::size_t p,
                                             std::size_t chunks) {
  std::vector<ChunkAssignment> schedule;
  schedule.reserve(chunks);
  double release = 0.0;
  for (std::size_t i = 0; i < chunks; ++i) {
    if (rng.uniform() < 0.4) release += rng.uniform(0.0, 3.0);
    ChunkAssignment chunk;
    chunk.worker = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(p) - 1));
    chunk.size = rng.uniform(0.2, 4.0);
    chunk.release = release;
    chunk.alpha = rng.uniform() < 0.5 ? 1.0 : rng.uniform(1.0, 2.0);
    schedule.push_back(chunk);
  }
  return schedule;
}

std::vector<std::unique_ptr<CommModel>> all_models() {
  std::vector<std::unique_ptr<CommModel>> models;
  models.push_back(std::make_unique<ParallelLinksModel>());
  models.push_back(std::make_unique<OnePortModel>());
  models.push_back(std::make_unique<BoundedMultiportModel>(1.5, 2));
  return models;
}

TEST(EngineRun, DrainMatchesBatchRun) {
  const Platform plat = Platform::two_class(6, 2.0, 2);
  const Engine engine(plat, {1.3});
  util::Rng rng(2024);
  for (const auto& model : all_models()) {
    const auto schedule = random_schedule(rng, plat.size(), 40);
    const SimResult batch = engine.run(schedule, *model);

    EngineRun run(engine, *model);
    for (const ChunkAssignment& chunk : schedule) (void)run.append(chunk);
    run.drain();
    EXPECT_TRUE(run.drained());
    EXPECT_EQ(run.makespan(), batch.makespan);
    expect_results_identical(run.take_result(), batch);
  }
}

TEST(EngineRun, StagedAdvanceIsBitIdenticalToSingleDrain) {
  const Platform plat = Platform::two_class(6, 3.0, 2);
  const Engine engine(plat, {1.5});
  util::Rng rng(77);
  for (const auto& model : all_models()) {
    for (int rep = 0; rep < 10; ++rep) {
      const auto schedule = random_schedule(rng, plat.size(), 30);
      const SimResult batch = engine.run(schedule, *model);

      // Advance through a ladder of random barriers (some between
      // events, some past the makespan) before the final drain.
      EngineRun run(engine, *model);
      for (const ChunkAssignment& chunk : schedule) (void)run.append(chunk);
      double barrier = 0.0;
      for (int step = 0; step < 7; ++step) {
        barrier += rng.uniform(0.0, batch.makespan / 4.0);
        run.advance_to(barrier);
        EXPECT_GE(run.clock(), std::min(barrier, run.clock()));
      }
      run.drain();
      expect_results_identical(run.take_result(), batch);
    }
  }
}

TEST(EngineRun, AppendAtBarrierMatchesUpFrontSchedule) {
  const Platform plat = Platform::two_class(6, 2.5, 2);
  const Engine engine(plat, {1.2});
  util::Rng rng(4242);
  for (const auto& model : all_models()) {
    for (int rep = 0; rep < 10; ++rep) {
      const auto schedule = random_schedule(rng, plat.size(), 32);
      const SimResult batch = engine.run(schedule, *model);

      // Feed the same schedule incrementally: advance to each release
      // barrier, then append the chunks released there — the
      // SharedMasterPeriod dispatch pattern.
      EngineRun run(engine, *model);
      std::size_t i = 0;
      while (i < schedule.size()) {
        const double barrier = schedule[i].release;
        run.advance_to(barrier);
        while (i < schedule.size() && schedule[i].release == barrier) {
          (void)run.append(schedule[i]);
          ++i;
        }
      }
      run.drain();
      expect_results_identical(run.take_result(), batch);
    }
  }
}

TEST(EngineRun, CheckpointCopyResumesBitIdentically) {
  const Platform plat = Platform::two_class(4, 2.0, 1);
  const Engine engine(plat, {1.4});
  util::Rng rng(99);
  for (const auto& model : all_models()) {
    const auto schedule = random_schedule(rng, plat.size(), 24);
    const SimResult batch = engine.run(schedule, *model);

    EngineRun persistent(engine, *model);
    for (const ChunkAssignment& chunk : schedule) {
      (void)persistent.append(chunk);
    }
    persistent.advance_to(batch.makespan / 3.0);

    // Drain a checkpoint copy; the persistent run must be unaffected and
    // both trajectories must equal the batch run.
    EngineRun scratch = persistent;
    scratch.drain();
    expect_results_identical(scratch.take_result(), batch);

    persistent.drain();
    expect_results_identical(persistent.take_result(), batch);
  }
}

TEST(EngineRun, CompletionHookSeesEveryChunkOnce) {
  const Platform plat = Platform::homogeneous(3, 1.0, 1.0);
  const Engine engine(plat);
  const ParallelLinksModel model;
  util::Rng rng(7);
  const auto schedule = random_schedule(rng, plat.size(), 20);

  std::vector<int> seen(schedule.size(), 0);
  double last_comm_end = 0.0;
  bool ordered = true;
  const auto hook = [&](std::size_t chunk, const ChunkSpan& span) {
    ++seen[chunk];
    if (span.comm_end < last_comm_end) ordered = false;
    last_comm_end = span.comm_end;
  };
  EngineRun run(engine, model);
  for (const ChunkAssignment& chunk : schedule) (void)run.append(chunk);
  run.drain(ChunkCompletionRef(hook));
  for (const int count : seen) EXPECT_EQ(count, 1);
  EXPECT_TRUE(ordered) << "hook must fire in event order";
}

TEST(EngineRun, AdvancePastBarrierIsNoOpAndClockAdvances) {
  const Platform plat = Platform::homogeneous(2, 1.0, 1.0);
  const Engine engine(plat);
  const ParallelLinksModel model;
  EngineRun run(engine, model);
  run.advance_to(5.0);
  EXPECT_EQ(run.clock(), 5.0);  // empty run: the clock still advances
  run.advance_to(2.0);          // a barrier in the past is a no-op
  EXPECT_EQ(run.clock(), 5.0);
  // Appends before the clock are rejected; at the clock they are legal.
  EXPECT_THROW((void)run.append({0, 1.0, 4.0}), util::PreconditionError);
  (void)run.append({0, 1.0, 5.0});
  run.drain();
  EXPECT_TRUE(run.drained());
  EXPECT_EQ(run.makespan(), 7.0);  // 5 (release) + 1 (comm) + 1 (compute)
}

TEST(EngineRun, EventsCountMonotoneAndResetKeepsTally) {
  const Platform plat = Platform::homogeneous(2, 1.0, 1.0);
  const Engine engine(plat);
  const ParallelLinksModel model;
  EngineRun run(engine, model);
  (void)run.append({0, 1.0});
  (void)run.append({1, 2.0});
  run.drain();
  const std::uint64_t after_first = run.events();
  EXPECT_GT(after_first, 0U);
  run.reset();
  EXPECT_EQ(run.clock(), 0.0);
  EXPECT_EQ(run.chunks(), 0U);
  EXPECT_EQ(run.events(), after_first);  // lifetime telemetry survives
  (void)run.append({0, 1.0});
  run.drain();
  EXPECT_GT(run.events(), after_first);
}

TEST(EngineRun, ResetAndShrinkReuseProducesIdenticalResults) {
  const Platform plat = Platform::two_class(4, 2.0, 1);
  const Engine engine(plat, {1.3});
  const BoundedMultiportModel model(2.0, 3);
  util::Rng rng(1234);
  const auto schedule = random_schedule(rng, plat.size(), 25);
  const SimResult batch = engine.run(schedule, model);

  EngineRun run(engine, model);
  for (int pass = 0; pass < 3; ++pass) {
    run.reset();
    if (pass == 2) run.shrink();
    for (const ChunkAssignment& chunk : schedule) (void)run.append(chunk);
    run.drain();
    expect_results_identical(run.take_result(), batch);
  }
}

TEST(EngineRun, CompactMidRunIsBitIdentical) {
  // compact() drops finalized chunks and renumbers the rest; the event
  // trajectory (collected through completion hooks and mapped back to
  // original schedule positions) must match the uninterrupted run
  // exactly, under every model, at random compaction points.
  constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();
  const Platform plat = Platform::two_class(6, 2.0, 1);
  const Engine engine(plat, {1.4});

  for (const auto& model : all_models()) {
    util::Rng rng(4242);
    const auto schedule = random_schedule(rng, plat.size(), 40);
    const SimResult batch = engine.run(schedule, *model);

    EngineRun run(engine, *model);
    // mine[engine chunk idx] -> original schedule position, maintained
    // across renumberings.
    std::vector<std::size_t> mine;
    for (std::size_t i = 0; i < schedule.size(); ++i) {
      (void)run.append(schedule[i]);
      mine.push_back(i);
    }
    std::vector<ChunkSpan> spans(schedule.size());
    const auto record = [&](std::size_t chunk, const ChunkSpan& span) {
      spans[mine[chunk]] = span;
    };

    std::vector<std::size_t> remap;
    double barrier = 0.0;
    std::size_t total_dropped = 0;
    while (!run.drained()) {
      barrier += rng.uniform(0.5, 4.0);
      run.advance_to(barrier, ChunkCompletionRef(record));
      total_dropped += run.compact(remap);
      std::vector<std::size_t> next_mine(run.chunks());
      for (std::size_t old = 0; old < remap.size(); ++old) {
        if (remap[old] != kNone) next_mine[remap[old]] = mine[old];
      }
      mine = std::move(next_mine);
    }
    run.drain(ChunkCompletionRef(record));
    EXPECT_GT(total_dropped, 0U);
    EXPECT_EQ(run.chunks(), 0U);  // everything finalized, then dropped
    expect_spans_identical(spans, batch.spans);
    EXPECT_EQ(run.makespan(), batch.makespan);
  }
}

TEST(EngineRun, ValidatesAppendedChunks) {
  const Platform plat = Platform::homogeneous(2, 1.0, 1.0);
  const Engine engine(plat);
  const ParallelLinksModel model;
  EngineRun run(engine, model);
  EXPECT_THROW((void)run.append({5, 1.0}), util::PreconditionError);
  EXPECT_THROW((void)run.append({0, -1.0}), util::PreconditionError);
  EXPECT_THROW((void)run.append({0, 1.0, kInf}), util::PreconditionError);
  EXPECT_THROW((void)run.append({0, 1.0, 0.0, 0.5}),
               util::PreconditionError);
  (void)run.append({0, 1.0});  // pending chunk: the run is not drained
  EXPECT_THROW((void)run.take_result(), util::PreconditionError);
  run.drain();
  EXPECT_NO_THROW((void)run.take_result());
}

TEST(RunUntil, PauseAndResumeCoversFullSchedule) {
  // run_until rides the same single-walk machinery; pin its semantics:
  // completed spans match the uninterrupted run, remaining chunks come
  // back at full size, and stop_after >= makespan completes everything.
  const Platform plat = Platform::two_class(4, 2.0, 1);
  const Engine engine(plat, {1.5});
  const OnePortModel model;
  util::Rng rng(31);
  const auto schedule = random_schedule(rng, plat.size(), 20);
  const SimResult full = engine.run(schedule, model);

  const PartialRun done = engine.run_until(schedule, model, full.makespan);
  EXPECT_TRUE(done.remaining.empty());
  EXPECT_EQ(done.pause_time, full.makespan);
  expect_results_identical(done.result, full);

  const double stop = full.makespan * 0.4;
  const PartialRun part = engine.run_until(schedule, model, stop);
  EXPECT_GE(part.pause_time, stop);
  double completed = 0.0;
  std::size_t cancelled = 0;
  for (std::size_t i = 0; i < schedule.size(); ++i) {
    const ChunkSpan& span = part.result.spans[i];
    if (span.cancelled) {
      ++cancelled;
      EXPECT_EQ(span.size, schedule[i].size);
      EXPECT_EQ(span.compute_end, 0.0);
    } else {
      expect_spans_identical({span}, {full.spans[i]});
      EXPECT_LE(span.compute_end, part.pause_time);
      completed += span.size;
    }
  }
  EXPECT_EQ(part.remaining.size(), cancelled);
  EXPECT_EQ(part.completed_load, completed);
  EXPECT_GT(cancelled, 0U);
}

}  // namespace
}  // namespace nldl::sim
