// Tests for the bounded-multiport (water-filling) communication model.
#include "sim/bounded_multiport.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "dlt/linear_dlt.hpp"
#include "platform/speed_distributions.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace nldl::sim {
namespace {

using platform::Platform;

constexpr double kInf = std::numeric_limits<double>::infinity();

TEST(BoundedMultiport, InfiniteCapacityIsParallelLinks) {
  const Platform plat = Platform::from_speeds({1.0, 2.0}, 0.5);
  const std::vector<double> amounts{10.0, 20.0};
  const auto result =
      simulate_bounded_multiport(plat, amounts, kInf);
  // Each transfer runs at its private bandwidth 1/c = 2.
  EXPECT_NEAR(result.comm_finish[0], 10.0 * 0.5, 1e-9);
  EXPECT_NEAR(result.comm_finish[1], 20.0 * 0.5, 1e-9);
}

TEST(BoundedMultiport, TinyCapacitySharesFairly) {
  // Two equal transfers, master capacity 1, private caps 10 each:
  // both run at 0.5 and finish together at amount/0.5.
  const Platform plat = Platform::homogeneous(2, 0.1, 1.0);
  const auto result =
      simulate_bounded_multiport(plat, {5.0, 5.0}, 1.0);
  EXPECT_NEAR(result.comm_finish[0], 10.0, 1e-9);
  EXPECT_NEAR(result.comm_finish[1], 10.0, 1e-9);
}

TEST(BoundedMultiport, UnequalAmountsReleaseCapacity) {
  // Transfers of 2 and 6 units, capacity 2, private caps 10:
  // phase 1: both at rate 1 until t=2 (first done);
  // phase 2: second alone at min(10, 2) = 2, remaining 4 units -> t=4.
  const Platform plat = Platform::homogeneous(2, 0.1, 1.0);
  const auto result =
      simulate_bounded_multiport(plat, {2.0, 6.0}, 2.0);
  EXPECT_NEAR(result.comm_finish[0], 2.0, 1e-9);
  EXPECT_NEAR(result.comm_finish[1], 4.0, 1e-9);
}

TEST(BoundedMultiport, PrivateCapBindsBeforeShare) {
  // Worker 0 has a slow link (cap 0.5), worker 1 fast (cap 10);
  // capacity 4: worker 0 gets 0.5, worker 1 gets 3.5.
  std::vector<platform::Processor> workers{{2.0, 1.0}, {0.1, 1.0}};
  const Platform plat{std::move(workers)};
  const auto result =
      simulate_bounded_multiport(plat, {1.0, 7.0}, 4.0);
  EXPECT_NEAR(result.comm_finish[0], 2.0, 1e-9);   // 1 / 0.5
  EXPECT_NEAR(result.comm_finish[1], 2.0, 1e-9);   // 7 / 3.5
}

TEST(BoundedMultiport, ComputeFollowsComm) {
  const Platform plat = Platform::homogeneous(1, 1.0, 2.0);
  const auto result =
      simulate_bounded_multiport(plat, {3.0}, kInf, 2.0);
  EXPECT_NEAR(result.comm_finish[0], 3.0, 1e-9);
  EXPECT_NEAR(result.compute_finish[0], 3.0 + 2.0 * 9.0, 1e-9);
  EXPECT_NEAR(result.makespan, 21.0, 1e-9);
}

TEST(BoundedMultiport, ZeroAmountsAreFree) {
  const Platform plat = Platform::homogeneous(3);
  const auto result =
      simulate_bounded_multiport(plat, {0.0, 5.0, 0.0}, 1.0);
  EXPECT_DOUBLE_EQ(result.comm_finish[0], 0.0);
  EXPECT_DOUBLE_EQ(result.comm_finish[2], 0.0);
  EXPECT_NEAR(result.comm_finish[1], 5.0, 1e-9);
}

TEST(BoundedMultiport, MakespanMonotoneInCapacity) {
  util::Rng rng(3);
  const auto plat = platform::make_platform(
      platform::SpeedModel::kUniform, 6, rng);
  const auto alloc = dlt::linear_parallel_single_round(plat, 100.0);
  double previous = kInf;
  for (const double capacity : {0.5, 1.0, 2.0, 8.0, 64.0}) {
    const auto result = simulate_bounded_multiport(
        plat, alloc.amounts, capacity);
    EXPECT_LE(result.makespan, previous + 1e-9)
        << "capacity " << capacity;
    previous = result.makespan;
  }
  // Large capacity converges to the parallel-links optimum.
  const auto unconstrained =
      simulate_bounded_multiport(plat, alloc.amounts, kInf);
  EXPECT_NEAR(previous, unconstrained.makespan,
              1e-6 * unconstrained.makespan);
}

TEST(BoundedMultiport, AggregateThroughputRespectsCapacity) {
  // Total data / comm time >= ... <= capacity when capacity binds.
  const Platform plat = Platform::homogeneous(4, 0.01, 1.0);
  const std::vector<double> amounts{10.0, 10.0, 10.0, 10.0};
  const double capacity = 2.0;
  const auto result =
      simulate_bounded_multiport(plat, amounts, capacity);
  double last_finish = 0.0;
  for (const double t : result.comm_finish) {
    last_finish = std::max(last_finish, t);
  }
  EXPECT_GE(last_finish, 40.0 / capacity - 1e-9);
}

TEST(BoundedMultiport, RejectsBadInput) {
  const Platform plat = Platform::homogeneous(2);
  EXPECT_THROW(
      (void)simulate_bounded_multiport(plat, {1.0}, 1.0),
      util::PreconditionError);
  EXPECT_THROW(
      (void)simulate_bounded_multiport(plat, {1.0, 1.0}, 0.0),
      util::PreconditionError);
  EXPECT_THROW(
      (void)simulate_bounded_multiport(plat, {1.0, -1.0}, 1.0),
      util::PreconditionError);
  EXPECT_THROW(
      (void)simulate_bounded_multiport(plat, {1.0, 1.0}, 1.0, 0.5),
      util::PreconditionError);
}

}  // namespace
}  // namespace nldl::sim
