// Tests for multi-round (multi-installment) DLT scheduling.
#include "dlt/multi_round.hpp"

#include <gtest/gtest.h>

#include "dlt/linear_dlt.hpp"
#include "platform/speed_distributions.hpp"
#include "sim/simulator.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace nldl::dlt {
namespace {

using platform::Platform;

TEST(MultiRound, OneRoundMatchesSingleInstallment) {
  const Platform plat = Platform::from_speeds({1.0, 2.0, 4.0}, 0.5);
  const auto plan = uniform_multi_round(plat, 60.0, 1);
  const auto single = linear_one_port_single_round(plat, 60.0);
  EXPECT_NEAR(plan.simulated_makespan, single.makespan, 1e-9);
}

TEST(MultiRound, TotalLoadPreserved) {
  const Platform plat = Platform::from_speeds({1.0, 3.0}, 1.0);
  for (const std::size_t rounds : {1UL, 2UL, 5UL, 16UL}) {
    const auto plan = uniform_multi_round(plat, 42.0, rounds);
    double total = 0.0;
    for (const auto& chunk : plan.schedule) total += chunk.size;
    EXPECT_NEAR(total, 42.0, 1e-9) << rounds << " rounds";
  }
}

TEST(MultiRound, GeometricTotalsMatchToo) {
  const Platform plat = Platform::from_speeds({2.0, 5.0}, 0.8);
  for (const double ratio : {0.5, 1.0, 2.0}) {
    const auto plan = geometric_multi_round(plat, 30.0, 6, ratio);
    double total = 0.0;
    for (const auto& chunk : plan.schedule) total += chunk.size;
    EXPECT_NEAR(total, 30.0, 1e-9) << "ratio " << ratio;
  }
}

TEST(MultiRound, PipeliningNeverHurtsOnePort) {
  // More rounds overlap communication with computation; the simulated
  // makespan must not increase (linear loads, no latency in the model).
  const Platform plat = Platform::homogeneous(6, 1.0, 2.0);
  const double single = uniform_multi_round(plat, 120.0, 1)
                            .simulated_makespan;
  const double multi = uniform_multi_round(plat, 120.0, 8)
                           .simulated_makespan;
  EXPECT_LE(multi, single + 1e-9);
}

TEST(MultiRound, BestPlanBeatsOrMatchesEveryCandidate) {
  util::Rng rng(13);
  for (int rep = 0; rep < 5; ++rep) {
    const auto plat = platform::make_platform(
        platform::SpeedModel::kUniform, 5, rng);
    const auto best = best_multi_round(plat, 77.0, 8);
    for (const std::size_t rounds : {1UL, 2UL, 4UL, 8UL}) {
      EXPECT_LE(best.simulated_makespan,
                uniform_multi_round(plat, 77.0, rounds).simulated_makespan +
                    1e-9);
    }
    // And reports a makespan consistent with its own schedule.
    sim::SimOptions options;
    options.comm_model = sim::CommModel::kOnePort;
    EXPECT_NEAR(best.simulated_makespan,
                sim::simulate(plat, best.schedule, options).makespan,
                1e-9);
  }
}

TEST(MultiRound, CommBoundMakespanImprovesALot) {
  // Communication-heavy platform: single-round forces each worker to wait
  // for its whole chunk; pipelining hides most of it.
  const Platform plat = Platform::homogeneous(4, 2.0, 1.0);
  const double single = uniform_multi_round(plat, 100.0, 1)
                            .simulated_makespan;
  const auto best = best_multi_round(plat, 100.0, 16);
  EXPECT_LT(best.simulated_makespan, single);
  EXPECT_GT(best.rounds, 1U);
}

TEST(MultiRound, RejectsBadArguments) {
  const Platform plat = Platform::homogeneous(2);
  EXPECT_THROW((void)uniform_multi_round(plat, 1.0, 0),
               util::PreconditionError);
  EXPECT_THROW((void)geometric_multi_round(plat, 1.0, 2, 0.0),
               util::PreconditionError);
  EXPECT_THROW((void)best_multi_round(plat, 1.0, 0),
               util::PreconditionError);
}

}  // namespace
}  // namespace nldl::dlt
