// Shared-master contention: the equivalence suite of ISSUE 5.
//
// Pins the degenerate limits that make the shared-master modes trustworthy:
//
//   - engine level: chunks with non-overlapping release windows replay
//     exactly like separate sequential runs (releases that never overlap
//     cannot contend), and releases under a shared capacity only ever
//     slow transfers down (contention is monotone);
//   - online level: a single job under MasterMode::kSharedMaster is
//     bit-identical to the private-port run, two jobs with disjoint busy
//     periods match the private-port run bit for bit, and overlapping
//     fair-share jobs under a capped master finish no earlier than under
//     private ports — strictly later when the cap binds;
//   - qos level: concurrency > 1 serves installments of different jobs on
//     disjoint subsets concurrently with deterministic, internally
//     consistent accounting (tests/test_qos.cpp keeps the serial-path
//     pins; the concurrent loop is exercised here).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <initializer_list>
#include <limits>
#include <vector>

#include "online/metrics.hpp"
#include "online/scheduler.hpp"
#include "online/server.hpp"
#include "platform/platform.hpp"
#include "qos/policy.hpp"
#include "qos/server.hpp"
#include "sim/engine.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace nldl {
namespace {

using online::Job;
using online::JobStats;
using online::MasterMode;
using platform::Platform;

constexpr double kInf = std::numeric_limits<double>::infinity();

// --- engine: non-overlapping release windows ------------------------------

TEST(SharedMasterEngine, DisjointReleaseWindowsMatchSequentialRuns) {
  // Job A's chunks release at 0, job B's at a window past A's makespan:
  // the combined multiplexed run must equal the two runs replayed
  // separately (same releases), span for span, under every model.
  const Platform plat = Platform::from_speeds({1.0, 2.0, 3.0}, 0.7);
  const sim::Engine engine(plat);
  const std::vector<sim::ChunkAssignment> job_a{
      {0, 3.0, 0.0, 1.0}, {1, 5.0, 0.0, 1.0}, {2, 2.0, 0.0, 1.0}};
  const sim::SimResult alone_a =
      engine.run(job_a, sim::CommModelKind::kParallelLinks);
  const double window = alone_a.makespan + 10.0;
  std::vector<sim::ChunkAssignment> job_b{
      {1, 4.0, window, 2.0}, {0, 1.5, window, 2.0}};

  std::vector<sim::ChunkAssignment> combined = job_a;
  combined.insert(combined.end(), job_b.begin(), job_b.end());

  const sim::BoundedMultiportModel bounded(1.5);
  const sim::ParallelLinksModel links;
  const sim::OnePortModel port;
  for (const sim::CommModel* model : {static_cast<const sim::CommModel*>(
                                          &links),
                                      static_cast<const sim::CommModel*>(
                                          &port),
                                      static_cast<const sim::CommModel*>(
                                          &bounded)}) {
    const sim::SimResult both = engine.run(combined, *model);
    const sim::SimResult only_a = engine.run(job_a, *model);
    const sim::SimResult only_b = engine.run(job_b, *model);
    for (std::size_t i = 0; i < job_a.size(); ++i) {
      EXPECT_EQ(both.spans[i].comm_start, only_a.spans[i].comm_start);
      EXPECT_EQ(both.spans[i].comm_end, only_a.spans[i].comm_end);
      EXPECT_EQ(both.spans[i].compute_end, only_a.spans[i].compute_end);
    }
    for (std::size_t i = 0; i < job_b.size(); ++i) {
      const sim::ChunkSpan& span = both.spans[job_a.size() + i];
      EXPECT_EQ(span.comm_start, only_b.spans[i].comm_start);
      EXPECT_EQ(span.comm_end, only_b.spans[i].comm_end);
      EXPECT_EQ(span.compute_end, only_b.spans[i].compute_end);
    }
    EXPECT_EQ(both.makespan, only_b.makespan);
  }
}

TEST(SharedMasterEngine, OverlappingReleasesOnlyEverSlowTransfersDown) {
  // Randomized: adding a second time-released job to a capped master
  // never finishes the first job's chunks earlier (water-filling is
  // monotone in the competing set).
  util::Rng rng(555);
  for (int rep = 0; rep < 30; ++rep) {
    const std::size_t p = static_cast<std::size_t>(rng.uniform_int(2, 6));
    std::vector<double> speeds;
    for (std::size_t i = 0; i < p; ++i) {
      speeds.push_back(rng.uniform(0.5, 3.0));
    }
    const Platform plat = Platform::from_speeds(speeds, rng.uniform(0.3, 2.0));
    const sim::Engine engine(plat);

    std::vector<sim::ChunkAssignment> first;
    const std::size_t chunks =
        static_cast<std::size_t>(rng.uniform_int(1, 6));
    for (std::size_t k = 0; k < chunks; ++k) {
      first.push_back({static_cast<std::size_t>(rng.uniform_int(
                           0, static_cast<std::int64_t>(p) - 1)),
                       rng.uniform(0.5, 8.0)});
    }
    std::vector<sim::ChunkAssignment> both = first;
    const std::size_t extra = static_cast<std::size_t>(rng.uniform_int(1, 4));
    for (std::size_t k = 0; k < extra; ++k) {
      both.push_back({static_cast<std::size_t>(rng.uniform_int(
                          0, static_cast<std::int64_t>(p) - 1)),
                      rng.uniform(0.5, 8.0), rng.uniform(0.0, 5.0)});
    }
    const sim::BoundedMultiportModel model(rng.uniform(0.5, 3.0));
    const sim::SimResult base = engine.run(first, model);
    const sim::SimResult loaded = engine.run(both, model);
    for (std::size_t i = 0; i < first.size(); ++i) {
      EXPECT_GE(loaded.spans[i].comm_end,
                base.spans[i].comm_end - 1e-9)
          << "rep " << rep << " chunk " << i;
    }
  }
}

// --- online server: shared vs private -------------------------------------

void expect_identical_stats(const std::vector<JobStats>& a,
                            const std::vector<JobStats>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].dispatch, b[i].dispatch) << "job " << i;
    EXPECT_EQ(a[i].finish, b[i].finish) << "job " << i;
    EXPECT_EQ(a[i].slot, b[i].slot) << "job " << i;
    EXPECT_EQ(a[i].workers, b[i].workers) << "job " << i;
    EXPECT_EQ(a[i].compute_time, b[i].compute_time) << "job " << i;
    EXPECT_EQ(a[i].isolated_makespan, b[i].isolated_makespan) << "job " << i;
  }
}

std::vector<Job> poisson_stream(double rate, double horizon,
                                std::uint64_t seed) {
  online::JobMix mix;
  mix.load_lo = 40.0;
  mix.load_hi = 120.0;
  mix.alphas = {1.0, 2.0};
  mix.alpha_weights = {0.5, 0.5};
  util::Rng rng(seed);
  return online::PoissonArrivals(rate, mix).generate(horizon, rng);
}

TEST(SharedMasterOnline, SingleJobIsBitIdenticalToPrivatePort) {
  const Platform plat = Platform::two_class(8, 1.0, 3.0);
  const std::vector<Job> jobs{{0, 2.5, 80.0, 2.0}};
  for (const sim::CommModelKind comm :
       {sim::CommModelKind::kParallelLinks, sim::CommModelKind::kOnePort,
        sim::CommModelKind::kBoundedMultiport}) {
    online::ServerOptions priv;
    priv.comm = comm;
    if (comm == sim::CommModelKind::kBoundedMultiport) priv.capacity = 2.0;
    online::ServerOptions shared = priv;
    shared.master = MasterMode::kSharedMaster;

    const online::FcfsScheduler fcfs;
    const auto a = online::Server(plat, priv).run(jobs, fcfs);
    const auto b = online::Server(plat, shared).run(jobs, fcfs);
    expect_identical_stats(a, b);
  }
}

TEST(SharedMasterOnline, DisjointBusyPeriodsMatchPrivatePortBitForBit) {
  // Two jobs arriving far apart never overlap: every busy period holds
  // one job, so the shared-master run must reproduce the private-port
  // run exactly — including under fair share's carved slots.
  const Platform plat = Platform::two_class(8, 1.0, 3.0);
  const std::vector<Job> jobs{{0, 0.0, 100.0, 2.0},
                              {1, 1e6, 60.0, 1.0}};
  online::ServerOptions priv;
  priv.comm = sim::CommModelKind::kBoundedMultiport;
  priv.capacity = 1.5;
  online::ServerOptions shared = priv;
  shared.master = MasterMode::kSharedMaster;

  const online::FairShareScheduler fair(4);
  const auto a = online::Server(plat, priv).run(jobs, fair);
  const auto b = online::Server(plat, shared).run(jobs, fair);
  expect_identical_stats(a, b);
}

TEST(SharedMasterOnline, ExclusiveSchedulersNeverDivergeUnderSharing) {
  // One slot = one job in flight at a time = single-job busy periods:
  // FCFS and SPMF are unchanged by the master mode on a whole stream.
  const Platform plat = Platform::two_class(6, 1.0, 4.0);
  const auto jobs = poisson_stream(0.01, 2000.0, 99);
  ASSERT_GE(jobs.size(), 3u);
  online::ServerOptions priv;
  priv.comm = sim::CommModelKind::kBoundedMultiport;
  priv.capacity = 2.0;
  online::ServerOptions shared = priv;
  shared.master = MasterMode::kSharedMaster;

  const online::FcfsScheduler fcfs;
  expect_identical_stats(online::Server(plat, priv).run(jobs, fcfs),
                         online::Server(plat, shared).run(jobs, fcfs));
  const online::SpmfScheduler spmf(priv.comm);
  const online::SpmfScheduler spmf2(priv.comm);
  expect_identical_stats(online::Server(plat, priv).run(jobs, spmf),
                         online::Server(plat, shared).run(jobs, spmf2));
}

TEST(SharedMasterOnline, ContentionOnlyEverDelaysFairShareJobs) {
  // Overlapping fair-share jobs under a binding master cap: every job
  // finishes no earlier than under private ports, and the capped stream
  // strictly later in aggregate (the free lunch private ports were
  // serving is gone).
  const Platform plat = Platform::two_class(8, 1.0, 3.0);
  const std::vector<Job> jobs{{0, 0.0, 90.0, 2.0},
                              {1, 0.0, 70.0, 2.0},
                              {2, 0.0, 80.0, 2.0},
                              {3, 0.0, 60.0, 2.0}};
  online::ServerOptions priv;
  priv.comm = sim::CommModelKind::kBoundedMultiport;
  priv.capacity = 1.0;  // binding: four slots want 4x a link's rate
  online::ServerOptions shared = priv;
  shared.master = MasterMode::kSharedMaster;

  const online::FairShareScheduler fair(4);
  const auto a = online::Server(plat, priv).run(jobs, fair);
  const auto b = online::Server(plat, shared).run(jobs, fair);
  double total_private = 0.0;
  double total_shared = 0.0;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_GE(b[i].finish, a[i].finish - 1e-9) << "job " << i;
    total_private += a[i].finish;
    total_shared += b[i].finish;
  }
  EXPECT_GT(total_shared, total_private + 1e-6);
}

TEST(SharedMasterOnline, SharedRunsAreDeterministicOnReplay) {
  const Platform plat = Platform::two_class(8, 1.0, 3.0);
  const auto jobs = poisson_stream(0.08, 800.0, 1234);
  ASSERT_GE(jobs.size(), 10u);
  online::ServerOptions options;
  options.comm = sim::CommModelKind::kBoundedMultiport;
  options.capacity = 2.0;
  options.master = MasterMode::kSharedMaster;
  const online::Server server(plat, options);
  const online::FairShareScheduler fair(4);
  const auto a = server.run(jobs, fair);
  const auto b = server.run(jobs, fair);
  expect_identical_stats(a, b);
  // And the stream summarizes to finite metrics.
  const auto metrics = online::summarize(a, plat.size());
  EXPECT_TRUE(std::isfinite(metrics.mean_latency));
  EXPECT_TRUE(std::isfinite(metrics.p99_latency));
  EXPECT_GT(metrics.utilization, 0.0);
}

TEST(SharedMasterOnline, MasterModeNames) {
  EXPECT_EQ(online::to_string(MasterMode::kPrivatePort), "private-port");
  EXPECT_EQ(online::to_string(MasterMode::kSharedMaster), "shared-master");
}

// --- qos server: k concurrent installments on disjoint subsets ------------

std::vector<Job> qos_stream(std::initializer_list<Job> jobs) {
  return std::vector<Job>(jobs);
}

qos::ServerOptions qos_options(std::size_t concurrency, std::size_t rounds,
                               double restart_fraction,
                               double capacity = kInf) {
  qos::ServerOptions options;
  options.service.comm = capacity < kInf
                             ? sim::CommModelKind::kBoundedMultiport
                             : sim::CommModelKind::kParallelLinks;
  options.service.capacity = capacity;
  options.service.plan.rounds = rounds;
  options.service.plan.restart_load_fraction = restart_fraction;
  options.admission.mode = qos::AdmissionMode::kAdmitAll;
  options.concurrency = concurrency;
  return options;
}

TEST(SharedMasterQos, ConcurrentInstallmentsOverlapDifferentJobs) {
  // Two jobs arriving together, two subsets: both dispatch at t = 0 and
  // overlap in service — the serial server could never start the second
  // before the first's installment ended.
  const Platform plat = Platform::homogeneous(4, 0.5, 1.0);
  const auto jobs = qos_stream({{0, 0.0, 40.0, 1.0}, {1, 0.0, 40.0, 1.0}});
  const qos::Server server(plat, qos_options(2, 2, 0.0));
  qos::FcfsPolicy fcfs;
  const auto records = server.run(jobs, fcfs);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_DOUBLE_EQ(records[0].dispatch, 0.0);
  EXPECT_DOUBLE_EQ(records[1].dispatch, 0.0);
  for (const qos::JobRecord& record : records) {
    EXPECT_TRUE(record.admitted);
    EXPECT_GT(record.finish, 0.0);
    EXPECT_GT(record.service_time, 0.0);
    EXPECT_GT(record.compute_time, 0.0);
  }
  // Each job ran on half the platform; with free links both finish at
  // the same instant (homogeneous symmetric subsets).
  EXPECT_DOUBLE_EQ(records[0].finish, records[1].finish);

  // The serial server can only start job 1 after job 0's installments
  // yield the whole platform; the concurrent server starts it at once.
  // (With linear jobs the FINISH times tie exactly — half the platform
  // for twice as long is the linear identity; the paper's point is that
  // alpha > 1 breaks it, which SharedMasterQos contention tests and
  // bench_contention quantify.)
  const qos::Server serial(plat, qos_options(1, 2, 0.0));
  qos::FcfsPolicy fcfs2;
  const auto serial_records = serial.run(jobs, fcfs2);
  EXPECT_DOUBLE_EQ(records[1].wait(), 0.0);
  EXPECT_GT(serial_records[1].wait(), 0.0);
}

TEST(SharedMasterQos, ConcurrentRunsAreDeterministicOnReplay) {
  const Platform plat = Platform::two_class(8, 1.0, 3.0);
  const auto jobs = qos_stream({{0, 0.0, 60.0, 2.0},
                                {1, 1.0, 30.0, 1.0},
                                {2, 2.0, 45.0, 2.0},
                                {3, 10.0, 25.0, 1.0},
                                {4, 11.0, 70.0, 1.0}});
  const qos::Server server(plat, qos_options(2, 3, 0.4, 2.0));
  qos::SrptPolicy srpt;
  const auto a = server.run(jobs, srpt);
  qos::SrptPolicy srpt2;
  const auto b = server.run(jobs, srpt2);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].dispatch, b[i].dispatch);
    EXPECT_EQ(a[i].finish, b[i].finish);
    EXPECT_EQ(a[i].service_time, b[i].service_time);
    EXPECT_EQ(a[i].compute_time, b[i].compute_time);
    EXPECT_EQ(a[i].preemptions, b[i].preemptions);
    EXPECT_EQ(a[i].restart_time, b[i].restart_time);
    EXPECT_GE(a[i].finish, a[i].dispatch);
  }
}

TEST(SharedMasterQos, SharedCapacityDelaysConcurrentInstallments) {
  // The same concurrent stream under a binding master cap finishes no
  // earlier than under an uncapped master, and strictly later for at
  // least one job: the subsets genuinely share the bandwidth.
  const Platform plat = Platform::homogeneous(4, 1.0, 1.0);
  const auto jobs = qos_stream({{0, 0.0, 50.0, 1.0}, {1, 0.0, 50.0, 1.0}});
  qos::FcfsPolicy fcfs;
  const qos::Server capped(plat, qos_options(2, 2, 0.0, 0.8));
  const auto tight = capped.run(jobs, fcfs);
  qos::FcfsPolicy fcfs2;
  const qos::Server uncapped(plat, qos_options(2, 2, 0.0, 1e9));
  const auto loose = uncapped.run(jobs, fcfs2);
  double sum_tight = 0.0;
  double sum_loose = 0.0;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_GE(tight[i].finish, loose[i].finish - 1e-9);
    sum_tight += tight[i].finish;
    sum_loose += loose[i].finish;
  }
  EXPECT_GT(sum_tight, sum_loose + 1e-6);
}

TEST(SharedMasterQos, GapResumePaysTheRestartSurcharge) {
  // Three jobs, two subsets, SRPT with a restart fraction: the long job
  // loses its subset to a shorter newcomer, resumes after a gap, and the
  // surcharge lands on its record.
  const Platform plat = Platform::homogeneous(2, 0.2, 1.0);
  const auto jobs = qos_stream({{0, 0.0, 60.0, 1.0},
                                {1, 0.0, 60.0, 1.0},
                                {2, 1.0, 6.0, 1.0}});
  const qos::Server server(plat, qos_options(2, 4, 0.5));
  qos::SrptPolicy srpt;
  const auto records = server.run(jobs, srpt);
  // The short job jumps a queue of two half-done long jobs; whichever
  // long job yielded resumed with a gap and was charged.
  std::size_t preempted = 0;
  double restart_time = 0.0;
  for (const qos::JobRecord& record : records) {
    preempted += record.preemptions;
    restart_time += record.restart_time;
  }
  EXPECT_GE(preempted, 1u);
  EXPECT_GT(restart_time, 0.0);
  // With free restarts the same schedule charges nothing.
  const qos::Server free_restarts(plat, qos_options(2, 4, 0.0));
  qos::SrptPolicy srpt2;
  const auto free_records = free_restarts.run(jobs, srpt2);
  for (const qos::JobRecord& record : free_records) {
    EXPECT_DOUBLE_EQ(record.restart_time, 0.0);
  }
}

TEST(SharedMasterQos, ConcurrencyClampsToThePlatform) {
  const Platform plat = Platform::homogeneous(3, 1.0, 1.0);
  const auto jobs = qos_stream({{0, 0.0, 30.0, 1.0},
                                {1, 0.0, 20.0, 1.0},
                                {2, 0.0, 10.0, 1.0},
                                {3, 0.0, 15.0, 1.0}});
  const qos::Server server(plat, qos_options(64, 2, 0.0));
  qos::FcfsPolicy fcfs;
  const auto records = server.run(jobs, fcfs);
  for (const qos::JobRecord& record : records) {
    EXPECT_TRUE(record.admitted);
    EXPECT_GT(record.finish, record.dispatch);
  }
}

TEST(SharedMasterQos, RejectsZeroConcurrency) {
  const Platform plat = Platform::homogeneous(2);
  qos::ServerOptions options;
  options.concurrency = 0;
  EXPECT_THROW((void)qos::Server(plat, options), util::PreconditionError);
}

}  // namespace
}  // namespace nldl
