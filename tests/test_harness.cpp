// Tests for the bench harness: serial-vs-parallel self-check protocol,
// timing bookkeeping, and BENCH_*.json emission.
#include "bench/harness.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>

#include "bench/profile.hpp"
#include "util/assert.hpp"
#include "util/json_parse.hpp"
#include "util/sweep.hpp"

namespace nldl::bench {
namespace {

/// RAII temp file in the test working directory.
struct TempJson {
  std::string path;
  explicit TempJson(std::string name) : path(std::move(name)) {}
  ~TempJson() { std::remove(path.c_str()); }
  [[nodiscard]] std::string read() const {
    std::ifstream in(path);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
  }
};

HarnessOptions options_with_json(const std::string& path,
                                 std::size_t threads = 3) {
  HarnessOptions options;
  options.threads = threads;
  options.json_path = path;
  return options;
}

TEST(HarnessOptions, ReadsSharedFlags) {
  const char* argv[] = {"bench", "--threads=5", "--reps=2", "--warmup=1",
                        "--json=out.json"};
  const util::Args args(5, argv);
  const HarnessOptions options = harness_options_from_args(args);
  EXPECT_EQ(options.threads, 5U);
  EXPECT_EQ(options.repetitions, 2U);
  EXPECT_EQ(options.warmup, 1U);
  EXPECT_EQ(options.json_path, "out.json");
}

TEST(IdenticalDoubles, ExactComparison) {
  EXPECT_TRUE(identical_doubles({1.0, 2.0}, {1.0, 2.0}));
  EXPECT_FALSE(identical_doubles({1.0}, {1.0, 2.0}));
  EXPECT_FALSE(identical_doubles({1.0}, {1.0 + 1e-15}));
  EXPECT_TRUE(identical_doubles({}, {}));
}

TEST(Harness, SelfCheckPassesForDeterministicSweep) {
  TempJson json("test_harness_ok.json");
  Harness harness("test_ok", options_with_json(json.path));
  harness.config("alpha", 2.0);
  harness.config("label", "unit-test");
  harness.config("count", std::size_t{3});
  harness.config("flag", true);

  const auto result = harness.run<std::vector<double>>(
      [](std::size_t threads) {
        util::Grid grid;
        grid.axis("x", {1.0, 2.0, 3.0});
        util::SweepOptions options;
        options.threads = threads;
        return util::Sweep(std::move(grid), options).map<double>(
            [](const util::SweepPoint& point, util::Rng& rng) {
              return point.value("x") + rng.uniform();
            });
      });

  EXPECT_EQ(result.size(), 3U);
  EXPECT_TRUE(harness.bit_identical());
  EXPECT_GE(harness.serial_seconds(), 0.0);
  EXPECT_GE(harness.parallel_seconds(), 0.0);

  const int exit_code = harness.finish([&](util::JsonWriter& writer) {
    for (const double value : result) {
      writer.begin_object();
      writer.key("value").value(value);
      writer.end_object();
    }
  });
  EXPECT_EQ(exit_code, 0);

  const std::string text = json.read();
  EXPECT_NE(text.find("\"bench\": \"test_ok\""), std::string::npos);
  EXPECT_NE(text.find("\"alpha\": 2"), std::string::npos);
  EXPECT_NE(text.find("\"label\": \"unit-test\""), std::string::npos);
  EXPECT_NE(text.find("\"count\": 3"), std::string::npos);
  EXPECT_NE(text.find("\"flag\": true"), std::string::npos);
  EXPECT_NE(text.find("\"parallel_bit_identical\": true"),
            std::string::npos);
  EXPECT_NE(text.find("\"wall_time_serial_s\""), std::string::npos);
  EXPECT_NE(text.find("\"wall_time_parallel_s\""), std::string::npos);
  EXPECT_NE(text.find("\"points\""), std::string::npos);
  // Balanced scopes — the writer enforces this, but check the file too.
  EXPECT_EQ(std::count(text.begin(), text.end(), '{'),
            std::count(text.begin(), text.end(), '}'));
  EXPECT_EQ(std::count(text.begin(), text.end(), '['),
            std::count(text.begin(), text.end(), ']'));
}

TEST(Harness, SplitSchemaSeparatesDeterministicFromMeasured) {
  TempJson json("test_harness_split.json");
  Harness harness("test_split", options_with_json(json.path, 2));
  harness.config("alpha", 2.0);
  harness.items(4);
  harness.metrics().counter("unit.events") += 7;
  harness.metrics().gauge("unit.seconds") = 1.5;
  harness.profiler().add("emit", 0.25);
  harness.profiler().add("emit", 0.25);

  (void)harness.run<std::vector<double>>(
      [](std::size_t) { return std::vector<double>{1.0, 2.0, 3.0, 4.0}; });
  const int exit_code = harness.finish(
      [](util::JsonWriter& writer) {
        writer.begin_object();
        writer.key("value").value(1.0);
        writer.end_object();
      },
      [](util::JsonWriter& writer) {
        writer.key("driver_wall_s").value(0.125);
      });
  EXPECT_EQ(exit_code, 0);

  const util::JsonValue doc = util::parse_json(json.read());
  ASSERT_TRUE(doc.is_object());
  EXPECT_NE(doc.find("bench"), nullptr);  // name stays top-level

  // Everything reproducible lives under "deterministic": config, items,
  // the self-check verdict, the metrics registry, and the points.
  const util::JsonValue* det = doc.find("deterministic");
  ASSERT_NE(det, nullptr);
  ASSERT_TRUE(det->is_object());
  ASSERT_NE(det->find("config"), nullptr);
  EXPECT_NE(det->find("config")->find("alpha"), nullptr);
  ASSERT_NE(det->find("items"), nullptr);
  EXPECT_EQ(det->find("items")->number, 4.0);
  ASSERT_NE(det->find("parallel_bit_identical"), nullptr);
  EXPECT_TRUE(det->find("parallel_bit_identical")->boolean);
  const util::JsonValue* metrics = det->find("metrics");
  ASSERT_NE(metrics, nullptr);
  ASSERT_NE(metrics->find("unit.events"), nullptr);
  EXPECT_EQ(metrics->find("unit.events")->number, 7.0);
  ASSERT_NE(det->find("points"), nullptr);
  EXPECT_TRUE(det->find("points")->is_array());

  // Wall-clock facts live under "measured" and ONLY there.
  const util::JsonValue* measured = doc.find("measured");
  ASSERT_NE(measured, nullptr);
  ASSERT_TRUE(measured->is_object());
  EXPECT_NE(measured->find("threads"), nullptr);
  EXPECT_NE(measured->find("wall_time_serial_s"), nullptr);
  EXPECT_NE(measured->find("wall_time_parallel_s"), nullptr);
  EXPECT_NE(measured->find("speedup"), nullptr);
  EXPECT_NE(measured->find("peak_rss_bytes"), nullptr);
  const util::JsonValue* profile = measured->find("profile");
  ASSERT_NE(profile, nullptr);
  const util::JsonValue* emit = profile->find("emit");
  ASSERT_NE(emit, nullptr);
  EXPECT_EQ(emit->find("seconds")->number, 0.5);
  EXPECT_EQ(emit->find("count")->number, 2.0);
  EXPECT_NE(measured->find("driver_wall_s"), nullptr);

  EXPECT_EQ(det->find("wall_time_serial_s"), nullptr);
  EXPECT_EQ(det->find("profile"), nullptr);
  EXPECT_EQ(measured->find("points"), nullptr);
  EXPECT_EQ(measured->find("metrics"), nullptr);
}

TEST(WallProfiler, AccumulatesInFirstTouchOrder) {
  WallProfiler profiler;
  EXPECT_TRUE(profiler.empty());
  profiler.add("solve", 1.0);
  profiler.add("emit", 0.5);
  profiler.add("solve", 0.25);
  EXPECT_EQ(profiler.size(), 2u);
  EXPECT_EQ(profiler.seconds("solve"), 1.25);
  EXPECT_EQ(profiler.count("solve"), 2u);
  EXPECT_EQ(profiler.seconds("emit"), 0.5);
  EXPECT_EQ(profiler.seconds("absent"), 0.0);
  EXPECT_EQ(profiler.count("absent"), 0u);

  std::ostringstream out;
  {
    util::JsonWriter json(out);
    json.begin_object();
    json.key("profile");
    profiler.write_json(json);
    json.end_object();
  }
  const std::string text = out.str();
  EXPECT_LT(text.find("\"solve\""), text.find("\"emit\""));
  EXPECT_NE(text.find("\"count\": 2"), std::string::npos);
}

TEST(WallProfiler, ProfileScopeAttributesElapsedTime) {
  WallProfiler profiler;
  double sink = 0.0;
  {
    ProfileScope named(profiler, "scope");
    ProfileScope plain(sink);
    EXPECT_GE(named.elapsed(), 0.0);
  }
  EXPECT_EQ(profiler.count("scope"), 1u);
  EXPECT_GE(profiler.seconds("scope"), 0.0);
  EXPECT_GE(sink, 0.0);
}

TEST(Harness, SelfCheckFailsForThreadDependentSweep) {
  TempJson json("test_harness_bad.json");
  Harness harness("test_bad", options_with_json(json.path));

  // A "sweep" whose result depends on the thread count — exactly the
  // determinism bug the harness exists to catch.
  (void)harness.run<std::vector<double>>([](std::size_t threads) {
    return std::vector<double>{static_cast<double>(threads)};
  });
  EXPECT_FALSE(harness.bit_identical());

  const int exit_code = harness.finish([](util::JsonWriter&) {});
  EXPECT_EQ(exit_code, 1);
  EXPECT_NE(json.read().find("\"parallel_bit_identical\": false"),
            std::string::npos);
}

TEST(Harness, RepetitionsCatchRunToRunNondeterminism) {
  TempJson json("test_harness_reps.json");
  HarnessOptions options = options_with_json(json.path, 2);
  options.repetitions = 3;
  Harness harness("test_reps", options);

  // Deterministic in the thread count but different on every call.
  int calls = 0;
  (void)harness.run<std::vector<double>>([&calls](std::size_t) {
    return std::vector<double>{static_cast<double>(calls++)};
  });
  EXPECT_FALSE(harness.bit_identical());
  EXPECT_EQ(harness.finish([](util::JsonWriter&) {}), 1);
}

TEST(PeakRss, RuMaxrssNormalizesBothPlatformConventions) {
  using RssUnit = Harness::RssUnit;
  // Linux reports KiB, macOS reports bytes for the SAME resident size —
  // the raw field differs by 1024x and must converge after conversion.
  EXPECT_EQ(Harness::ru_maxrss_to_bytes(204800, RssUnit::kKibibytes),
            static_cast<std::size_t>(204800) * 1024U);  // 200 MiB, Linux
  EXPECT_EQ(Harness::ru_maxrss_to_bytes(209715200, RssUnit::kBytes),
            static_cast<std::size_t>(209715200));       // 200 MiB, macOS
  EXPECT_EQ(Harness::ru_maxrss_to_bytes(204800, RssUnit::kKibibytes),
            Harness::ru_maxrss_to_bytes(204800L * 1024L, RssUnit::kBytes));
  EXPECT_EQ(Harness::ru_maxrss_to_bytes(1, RssUnit::kKibibytes), 1024u);
  EXPECT_EQ(Harness::ru_maxrss_to_bytes(1, RssUnit::kBytes), 1u);
}

TEST(PeakRss, RuMaxrssRejectsDegenerateReadings) {
  using RssUnit = Harness::RssUnit;
  // A failed getrusage leaves the field 0/garbage; negative and
  // overflowing readings must clamp to "unknown" (0), never wrap.
  EXPECT_EQ(Harness::ru_maxrss_to_bytes(0, RssUnit::kKibibytes), 0u);
  EXPECT_EQ(Harness::ru_maxrss_to_bytes(-1, RssUnit::kKibibytes), 0u);
  EXPECT_EQ(Harness::ru_maxrss_to_bytes(-1, RssUnit::kBytes), 0u);
  EXPECT_EQ(Harness::ru_maxrss_to_bytes(std::numeric_limits<long>::max(),
                                        RssUnit::kKibibytes),
            0u);
}

TEST(PeakRss, ProcessPeakIsPlausible) {
  const std::size_t rss = Harness::peak_rss_bytes();
  // On Linux/macOS this must be a real reading: at least 1 MiB (a running
  // gtest binary) and under 1 TiB (catches unit mix-ups in either
  // direction — reporting KiB as bytes shrinks it 1024x, bytes scaled as
  // KiB would inflate a ~100 MiB process past a TiB quickly).
  EXPECT_GE(rss, 1024u * 1024u);
  EXPECT_LT(rss, static_cast<std::size_t>(1) << 40);
}

TEST(Harness, RejectsMisuse) {
  EXPECT_THROW(Harness("", HarnessOptions{}), util::PreconditionError);
  HarnessOptions no_reps;
  no_reps.repetitions = 0;
  EXPECT_THROW(Harness("x", no_reps), util::PreconditionError);
  Harness unrun("x", HarnessOptions{});
  EXPECT_THROW((void)unrun.finish([](util::JsonWriter&) {}),
               util::PreconditionError);
}

}  // namespace
}  // namespace nldl::bench
