// Tests for obs::CriticalPath: the five-way blame decomposition sums
// BIT-EXACTLY to each job's observed latency and the path segments tile
// [dispatch, finish] exactly — pinned across all three comm models, both
// servers, and both master modes; plus contention stall attribution,
// queue-depth plumbing from kArrival, the pid-4 flow export, and the
// Chrome-trace roundtrip under the microsecond tolerance.
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/critical_path.hpp"
#include "obs/export.hpp"
#include "obs/trace.hpp"
#include "obs/validate.hpp"
#include "online/scheduler.hpp"
#include "online/server.hpp"
#include "platform/platform.hpp"
#include "qos/policy.hpp"
#include "qos/server.hpp"
#include "util/json_parse.hpp"

namespace nldl {
namespace {

platform::Platform test_platform() {
  return platform::Platform::two_class(6, 1.0, 3.0);
}

std::vector<online::Job> burst_jobs() {
  return {{0, 0.0, 60.0, 2.0, 400.0, 0},  {1, 1.0, 30.0, 1.0, 150.0, 1},
          {2, 2.0, 45.0, 2.0, 500.0, 0},  {3, 15.0, 20.0, 1.0, 90.0, 2},
          {4, 16.0, 80.0, 2.0, 900.0, 1}, {5, 40.0, 25.0, 1.0, 200.0, 2}};
}

const std::vector<sim::CommModelKind> kCommKinds{
    sim::CommModelKind::kParallelLinks, sim::CommModelKind::kOnePort,
    sim::CommModelKind::kBoundedMultiport};

std::vector<obs::TraceEvent> traced_online(sim::CommModelKind comm,
                                           online::MasterMode master) {
  const platform::Platform plat = test_platform();
  obs::TraceRecorder recorder;
  online::ServerOptions options;
  options.comm = comm;
  if (comm == sim::CommModelKind::kBoundedMultiport) options.capacity = 2.0;
  options.master = master;
  options.trace = &recorder;
  const online::Server server(plat, options);
  const online::FairShareScheduler fair(2);
  (void)server.run(burst_jobs(), fair);
  return recorder.events();
}

std::vector<obs::TraceEvent> traced_qos(sim::CommModelKind comm,
                                        std::size_t concurrency) {
  const platform::Platform plat = test_platform();
  obs::TraceRecorder recorder;
  qos::ServerOptions options;
  options.service.comm = comm;
  if (comm == sim::CommModelKind::kBoundedMultiport) {
    options.service.capacity = 2.0;
  }
  options.service.plan.rounds = 3;
  options.service.plan.restart_load_fraction = 1.0;
  options.concurrency = concurrency;
  options.trace = &recorder;
  const qos::Server server(plat, options);
  qos::SrptPolicy srpt;
  (void)server.run(burst_jobs(), srpt);
  return recorder.events();
}

/// The two pinned invariants, for any event stream and tolerance:
/// components sum bitwise to latency, and the path tiles
/// [dispatch, finish] with bitwise-contiguous segments.
void expect_exact(const std::vector<obs::TraceEvent>& events,
                  double tolerance = 0.0) {
  const obs::CriticalPath analysis(events, tolerance);
  std::size_t served = 0;
  for (const obs::TraceEvent& event : events) {
    if (event.kind == obs::EventKind::kJob) ++served;
  }
  ASSERT_EQ(analysis.jobs().size(), served);
  for (const obs::JobBlame& job : analysis.jobs()) {
    SCOPED_TRACE("job " + std::to_string(job.job));
    EXPECT_EQ(job.total(), job.latency);  // bitwise
    EXPECT_EQ(job.latency, job.finish - job.arrival);
    EXPECT_GE(job.wait, 0.0);
    EXPECT_GE(job.comm, 0.0);
    EXPECT_GE(job.compute, 0.0);
    EXPECT_GE(job.restart, 0.0);
    ASSERT_FALSE(job.path.empty());
    EXPECT_EQ(job.path.front().start, job.dispatch);
    EXPECT_EQ(job.path.back().end, job.finish);
    for (std::size_t i = 0; i + 1 < job.path.size(); ++i) {
      EXPECT_EQ(job.path[i].end, job.path[i + 1].start)
          << "segment " << i << " does not abut its successor";
    }
    for (const obs::PathSegment& segment : job.path) {
      EXPECT_LT(segment.start, segment.end);
    }
  }
}

// --- exactness across the full scenario matrix -------------------------------

TEST(BlameExactness, OnlineAcrossCommModelsAndMasterModes) {
  for (const sim::CommModelKind comm : kCommKinds) {
    for (const online::MasterMode master :
         {online::MasterMode::kPrivatePort,
          online::MasterMode::kSharedMaster}) {
      SCOPED_TRACE(sim::to_string(comm) + " / " + online::to_string(master));
      expect_exact(traced_online(comm, master));
    }
  }
}

TEST(BlameExactness, QosAcrossCommModelsAndConcurrency) {
  for (const sim::CommModelKind comm : kCommKinds) {
    for (const std::size_t concurrency : {std::size_t{1}, std::size_t{2}}) {
      SCOPED_TRACE(sim::to_string(comm) + " / concurrency " +
                   std::to_string(concurrency));
      expect_exact(traced_qos(comm, concurrency));
    }
  }
}

TEST(BlameExactness, DeterministicAcrossRebuilds) {
  const auto events =
      traced_online(sim::CommModelKind::kBoundedMultiport,
                    online::MasterMode::kSharedMaster);
  const obs::CriticalPath a(events);
  const obs::CriticalPath b(events);
  ASSERT_EQ(a.jobs().size(), b.jobs().size());
  for (std::size_t i = 0; i < a.jobs().size(); ++i) {
    EXPECT_EQ(a.jobs()[i].wait, b.jobs()[i].wait);
    EXPECT_EQ(a.jobs()[i].comm, b.jobs()[i].comm);
    EXPECT_EQ(a.jobs()[i].compute, b.jobs()[i].compute);
    EXPECT_EQ(a.jobs()[i].restart, b.jobs()[i].restart);
    EXPECT_EQ(a.jobs()[i].stall, b.jobs()[i].stall);
    EXPECT_EQ(a.jobs()[i].path.size(), b.jobs()[i].path.size());
  }
}

// --- attribution content -----------------------------------------------------

TEST(Blame, ContentionChargesStallAndRestart) {
  // Concurrent qos on the shared bounded-multiport master: jobs gate on
  // each other's transfers and preempted jobs pay restart re-work, so
  // the aggregate must carry both buckets.
  const obs::CriticalPath analysis(
      traced_qos(sim::CommModelKind::kBoundedMultiport, 2));
  const obs::CriticalPath::Totals totals = analysis.totals();
  ASSERT_GT(totals.jobs, 0u);
  EXPECT_GT(totals.comm, 0.0);
  EXPECT_GT(totals.compute, 0.0);
  EXPECT_GT(totals.stall, 0.0) << "contention scenario must show stall";
  EXPECT_NEAR(totals.wait + totals.comm + totals.compute + totals.restart +
                  totals.stall,
              totals.latency, 1e-9 * totals.latency);

  // Stall segments name their culprit when the path runs through another
  // job's span. Whether a given scenario's chains cross is load-dependent,
  // so scan the whole contention matrix for at least one named culprit.
  bool culprit_found = false;
  const auto scan = [&culprit_found](const obs::CriticalPath& scenario) {
    for (const obs::JobBlame& job : scenario.jobs()) {
      for (const obs::PathSegment& segment : job.path) {
        if (segment.kind == obs::BlameKind::kStall &&
            segment.via_job != obs::kNoIndex && segment.via_job != job.job) {
          culprit_found = true;
        }
      }
    }
  };
  scan(analysis);
  for (const sim::CommModelKind comm : kCommKinds) {
    scan(obs::CriticalPath(traced_qos(comm, 2)));
    scan(obs::CriticalPath(
        traced_online(comm, online::MasterMode::kSharedMaster)));
  }
  EXPECT_TRUE(culprit_found);
}

TEST(Blame, QueueDepthMatchesArrivalInstants) {
  const auto events = traced_online(sim::CommModelKind::kParallelLinks,
                                    online::MasterMode::kPrivatePort);
  std::size_t arrivals = 0;
  const obs::CriticalPath analysis(events);
  for (const obs::TraceEvent& event : events) {
    if (event.kind != obs::EventKind::kArrival) continue;
    ++arrivals;
    const obs::JobBlame* job = analysis.find(event.job);
    ASSERT_NE(job, nullptr);
    EXPECT_EQ(job->queue_depth, event.value);
    EXPECT_EQ(job->arrival, event.start);
  }
  EXPECT_EQ(arrivals, burst_jobs().size());
}

TEST(Blame, DominantTieBreaksTowardEarlierBucket) {
  obs::JobBlame blame;
  blame.wait = 1.0;
  blame.comm = 3.0;
  blame.compute = 3.0;
  EXPECT_EQ(blame.dominant(), obs::BlameKind::kComm);
  blame.stall = 4.0;
  EXPECT_EQ(blame.dominant(), obs::BlameKind::kStall);
}

TEST(Blame, EmptyStreamYieldsNoJobs) {
  const obs::CriticalPath analysis({});
  EXPECT_TRUE(analysis.jobs().empty());
  EXPECT_EQ(analysis.find(0), nullptr);
  EXPECT_EQ(analysis.totals().jobs, 0u);
  EXPECT_NE(obs::render_blame(analysis).find("0 jobs"), std::string::npos);
}

TEST(Blame, RenderNamesBucketsAndFindLocatesJobs) {
  const obs::CriticalPath analysis(
      traced_qos(sim::CommModelKind::kOnePort, 2));
  ASSERT_FALSE(analysis.jobs().empty());
  const obs::JobBlame& first = analysis.jobs().front();
  const obs::JobBlame* found = analysis.find(first.job);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->latency, first.latency);
  EXPECT_EQ(analysis.find(9999), nullptr);

  const std::string table = obs::render_blame(analysis, 3, "unit");
  EXPECT_NE(table.find("critical-path blame"), std::string::npos);
  EXPECT_NE(table.find("latency"), std::string::npos);
  EXPECT_NE(table.find("restart"), std::string::npos);
  EXPECT_NE(table.find("aggregate:"), std::string::npos);
  EXPECT_STREQ(obs::to_string(obs::BlameKind::kWait), "wait");
  EXPECT_STREQ(obs::to_string(obs::BlameKind::kStall), "stall");
}

// --- export + roundtrip ------------------------------------------------------

TEST(BlameExport, FlowTrackValidatesAndCarriesPathSlices) {
  const auto events =
      traced_qos(sim::CommModelKind::kBoundedMultiport, 2);
  const obs::CriticalPath analysis(events);
  std::ostringstream out;
  obs::ChromeTraceOptions options;
  options.workers = test_platform().size();
  options.label = "blame export";
  options.critical_path = &analysis;
  obs::write_chrome_trace(out, events, options);

  const std::string text = out.str();
  const obs::ValidationResult result = obs::validate_chrome_trace_text(text);
  EXPECT_TRUE(result) << result.error;
  EXPECT_NE(text.find("\"critical path\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\": \"s\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\": \"f\""), std::string::npos);
  EXPECT_NE(text.find("\"bp\": \"e\""), std::string::npos);
}

TEST(BlameExport, ChromeRoundtripClosesUnderTolerance) {
  const auto events =
      traced_online(sim::CommModelKind::kBoundedMultiport,
                    online::MasterMode::kSharedMaster);
  const obs::CriticalPath direct(events);

  std::ostringstream out;
  obs::ChromeTraceOptions options;
  options.workers = test_platform().size();
  options.critical_path = &direct;
  obs::write_chrome_trace(out, events, options);

  // Reconstruct the event stream from the exported document. The
  // microsecond encoding perturbs endpoints, so the causal matching
  // needs the relative tolerance — the exactness invariants still hold.
  const util::JsonValue root = util::parse_json(out.str());
  const std::vector<obs::TraceEvent> decoded =
      obs::events_from_chrome_trace(root);
  expect_exact(decoded, 1e-9);

  const obs::CriticalPath roundtrip(decoded, 1e-9);
  ASSERT_EQ(roundtrip.jobs().size(), direct.jobs().size());
  for (std::size_t i = 0; i < direct.jobs().size(); ++i) {
    EXPECT_EQ(roundtrip.jobs()[i].job, direct.jobs()[i].job);
    EXPECT_NEAR(roundtrip.jobs()[i].latency, direct.jobs()[i].latency,
                1e-5);
  }
}

}  // namespace
}  // namespace nldl
