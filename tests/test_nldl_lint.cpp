// Tests for tools/nldl_lint: every rule fires on its positive fixture at
// the expected lines, stays silent on the matched negative fixture,
// suppressions silence exactly what they name (and rot loudly when
// malformed or unused), and the scanner's comment/string stripping keeps
// prose from triggering rules. The fixture corpus lives in
// tests/lint_fixtures/ (see its README); NLDL_LINT_FIXTURE_DIR is
// injected by CMake so the suite runs from any working directory.
#include "lint.hpp"

#include <algorithm>
#include <fstream>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "layers.hpp"
#include "project.hpp"

namespace nldl::lint {
namespace {

std::string read_fixture(const std::string& name) {
  const std::string path = std::string(NLDL_LINT_FIXTURE_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << "cannot open fixture " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::vector<Finding> scan_fixture(const std::string& name) {
  return scan_source(name, read_fixture(name));
}

std::vector<std::size_t> lines_of(const std::vector<Finding>& findings,
                                  const std::string& rule) {
  std::vector<std::size_t> lines;
  for (const Finding& finding : findings) {
    if (finding.rule == rule) lines.push_back(finding.line);
  }
  return lines;
}

// --- rule table -------------------------------------------------------------

TEST(LintRules, TableIsCompleteAndUnique) {
  const std::vector<Rule>& table = rules();
  ASSERT_EQ(table.size(), 10u);
  std::set<std::string_view> ids;
  for (const Rule& rule : table) {
    EXPECT_FALSE(rule.id.empty());
    EXPECT_FALSE(rule.summary.empty());
    EXPECT_FALSE(rule.rationale.empty());
    EXPECT_TRUE(ids.insert(rule.id).second) << "duplicate id " << rule.id;
    EXPECT_TRUE(is_rule(rule.id));
  }
  EXPECT_TRUE(ids.count("unordered-container") == 1);
  EXPECT_TRUE(ids.count("pointer-order") == 1);
  EXPECT_TRUE(ids.count("nondet-source") == 1);
  EXPECT_TRUE(ids.count("locale") == 1);
  EXPECT_TRUE(ids.count("parallel-accum") == 1);
  EXPECT_TRUE(ids.count("float-order") == 1);
  EXPECT_TRUE(ids.count("double-eq") == 1);
  EXPECT_TRUE(ids.count("layer-violation") == 1);
  EXPECT_TRUE(ids.count("include-cycle") == 1);
  EXPECT_TRUE(ids.count("iwyu-lite") == 1);
  EXPECT_FALSE(is_rule("no-such-rule"));
  EXPECT_FALSE(is_rule(""));
  // "suppression" is a reserved reporting category, not an allowable rule.
  EXPECT_FALSE(is_rule("suppression"));
}

// --- comment/string stripping ----------------------------------------------

TEST(LintStrip, BlanksCommentsAndStringsPreservingLayout) {
  const std::string src =
      "int a; // std::rand()\n"
      "const char* s = \"std::unordered_map\";\n"
      "/* std::stod */ int b;\n";
  const std::string stripped = strip_comments_and_strings(src);
  ASSERT_EQ(stripped.size(), src.size());
  EXPECT_EQ(std::count(stripped.begin(), stripped.end(), '\n'), 3);
  EXPECT_EQ(stripped.find("rand"), std::string::npos);
  EXPECT_EQ(stripped.find("unordered"), std::string::npos);
  EXPECT_EQ(stripped.find("stod"), std::string::npos);
  EXPECT_NE(stripped.find("int a;"), std::string::npos);
  EXPECT_NE(stripped.find("int b;"), std::string::npos);
  EXPECT_NE(stripped.find("const char* s ="), std::string::npos);
}

TEST(LintStrip, HandlesRawStringsAndEscapes) {
  const std::string src =
      "auto r = R\"(std::rand() \" quote)\";\n"
      "char c = '\\\"'; int keep = 1; // trailing\n";
  const std::string stripped = strip_comments_and_strings(src);
  EXPECT_EQ(stripped.find("rand"), std::string::npos);
  EXPECT_EQ(stripped.find("trailing"), std::string::npos);
  EXPECT_NE(stripped.find("int keep = 1;"), std::string::npos);
}

TEST(LintStrip, ProseNeverTriggersRules) {
  const std::string src =
      "// This comment discusses std::rand and std::unordered_map.\n"
      "const char* help = \"never call srand() or std::stod here\";\n";
  EXPECT_TRUE(scan_source("prose.cpp", src).empty());
}

TEST(LintStrip, DirectiveInsideStringLiteralIsInert) {
  // A quoted directive (as in THIS test file) must not count as a
  // suppression — otherwise it would be reported as unused.
  const std::string src =
      "const char* doc = \"// nldl-lint: allow(locale): quoted\";\n";
  EXPECT_TRUE(scan_source("quoted.cpp", src).empty());
}

// --- one positive and one negative fixture per rule -------------------------

TEST(LintFixtures, UnorderedContainerFiresAndOrderedPasses) {
  const auto findings = scan_fixture("bad_unordered.cpp");
  EXPECT_EQ(lines_of(findings, "unordered-container"),
            (std::vector<std::size_t>{2, 3, 6, 11}));
  // The range-for over cache.totals accumulates a double in hash order —
  // the flow-sensitive rule fires alongside the container ban.
  EXPECT_EQ(lines_of(findings, "float-order"),
            (std::vector<std::size_t>{13}));
  EXPECT_EQ(findings.size(), 5u);
  EXPECT_TRUE(scan_fixture("good_ordered.cpp").empty());
}

TEST(LintFixtures, PointerOrderFiresAndStableKeysPass) {
  const auto findings = scan_fixture("bad_pointer_order.cpp");
  EXPECT_EQ(lines_of(findings, "pointer-order"),
            (std::vector<std::size_t>{11, 12, 13}));
  EXPECT_EQ(findings.size(), 3u);
  EXPECT_TRUE(scan_fixture("good_stable_keys.cpp").empty());
}

TEST(LintFixtures, NondetSourceFiresAndSeededRngPasses) {
  const auto findings = scan_fixture("bad_nondet_source.cpp");
  EXPECT_EQ(lines_of(findings, "nondet-source"),
            (std::vector<std::size_t>{8, 9, 10, 11, 14}));
  EXPECT_EQ(findings.size(), 5u);
  EXPECT_TRUE(scan_fixture("good_seeded_rng.cpp").empty());
}

TEST(LintFixtures, WallClockConfinedToBenchLayer) {
  // WallClock::now() is sanctioned only where the path contains "bench";
  // elsewhere it fires like any other wall-clock read (and the raw
  // steady_clock read on line 9 fires regardless of layer).
  const auto findings = scan_fixture("bad_wallclock_sim.cpp");
  EXPECT_EQ(lines_of(findings, "nondet-source"),
            (std::vector<std::size_t>{8, 9, 11}));
  EXPECT_EQ(findings.size(), 3u);
  EXPECT_TRUE(scan_fixture("good_wallclock_bench.cpp").empty());
}

TEST(LintFixtures, LocaleFiresAndCharconvPasses) {
  const auto findings = scan_fixture("bad_locale.cpp");
  EXPECT_EQ(lines_of(findings, "locale"),
            (std::vector<std::size_t>{8, 9, 10, 12, 13}));
  EXPECT_EQ(findings.size(), 5u);
  EXPECT_TRUE(scan_fixture("good_charconv.cpp").empty());
}

TEST(LintFixtures, ParallelAccumFiresAndOrderedReductionPasses) {
  const auto findings = scan_fixture("bad_parallel_accum.cpp");
  EXPECT_EQ(lines_of(findings, "parallel-accum"),
            (std::vector<std::size_t>{10, 13, 18, 26}));
  // The racing compound update targets a floating identifier, so the
  // flow-sensitive rule fires on the same line (a justified site needs
  // allow(parallel-accum, float-order)).
  EXPECT_EQ(lines_of(findings, "float-order"),
            (std::vector<std::size_t>{26}));
  EXPECT_EQ(findings.size(), 5u);
  EXPECT_TRUE(scan_fixture("good_ordered_reduction.cpp").empty());
}

TEST(LintFixtures, FloatOrderFiresAcrossLinesAndFixedOrderPasses) {
  const auto findings = scan_fixture("bad_float_order.cpp");
  // Line 13: += in a range-for (spanning lines 11-12) over an unordered
  // map. Line 23: += on a floating identifier in a parallel_for extent,
  // where parallel-accum fires too.
  EXPECT_EQ(lines_of(findings, "float-order"),
            (std::vector<std::size_t>{13, 23}));
  EXPECT_EQ(lines_of(findings, "parallel-accum"),
            (std::vector<std::size_t>{23}));
  EXPECT_EQ(lines_of(findings, "unordered-container"),
            (std::vector<std::size_t>{5, 9}));
  EXPECT_EQ(findings.size(), 5u);
  EXPECT_TRUE(scan_fixture("good_float_order.cpp").empty());
}

TEST(LintFixtures, DoubleEqFiresAndSentinelsPass) {
  const auto findings = scan_fixture("bad_double_eq.cpp");
  EXPECT_EQ(lines_of(findings, "double-eq"),
            (std::vector<std::size_t>{5, 6, 7, 12}));
  EXPECT_EQ(findings.size(), 4u);
  EXPECT_TRUE(scan_fixture("good_double_eq.cpp").empty());
}

TEST(LintFixtures, DoubleEqIsExemptUnderTests) {
  // tests/ pins exact float values deliberately (bitwise-reproducibility
  // assertions), so the rule is scoped out there by path.
  const std::string src = "bool close(double a, double b) { return a == b; }\n";
  EXPECT_FALSE(scan_source("src/sim/close.cpp", src).empty());
  EXPECT_TRUE(scan_source("tests/test_close.cpp", src).empty());
}

// --- suppressions -----------------------------------------------------------

TEST(LintSuppressions, WellFormedUsedSuppressionsScanClean) {
  const auto findings = scan_fixture("suppressed_ok.cpp");
  EXPECT_TRUE(findings.empty())
      << "unexpected: " << (findings.empty() ? "" : to_string(findings[0]));
}

TEST(LintSuppressions, MalformedAndUnusedSuppressionsAreFindings) {
  const auto findings = scan_fixture("suppressed_malformed.cpp");
  // Malformed directives (no justification, unknown rule, empty
  // justification, not allow() at all) each report once...
  EXPECT_EQ(lines_of(findings, "suppression"),
            (std::vector<std::size_t>{6, 7, 8, 9, 10, 11}));
  // ...and never silence the underlying finding; a suppression naming the
  // WRONG rule (line 11) leaves the finding alive too. The raw includes
  // on lines 3-4 fire like any other use of the banned headers.
  EXPECT_EQ(lines_of(findings, "unordered-container"),
            (std::vector<std::size_t>{3, 4, 6, 7, 8, 9, 11}));
  EXPECT_EQ(findings.size(), 13u);
}

TEST(LintSuppressions, MultiRuleAllowCoversEachNamedRule) {
  const std::string src =
      "double x = std::stod(s) + std::rand();  "
      "// nldl-lint: allow(locale, nondet-source): both exercised here\n";
  EXPECT_TRUE(scan_source("multi.cpp", src).empty());
}

TEST(LintSuppressions, JustificationIsMandatory) {
  const std::string bare =
      "std::unordered_set<int> s;  "
      "// nldl-lint: allow(unordered-container)\n";
  const auto findings = scan_source("bare.cpp", bare);
  ASSERT_EQ(findings.size(), 2u);  // malformed + surviving finding
  EXPECT_EQ(findings[0].rule, "suppression");
  EXPECT_EQ(findings[1].rule, "unordered-container");
}

// --- project rules over the fixture mini-tree -------------------------------
//
// tests/lint_fixtures/project/ is a two-layer toy repo: util/ at the
// bottom, sim/ above it, exercising one layer back-edge, one include
// cycle, one stale include, and one justified iwyu-lite suppression.

std::vector<Finding> scan_project_fixture() {
  const std::vector<std::string> rel = {
      "src/sim/cycle_a.hpp",   "src/sim/cycle_b.hpp", "src/sim/engine.hpp",
      "src/sim/stale.cpp",     "src/util/backedge.hpp",
      "src/util/base.hpp",     "src/util/unused.hpp",
  };
  FileSet files;
  for (const std::string& path : rel) {
    auto scan = std::make_unique<FileScan>();
    scan->path = path;
    scan->source = read_fixture("project/" + path);
    scan_file(*scan);
    files.push_back(std::move(scan));
  }
  const std::string config_error =
      analyze_project(files, default_layer_config(), nullptr);
  EXPECT_TRUE(config_error.empty()) << config_error;
  std::vector<Finding> all;
  for (const auto& file : files) {
    finish_file(*file);
    all.insert(all.end(), file->findings.begin(), file->findings.end());
  }
  return all;
}

TEST(LintProject, BackEdgeCycleAndStaleIncludeArePinned) {
  const auto findings = scan_project_fixture();
  ASSERT_EQ(findings.size(), 3u);
  // The cycle is reported once, at the #include that closes it.
  EXPECT_EQ(findings[0].file, "src/sim/cycle_b.hpp");
  EXPECT_EQ(findings[0].rule, "include-cycle");
  EXPECT_EQ(findings[0].line, 5u);
  // util/base.hpp exports nothing stale.cpp uses; the neighboring
  // suppressed include (line 4) stays silent and counts as used.
  EXPECT_EQ(findings[1].file, "src/sim/stale.cpp");
  EXPECT_EQ(findings[1].rule, "iwyu-lite");
  EXPECT_EQ(findings[1].line, 3u);
  // util (rank 0) including sim (rank 2) contradicts the DAG.
  EXPECT_EQ(findings[2].file, "src/util/backedge.hpp");
  EXPECT_EQ(findings[2].rule, "layer-violation");
  EXPECT_EQ(findings[2].line, 4u);
}

TEST(LintProject, MalformedLayerConfigIsAHardError) {
  FileSet no_files;
  LayerConfig self_edge = default_layer_config();
  self_edge.exceptions.push_back({"util", "util"});
  EXPECT_FALSE(analyze_project(no_files, self_edge, nullptr).empty());

  LayerConfig unknown_dir = default_layer_config();
  unknown_dir.exceptions.push_back({"no-such-dir", "util"});
  EXPECT_FALSE(analyze_project(no_files, unknown_dir, nullptr).empty());

  // A src/ directory missing from the table is a configuration error,
  // never a silent pass.
  FileSet files;
  auto scan = std::make_unique<FileScan>();
  scan->path = "src/mystery/widget.hpp";
  scan->source = "#pragma once\n";
  scan_file(*scan);
  files.push_back(std::move(scan));
  EXPECT_FALSE(
      analyze_project(files, default_layer_config(), nullptr).empty());
}

// --- reporting --------------------------------------------------------------

TEST(LintReport, GccStyleRendering) {
  const Finding finding{"src/a.cpp", 12, "locale", "msg"};
  EXPECT_EQ(to_string(finding), "src/a.cpp:12: error: [locale] msg");
}

TEST(LintReport, FindingsAreSortedByLine) {
  const auto findings = scan_fixture("bad_nondet_source.cpp");
  EXPECT_TRUE(std::is_sorted(
      findings.begin(), findings.end(),
      [](const Finding& a, const Finding& b) { return a.line < b.line; }));
}

}  // namespace
}  // namespace nldl::lint
