// Tests for the distributed-sort schedule model (Section 3 on the star
// platform).
#include "sort/distributed.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "util/assert.hpp"

namespace nldl::sort {
namespace {

using platform::Platform;

TEST(DistributedSort, BucketsSumToN) {
  const auto plat = Platform::from_speeds({1.0, 2.0, 5.0});
  const auto plan = plan_distributed_sort(plat, 1e6);
  double total = 0.0;
  for (const double b : plan.bucket_sizes) total += b;
  EXPECT_NEAR(total, 1e6, 1e-6);
}

TEST(DistributedSort, HeterogeneousBucketsTrackSpeeds) {
  const auto plat = Platform::from_speeds({1.0, 3.0});
  const auto plan = plan_distributed_sort(plat, 1e6);
  EXPECT_NEAR(plan.bucket_sizes[0], 0.25e6, 1.0);
  EXPECT_NEAR(plan.bucket_sizes[1], 0.75e6, 1.0);
}

TEST(DistributedSort, HomogeneousBucketsEqualShares) {
  const auto plat = Platform::from_speeds({1.0, 3.0});
  DistributedSortConfig config;
  config.heterogeneous_buckets = false;
  const auto plan = plan_distributed_sort(plat, 1e6, config);
  EXPECT_NEAR(plan.bucket_sizes[0], 0.5e6, 1.0);
  EXPECT_NEAR(plan.bucket_sizes[1], 0.5e6, 1.0);
}

TEST(DistributedSort, OverheadRatioShrinksWithN) {
  // The Section 3 claim, as a schedule: makespan / ideal -> 1.
  const auto plat = Platform::homogeneous(16, 0.01, 1.0);
  const double small =
      plan_distributed_sort(plat, 1e5).overhead_ratio;
  const double large =
      plan_distributed_sort(plat, 1e9).overhead_ratio;
  EXPECT_LT(large, small);
  EXPECT_GT(small, 1.0);
}

TEST(DistributedSort, OnePortScatterIsSlower) {
  const auto plat = Platform::homogeneous(8, 1.0, 1.0);
  DistributedSortConfig parallel;
  DistributedSortConfig one_port;
  one_port.comm_model = sim::CommModel::kOnePort;
  const auto fast = plan_distributed_sort(plat, 1e6, parallel);
  const auto slow = plan_distributed_sort(plat, 1e6, one_port);
  EXPECT_GT(slow.scatter_time, fast.scatter_time);
  EXPECT_GE(slow.makespan, fast.makespan);
}

TEST(DistributedSort, HeterogeneousBeatsHomogeneousOnSkewedPlatform) {
  // Speed-proportional buckets equalize worker finish; equal buckets leave
  // the slow worker as the bottleneck.
  const auto plat = Platform::two_class(8, 1.0, 10.0);
  DistributedSortConfig het;
  DistributedSortConfig hom;
  hom.heterogeneous_buckets = false;
  const auto het_plan = plan_distributed_sort(plat, 1e8, het);
  const auto hom_plan = plan_distributed_sort(plat, 1e8, hom);
  EXPECT_LT(het_plan.makespan, hom_plan.makespan);
}

TEST(DistributedSort, MasterSpeedScalesPreprocessing) {
  const auto plat = Platform::homogeneous(4);
  DistributedSortConfig fast_master;
  fast_master.master_w = 0.1;
  DistributedSortConfig slow_master;
  slow_master.master_w = 10.0;
  const auto fast = plan_distributed_sort(plat, 1e6, fast_master);
  const auto slow = plan_distributed_sort(plat, 1e6, slow_master);
  EXPECT_NEAR(slow.step2_time / fast.step2_time, 100.0, 1e-6);
  EXPECT_DOUBLE_EQ(slow.step3_time, fast.step3_time);
}

TEST(DistributedSort, RejectsBadInput) {
  const auto plat = Platform::homogeneous(2);
  EXPECT_THROW((void)plan_distributed_sort(plat, 1.0),
               util::PreconditionError);
  DistributedSortConfig config;
  config.master_w = 0.0;
  EXPECT_THROW((void)plan_distributed_sort(plat, 100.0, config),
               util::PreconditionError);
}

}  // namespace
}  // namespace nldl::sort
