// Tests for the ASCII chart renderer.
#include "util/chart.hpp"

#include <gtest/gtest.h>

#include "util/assert.hpp"

namespace nldl::util {
namespace {

TEST(AsciiChart, RendersSeriesGlyphs) {
  AsciiChart chart(30, 8);
  chart.add_series("up", '*', {0.0, 1.0, 2.0}, {0.0, 1.0, 2.0});
  chart.add_series("down", 'o', {0.0, 1.0, 2.0}, {2.0, 1.0, 0.0});
  const std::string art = chart.render();
  EXPECT_NE(art.find('*'), std::string::npos);
  EXPECT_NE(art.find('o'), std::string::npos);
  EXPECT_NE(art.find("up"), std::string::npos);
  EXPECT_NE(art.find("down"), std::string::npos);
}

TEST(AsciiChart, LabelsAppear) {
  AsciiChart chart(30, 8);
  chart.set_y_label("ratio");
  chart.set_x_label("processors");
  chart.add_series("s", '#', {1.0, 2.0}, {3.0, 4.0});
  const std::string art = chart.render();
  EXPECT_NE(art.find("ratio"), std::string::npos);
  EXPECT_NE(art.find("processors"), std::string::npos);
}

TEST(AsciiChart, MonotoneSeriesMonotoneRows) {
  // An increasing series must render later points on earlier (higher)
  // rows of the canvas.
  AsciiChart chart(40, 10);
  chart.add_series("inc", '#', {0.0, 1.0, 2.0, 3.0},
                   {0.0, 10.0, 20.0, 30.0});
  const std::string art = chart.render();
  // Find row index of first and last '#'.
  std::vector<std::string> lines;
  std::size_t pos = 0;
  while (pos < art.size()) {
    const auto end = art.find('\n', pos);
    lines.push_back(art.substr(pos, end - pos));
    pos = end + 1;
  }
  int first_row = -1;
  int last_row = -1;
  for (int row = 0; row < static_cast<int>(lines.size()); ++row) {
    const auto col = lines[static_cast<std::size_t>(row)].find('#');
    if (col == std::string::npos) continue;
    if (first_row < 0) first_row = row;
    last_row = row;
  }
  ASSERT_GE(first_row, 0);
  // Highest y (last point) appears on an earlier line than lowest y.
  EXPECT_LT(first_row, last_row);
}

TEST(AsciiChart, ConstantSeriesDoesNotDivideByZero) {
  AsciiChart chart(20, 5);
  chart.add_series("flat", '-', {1.0, 2.0}, {5.0, 5.0});
  EXPECT_NO_THROW((void)chart.render());
}

TEST(AsciiChart, SinglePoint) {
  AsciiChart chart(20, 5);
  chart.add_series("dot", '@', {1.0}, {1.0});
  EXPECT_NE(chart.render().find('@'), std::string::npos);
}

TEST(AsciiChart, RejectsBadInput) {
  EXPECT_THROW(AsciiChart(4, 2), PreconditionError);
  AsciiChart chart(20, 5);
  EXPECT_THROW(chart.add_series("bad", 'x', {1.0}, {1.0, 2.0}),
               PreconditionError);
  EXPECT_THROW(chart.add_series("empty", 'x', {}, {}),
               PreconditionError);
  AsciiChart no_series(20, 5);
  EXPECT_THROW((void)no_series.render(), PreconditionError);
}

}  // namespace
}  // namespace nldl::util
