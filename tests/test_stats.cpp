// Unit tests for streaming statistics, quantiles and histograms.
#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace nldl::util {
namespace {

TEST(RunningStats, EmptyDefaults) {
  RunningStats stats;
  EXPECT_TRUE(stats.empty());
  EXPECT_EQ(stats.count(), 0U);
  EXPECT_EQ(stats.mean(), 0.0);
  EXPECT_EQ(stats.variance(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats stats;
  stats.push(42.0);
  EXPECT_EQ(stats.count(), 1U);
  EXPECT_EQ(stats.mean(), 42.0);
  EXPECT_EQ(stats.variance(), 0.0);
  EXPECT_EQ(stats.min(), 42.0);
  EXPECT_EQ(stats.max(), 42.0);
}

TEST(RunningStats, KnownSample) {
  RunningStats stats;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    stats.push(x);
  }
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_NEAR(stats.population_variance(), 4.0, 1e-12);
  EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(stats.min(), 2.0);
  EXPECT_EQ(stats.max(), 9.0);
}

TEST(RunningStats, MergeEqualsBulk) {
  Rng rng(77);
  RunningStats all;
  RunningStats left;
  RunningStats right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(3.0, 2.0);
    all.push(x);
    (i % 2 == 0 ? left : right).push(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-8);
  EXPECT_EQ(left.min(), all.min());
  EXPECT_EQ(left.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats stats;
  stats.push(1.0);
  stats.push(3.0);
  RunningStats empty;
  stats.merge(empty);
  EXPECT_EQ(stats.count(), 2U);
  EXPECT_DOUBLE_EQ(stats.mean(), 2.0);
  empty.merge(stats);
  EXPECT_EQ(empty.count(), 2U);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(RunningStats, NumericallyStableOnShiftedData) {
  // Large common offset: naive sum-of-squares loses all precision.
  RunningStats stats;
  const double offset = 1e12;
  for (const double x : {offset + 1.0, offset + 2.0, offset + 3.0}) {
    stats.push(x);
  }
  EXPECT_NEAR(stats.variance(), 1.0, 1e-6);
}

TEST(Quantile, MedianOfOddSample) {
  EXPECT_DOUBLE_EQ(quantile({3.0, 1.0, 2.0}, 0.5), 2.0);
}

TEST(Quantile, InterpolatesBetweenPoints) {
  EXPECT_DOUBLE_EQ(quantile({0.0, 10.0}, 0.25), 2.5);
}

TEST(Quantile, Extremes) {
  std::vector<double> sample{5.0, 1.0, 9.0};
  EXPECT_DOUBLE_EQ(quantile(sample, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(sample, 1.0), 9.0);
}

TEST(Quantile, RejectsEmptyAndBadOrder) {
  EXPECT_THROW((void)quantile({}, 0.5), PreconditionError);
  EXPECT_THROW((void)quantile({1.0}, -0.1), PreconditionError);
  EXPECT_THROW((void)quantile({1.0}, 1.1), PreconditionError);
}

TEST(MeanStddevOf, MatchRunningStats) {
  const std::vector<double> sample{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean_of(sample), 2.5);
  RunningStats stats;
  for (const double x : sample) stats.push(x);
  EXPECT_DOUBLE_EQ(stddev_of(sample), stats.stddev());
}

TEST(JainIndex, KnownAllocations) {
  // Equal shares are perfectly fair; one-takes-all scores 1/n.
  EXPECT_DOUBLE_EQ(jain_index({3.0, 3.0, 3.0}), 1.0);
  EXPECT_DOUBLE_EQ(jain_index({1.0, 0.0, 0.0, 0.0}), 0.25);
  // (Σx)²/(n·Σx²) for {1, 2, 3}: 36 / (3·14).
  EXPECT_DOUBLE_EQ(jain_index({1.0, 2.0, 3.0}), 36.0 / 42.0);
  // Scale invariance.
  EXPECT_DOUBLE_EQ(jain_index({10.0, 20.0, 30.0}),
                   jain_index({1.0, 2.0, 3.0}));
}

TEST(JainIndex, DegenerateInputsAreFairNotNaN) {
  EXPECT_DOUBLE_EQ(jain_index({}), 1.0);
  EXPECT_DOUBLE_EQ(jain_index({0.0, 0.0}), 1.0);
  EXPECT_DOUBLE_EQ(jain_index({5.0}), 1.0);
  EXPECT_THROW((void)jain_index({-1.0, 2.0}), PreconditionError);
  EXPECT_THROW((void)jain_index({std::numeric_limits<double>::infinity()}),
               PreconditionError);
}

TEST(HitRate, RatesAreNeverNaN) {
  HitRate rate;
  EXPECT_EQ(rate.trials(), 0u);
  EXPECT_DOUBLE_EQ(rate.hit_rate(), 0.0);
  EXPECT_DOUBLE_EQ(rate.miss_rate(), 0.0);
  rate.push(true);
  rate.push(true);
  rate.push(false);
  EXPECT_EQ(rate.trials(), 3u);
  EXPECT_EQ(rate.hits(), 2u);
  EXPECT_EQ(rate.misses(), 1u);
  EXPECT_DOUBLE_EQ(rate.hit_rate(), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(rate.miss_rate(), 1.0 - 2.0 / 3.0);
}

TEST(ImbalanceOverBusy, SharedDefinition) {
  EXPECT_DOUBLE_EQ(imbalance_over_busy({4.0, 5.0}), 0.25);
  // Idle workers are excluded, not folded in as +infinity.
  EXPECT_DOUBLE_EQ(imbalance_over_busy({0.0, 4.0, 5.0}), 0.25);
  EXPECT_DOUBLE_EQ(imbalance_over_busy({0.0, 5.0}), 0.0);
  EXPECT_DOUBLE_EQ(imbalance_over_busy({}), 0.0);
  EXPECT_DOUBLE_EQ(imbalance_over_busy({5.0, 5.0, 5.0}), 0.0);
  EXPECT_EQ(count_idle({0.0, 4.0, 0.0}), 2U);
  EXPECT_EQ(count_idle({1.0}), 0U);
}

TEST(Histogram, BinsAndClamping) {
  Histogram hist(0.0, 10.0, 5);
  hist.push(0.5);    // bin 0
  hist.push(9.99);   // bin 4
  hist.push(-3.0);   // clamped to bin 0
  hist.push(100.0);  // clamped to bin 4
  hist.push(5.0);    // bin 2
  EXPECT_EQ(hist.total(), 5U);
  EXPECT_EQ(hist.count(0), 2U);
  EXPECT_EQ(hist.count(2), 1U);
  EXPECT_EQ(hist.count(4), 2U);
  EXPECT_DOUBLE_EQ(hist.bin_lo(1), 2.0);
  EXPECT_DOUBLE_EQ(hist.bin_hi(1), 4.0);
}

TEST(Histogram, AsciiHasOneRowPerBin) {
  Histogram hist(0.0, 1.0, 4);
  hist.push(0.1);
  const std::string art = hist.ascii(10);
  EXPECT_EQ(std::count(art.begin(), art.end(), '\n'), 4);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 0.0, 3), PreconditionError);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), PreconditionError);
}

// Regression: push() used to cast the scaled position to long long
// *before* clamping — undefined behavior for NaN and ±inf samples (the
// cast of an out-of-range double is UB, caught by UBSan on this test).
TEST(Histogram, InfinitiesClampToBoundaryBins) {
  Histogram hist(0.0, 10.0, 5);
  hist.push(std::numeric_limits<double>::infinity());
  hist.push(-std::numeric_limits<double>::infinity());
  EXPECT_EQ(hist.total(), 2U);
  EXPECT_EQ(hist.count(0), 1U);
  EXPECT_EQ(hist.count(4), 1U);
  EXPECT_EQ(hist.nan_count(), 0U);
}

TEST(Histogram, NanIsCountedButNeverBinned) {
  Histogram hist(0.0, 10.0, 5);
  hist.push(std::nan(""));
  hist.push(-std::nan(""));
  hist.push(5.0);
  EXPECT_EQ(hist.nan_count(), 2U);
  EXPECT_EQ(hist.total(), 1U);  // only the finite sample is binned
  EXPECT_EQ(hist.count(2), 1U);
  for (const std::size_t bin : {0UL, 1UL, 3UL, 4UL}) {
    EXPECT_EQ(hist.count(bin), 0U);
  }
}

TEST(P2Quantile, ExactForUpToFiveSamples) {
  // Below the five-marker warm-up the estimator must equal the batch
  // quantile() oracle bit for bit, in any insertion order.
  const std::vector<double> sample{7.0, 1.0, 4.0, 9.0, 2.0};
  for (std::size_t n = 1; n <= sample.size(); ++n) {
    const std::vector<double> prefix(sample.begin(),
                                     sample.begin() + static_cast<long>(n));
    for (const double q : {0.0, 0.25, 0.5, 0.95, 1.0}) {
      P2Quantile estimator(q);
      for (const double x : prefix) estimator.push(x);
      EXPECT_EQ(estimator.count(), n);
      EXPECT_DOUBLE_EQ(estimator.value(), quantile(prefix, q));
    }
  }
}

TEST(P2Quantile, TracksTheBatchOracleOnLargeSamples) {
  Rng rng(123);
  std::vector<double> uniform;
  std::vector<double> skewed;
  for (int i = 0; i < 20000; ++i) {
    uniform.push_back(rng.uniform(0.0, 100.0));
    skewed.push_back(rng.lognormal(0.0, 1.0));
  }
  for (const auto* sample : {&uniform, &skewed}) {
    for (const double q : {0.5, 0.95, 0.99}) {
      P2Quantile estimator(q);
      for (const double x : *sample) estimator.push(x);
      const double exact = quantile(*sample, q);
      // P² is an approximation; a few percent of the exact value is the
      // accuracy class the original paper reports.
      EXPECT_NEAR(estimator.value(), exact, 0.05 * std::abs(exact) + 1e-9)
          << "q = " << q;
    }
  }
}

TEST(P2Quantile, IsDeterministic) {
  Rng rng_a(7);
  Rng rng_b(7);
  P2Quantile a(0.95);
  P2Quantile b(0.95);
  for (int i = 0; i < 1000; ++i) {
    a.push(rng_a.lognormal(0.0, 1.0));
    b.push(rng_b.lognormal(0.0, 1.0));
  }
  EXPECT_EQ(a.value(), b.value());
}

TEST(P2Quantile, RejectsBadInput) {
  EXPECT_THROW(P2Quantile(1.5), PreconditionError);
  EXPECT_THROW(P2Quantile(-0.1), PreconditionError);
  P2Quantile estimator(0.5);
  EXPECT_THROW((void)estimator.value(), PreconditionError);
  EXPECT_THROW(estimator.push(std::nan("")), PreconditionError);
  // Infinities would poison the markers (inf - inf) and NaN the estimate.
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_THROW(estimator.push(inf), PreconditionError);
  EXPECT_THROW(estimator.push(-inf), PreconditionError);
}

}  // namespace
}  // namespace nldl::util
