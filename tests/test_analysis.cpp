// Unit tests for the closed-form analysis formulas (paper Sections 2–3).
#include "dlt/analysis.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/assert.hpp"

namespace nldl::dlt {
namespace {

TEST(RemainingFraction, LinearLoadsLoseNothing) {
  for (const std::size_t p : {1UL, 2UL, 100UL}) {
    EXPECT_DOUBLE_EQ(remaining_fraction_homogeneous(p, 1.0), 0.0);
  }
}

TEST(RemainingFraction, QuadraticKnownValues) {
  EXPECT_DOUBLE_EQ(remaining_fraction_homogeneous(2, 2.0), 0.5);
  EXPECT_DOUBLE_EQ(remaining_fraction_homogeneous(4, 2.0), 0.75);
  EXPECT_DOUBLE_EQ(remaining_fraction_homogeneous(100, 2.0), 0.99);
}

TEST(RemainingFraction, CubicGrowsFaster) {
  EXPECT_DOUBLE_EQ(remaining_fraction_homogeneous(4, 3.0), 1.0 - 1.0 / 16.0);
  // For fixed p, higher alpha leaves more work undone.
  EXPECT_GT(remaining_fraction_homogeneous(8, 3.0),
            remaining_fraction_homogeneous(8, 2.0));
}

TEST(RemainingFraction, MonotoneInP) {
  double previous = -1.0;
  for (std::size_t p = 1; p <= 256; p *= 2) {
    const double fraction = remaining_fraction_homogeneous(p, 2.0);
    EXPECT_GT(fraction, previous);
    previous = fraction;
  }
  EXPECT_LT(previous, 1.0);
}

TEST(RemainingFraction, SinglgetProcessorDoesAllWork) {
  EXPECT_DOUBLE_EQ(remaining_fraction_homogeneous(1, 3.0), 0.0);
}

TEST(SortingFraction, KnownValues) {
  // log p / log N is base-invariant.
  EXPECT_NEAR(sorting_remaining_fraction(1024.0, 2), 0.1, 1e-12);
  EXPECT_NEAR(sorting_remaining_fraction(1 << 20, 32), 0.25, 1e-12);
}

TEST(SortingFraction, VanishesForLargeN) {
  EXPECT_LT(sorting_remaining_fraction(1e18, 64), 0.11);
  EXPECT_GT(sorting_remaining_fraction(100.0, 64), 0.8);
}

TEST(SortingFraction, SingleProcessorIsZero) {
  EXPECT_DOUBLE_EQ(sorting_remaining_fraction(1e6, 1), 0.0);
}

TEST(Oversampling, IsLogSquared) {
  EXPECT_NEAR(sample_sort_oversampling(1024.0), 100.0, 1e-9);  // log2 = 10
  EXPECT_NEAR(sample_sort_oversampling(1 << 16), 256.0, 1e-9);
}

TEST(StepCosts, Step2DominatesStep1ForLargeN) {
  // s·p·log(s·p) = o(N·log p): preprocessing is master-side cheap.
  const double n = 1e8;
  for (const std::size_t p : {4UL, 64UL, 256UL}) {
    EXPECT_LT(sample_sort_step1_cost(n, p), sample_sort_step2_cost(n, p));
  }
}

TEST(StepCosts, Step3IsTheParallelShare) {
  const double n = 1 << 20;
  const std::size_t p = 16;
  EXPECT_NEAR(sample_sort_step3_cost(n, p),
              n / 16.0 * 20.0, 1e-6);
}

TEST(MaxBucketBound, ShrinksTowardPerfectShare) {
  const std::size_t p = 10;
  // Slack (1/ln N)^(1/3) decreases with N.
  const double loose = max_bucket_bound(1e3, p) / (1e3 / 10.0);
  const double tight = max_bucket_bound(1e12, p) / (1e12 / 10.0);
  EXPECT_GT(loose, tight);
  EXPECT_GT(tight, 1.0);
  EXPECT_LT(tight, 1.5);
}

TEST(MaxBucketBound, ProbabilityDecays) {
  EXPECT_NEAR(max_bucket_bound_probability(1e6), 1e-2, 1e-9);
  EXPECT_GT(max_bucket_bound_probability(1e3),
            max_bucket_bound_probability(1e9));
}

TEST(Analysis, PreconditionsEnforced) {
  EXPECT_THROW((void)remaining_fraction_homogeneous(0, 2.0),
               util::PreconditionError);
  EXPECT_THROW((void)remaining_fraction_homogeneous(2, 0.5),
               util::PreconditionError);
  EXPECT_THROW((void)sorting_remaining_fraction(1.0, 2),
               util::PreconditionError);
  EXPECT_THROW((void)sample_sort_oversampling(0.5),
               util::PreconditionError);
  EXPECT_THROW((void)max_bucket_bound(0.5, 2), util::PreconditionError);
}

}  // namespace
}  // namespace nldl::dlt
