// Unit tests for the closed-form analysis formulas (paper Sections 2–3).
#include "dlt/analysis.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "dlt/nonlinear_dlt.hpp"
#include "platform/platform.hpp"
#include "sim/engine.hpp"
#include "util/assert.hpp"

namespace nldl::dlt {
namespace {

TEST(RemainingFraction, LinearLoadsLoseNothing) {
  for (const std::size_t p : {1UL, 2UL, 100UL}) {
    EXPECT_DOUBLE_EQ(remaining_fraction_homogeneous(p, 1.0), 0.0);
  }
}

TEST(RemainingFraction, QuadraticKnownValues) {
  EXPECT_DOUBLE_EQ(remaining_fraction_homogeneous(2, 2.0), 0.5);
  EXPECT_DOUBLE_EQ(remaining_fraction_homogeneous(4, 2.0), 0.75);
  EXPECT_DOUBLE_EQ(remaining_fraction_homogeneous(100, 2.0), 0.99);
}

TEST(RemainingFraction, CubicGrowsFaster) {
  EXPECT_DOUBLE_EQ(remaining_fraction_homogeneous(4, 3.0), 1.0 - 1.0 / 16.0);
  // For fixed p, higher alpha leaves more work undone.
  EXPECT_GT(remaining_fraction_homogeneous(8, 3.0),
            remaining_fraction_homogeneous(8, 2.0));
}

TEST(RemainingFraction, MonotoneInP) {
  double previous = -1.0;
  for (std::size_t p = 1; p <= 256; p *= 2) {
    const double fraction = remaining_fraction_homogeneous(p, 2.0);
    EXPECT_GT(fraction, previous);
    previous = fraction;
  }
  EXPECT_LT(previous, 1.0);
}

TEST(RemainingFraction, SinglgetProcessorDoesAllWork) {
  EXPECT_DOUBLE_EQ(remaining_fraction_homogeneous(1, 3.0), 0.0);
}

TEST(SortingFraction, KnownValues) {
  // log p / log N is base-invariant.
  EXPECT_NEAR(sorting_remaining_fraction(1024.0, 2), 0.1, 1e-12);
  EXPECT_NEAR(sorting_remaining_fraction(1 << 20, 32), 0.25, 1e-12);
}

TEST(SortingFraction, VanishesForLargeN) {
  EXPECT_LT(sorting_remaining_fraction(1e18, 64), 0.11);
  EXPECT_GT(sorting_remaining_fraction(100.0, 64), 0.8);
}

TEST(SortingFraction, SingleProcessorIsZero) {
  EXPECT_DOUBLE_EQ(sorting_remaining_fraction(1e6, 1), 0.0);
}

TEST(Oversampling, IsLogSquared) {
  EXPECT_NEAR(sample_sort_oversampling(1024.0), 100.0, 1e-9);  // log2 = 10
  EXPECT_NEAR(sample_sort_oversampling(1 << 16), 256.0, 1e-9);
}

TEST(StepCosts, Step2DominatesStep1ForLargeN) {
  // s·p·log(s·p) = o(N·log p): preprocessing is master-side cheap.
  const double n = 1e8;
  for (const std::size_t p : {4UL, 64UL, 256UL}) {
    EXPECT_LT(sample_sort_step1_cost(n, p), sample_sort_step2_cost(n, p));
  }
}

TEST(StepCosts, Step3IsTheParallelShare) {
  const double n = 1 << 20;
  const std::size_t p = 16;
  EXPECT_NEAR(sample_sort_step3_cost(n, p),
              n / 16.0 * 20.0, 1e-6);
}

TEST(MaxBucketBound, ShrinksTowardPerfectShare) {
  const std::size_t p = 10;
  // Slack (1/ln N)^(1/3) decreases with N.
  const double loose = max_bucket_bound(1e3, p) / (1e3 / 10.0);
  const double tight = max_bucket_bound(1e12, p) / (1e12 / 10.0);
  EXPECT_GT(loose, tight);
  EXPECT_GT(tight, 1.0);
  EXPECT_LT(tight, 1.5);
}

TEST(MaxBucketBound, ProbabilityDecays) {
  EXPECT_NEAR(max_bucket_bound_probability(1e6), 1e-2, 1e-9);
  EXPECT_GT(max_bucket_bound_probability(1e3),
            max_bucket_bound_probability(1e9));
}

TEST(Analysis, PreconditionsEnforced) {
  EXPECT_THROW((void)remaining_fraction_homogeneous(0, 2.0),
               util::PreconditionError);
  EXPECT_THROW((void)remaining_fraction_homogeneous(2, 0.5),
               util::PreconditionError);
  EXPECT_THROW((void)sorting_remaining_fraction(1.0, 2),
               util::PreconditionError);
  EXPECT_THROW((void)sample_sort_oversampling(0.5),
               util::PreconditionError);
  EXPECT_THROW((void)max_bucket_bound(0.5, 2), util::PreconditionError);
}

// --- Makespan predictions as scheduler priorities ---------------------------
//
// The online subsystem's SPMF scheduler ranks queued jobs by the predicted
// makespan of dlt::nonlinear_parallel_single_round / _one_port_. These
// tests pin (a) that the predictions agree with what sim::Engine actually
// simulates, and (b) exactly where nonlinearity breaks the classical
// size-based intuition those predictions replace.

TEST(MakespanPrediction, ParallelPredictionMatchesTheSimulation) {
  const std::vector<platform::Platform> platforms{
      platform::Platform::homogeneous(4),
      platform::Platform::two_class(6, 1.0, 4.0),
      platform::Platform::from_speeds({0.5, 1.0, 2.0, 8.0}, 0.7)};
  for (const auto& plat : platforms) {
    for (const double alpha : {1.0, 1.5, 2.0, 3.0}) {
      const auto alloc =
          nonlinear_parallel_single_round(plat, 500.0, alpha);
      const sim::Engine engine(plat, {alpha});
      const auto result = engine.run(alloc.to_schedule(),
                                     sim::CommModelKind::kParallelLinks);
      EXPECT_NEAR(result.makespan, alloc.makespan,
                  1e-6 * alloc.makespan)
          << "alpha = " << alpha << ", p = " << plat.size();
    }
  }
}

TEST(MakespanPrediction, OnePortPredictionMatchesTheSimulation) {
  const auto plat = platform::Platform::two_class(4, 1.0, 2.0);
  for (const double alpha : {1.0, 2.0, 3.0}) {
    const auto alloc = nonlinear_one_port_single_round(plat, 200.0, alpha);
    const sim::Engine engine(plat, {alpha});
    const auto result =
        engine.run(alloc.to_schedule(), sim::CommModelKind::kOnePort);
    EXPECT_NEAR(result.makespan, alloc.makespan, 1e-6 * alloc.makespan)
        << "alpha = " << alpha;
  }
}

TEST(MakespanPrediction, MonotoneInLoadWithinOneJobClass) {
  // Within a fixed alpha the prediction IS monotone in job size — a
  // larger load can never finish earlier.
  const auto plat = platform::Platform::homogeneous(4);
  for (const double alpha : {1.0, 2.0}) {
    double previous = 0.0;
    for (const double load : {50.0, 100.0, 200.0, 400.0}) {
      const double makespan =
          nonlinear_parallel_single_round(plat, load, alpha).makespan;
      EXPECT_GT(makespan, previous);
      previous = makespan;
    }
  }
}

TEST(MakespanPrediction, SizeOrderBreaksAcrossJobClasses) {
  // ACROSS job classes monotonicity in size fails: on 4 homogeneous
  // workers (c = w = 1) a 400-unit linear job is predicted at T = 200
  // while a 60-unit quadratic job needs T = 240 (n = 15 per worker,
  // 15 + 15² = 240). Smallest-size-first would run the quadratic job
  // first and be wrong — the reason online::SpmfScheduler ranks by
  // predicted makespan, not load.
  const auto plat = platform::Platform::homogeneous(4);
  const double linear_big =
      nonlinear_parallel_single_round(plat, 400.0, 1.0).makespan;
  const double quadratic_small =
      nonlinear_parallel_single_round(plat, 60.0, 2.0).makespan;
  EXPECT_NEAR(linear_big, 200.0, 1e-6);
  EXPECT_NEAR(quadratic_small, 240.0, 1e-6);
  EXPECT_LT(linear_big, quadratic_small);
}

}  // namespace
}  // namespace nldl::dlt
