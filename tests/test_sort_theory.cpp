// Monte-Carlo tests for the Theorem B.4 bucket-size bound (Section 3.1/3.2).
#include "sort/theory.hpp"

#include <gtest/gtest.h>

#include "dlt/analysis.hpp"
#include "util/assert.hpp"

namespace nldl::sort {
namespace {

TEST(BucketBound, ConfiguredFromTheorem) {
  const auto check = validate_max_bucket_bound(100000, 10, 5, 1);
  EXPECT_EQ(check.n, 100000U);
  EXPECT_EQ(check.p, 10U);
  EXPECT_EQ(check.trials, 5U);
  EXPECT_DOUBLE_EQ(check.threshold, dlt::max_bucket_bound(100000.0, 10));
  EXPECT_DOUBLE_EQ(check.probability_bound,
                   dlt::max_bucket_bound_probability(100000.0));
}

TEST(BucketBound, ViolationRateIsRare) {
  // The theorem promises violations with probability <= N^(-1/3)
  // (≈ 2.2 % at N = 10^5). Allow generous Monte-Carlo slack.
  const auto check = validate_max_bucket_bound(100000, 8, 200, 7);
  EXPECT_LE(check.violation_rate, 3.0 * check.probability_bound + 0.05);
}

TEST(BucketBound, MeanMaxIsCloseToExpected) {
  const auto check = validate_max_bucket_bound(200000, 10, 100, 11);
  // With s = log²N oversampling the expected MaxSize/(N/p) is ~1.0–1.1.
  EXPECT_GE(check.mean_max_over_expected, 1.0);
  EXPECT_LE(check.mean_max_over_expected, 1.2);
}

TEST(BucketBound, OversamplingIsLogSquared) {
  const auto check = validate_max_bucket_bound(1 << 16, 4, 2, 3);
  EXPECT_EQ(check.oversampling, 256U);
}

TEST(BucketBound, RejectsBadInput) {
  EXPECT_THROW((void)validate_max_bucket_bound(1, 4, 10, 1),
               util::PreconditionError);
  EXPECT_THROW((void)validate_max_bucket_bound(100, 1, 10, 1),
               util::PreconditionError);
  EXPECT_THROW((void)validate_max_bucket_bound(100, 4, 0, 1),
               util::PreconditionError);
}

TEST(BucketBoundHeterogeneous, BalancedSharesStayWithinSlack) {
  const std::vector<double> speeds{1.0, 2.0, 3.0, 4.0};
  const auto check =
      validate_max_bucket_bound_heterogeneous(200000, speeds, 100, 13);
  // Relative overshoot vs x_i·N should stay near 1.
  EXPECT_GE(check.mean_max_over_expected, 1.0);
  EXPECT_LE(check.mean_max_over_expected, 1.25);
  EXPECT_LE(check.violation_rate, 3.0 * check.probability_bound + 0.05);
}

TEST(BucketBoundHeterogeneous, DeterministicGivenSeed) {
  const std::vector<double> speeds{1.0, 5.0};
  const auto a =
      validate_max_bucket_bound_heterogeneous(50000, speeds, 20, 99);
  const auto b =
      validate_max_bucket_bound_heterogeneous(50000, speeds, 20, 99);
  EXPECT_EQ(a.violations, b.violations);
  EXPECT_DOUBLE_EQ(a.mean_max_over_expected, b.mean_max_over_expected);
}

}  // namespace
}  // namespace nldl::sort
