// Unit + property tests for the classical linear DLT allocators.
#include "dlt/linear_dlt.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "platform/speed_distributions.hpp"
#include "sim/simulator.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace nldl::dlt {
namespace {

using platform::Platform;

TEST(LinearParallel, HomogeneousSplitsEvenly) {
  const Platform plat = Platform::homogeneous(4, 1.0, 1.0);
  const Allocation alloc = linear_parallel_single_round(plat, 100.0);
  for (const double n : alloc.amounts) {
    EXPECT_DOUBLE_EQ(n, 25.0);
  }
  EXPECT_DOUBLE_EQ(alloc.makespan, 50.0);  // (c + w) · 25
  EXPECT_DOUBLE_EQ(alloc.total(), 100.0);
}

TEST(LinearParallel, AllWorkersFinishSimultaneously) {
  const Platform plat = Platform::from_speeds({1.0, 3.0, 7.0}, 2.0);
  const Allocation alloc = linear_parallel_single_round(plat, 42.0);
  for (std::size_t i = 0; i < plat.size(); ++i) {
    const double finish =
        (plat.c(i) + plat.w(i)) * alloc.amounts[i];
    EXPECT_NEAR(finish, alloc.makespan, 1e-9);
  }
  EXPECT_NEAR(alloc.total(), 42.0, 1e-9);
}

TEST(LinearParallel, SimulatorConfirmsPrediction) {
  const Platform plat = Platform::from_speeds({2.0, 5.0}, 0.5);
  const Allocation alloc = linear_parallel_single_round(plat, 10.0);
  const auto result = sim::simulate(plat, alloc.to_schedule());
  EXPECT_NEAR(result.makespan, alloc.makespan, 1e-9);
  // Every worker must finish at the makespan (optimality condition).
  for (const double finish : result.worker_finish) {
    EXPECT_NEAR(finish, result.makespan, 1e-9);
  }
}

TEST(LinearOnePort, ChainRelationHolds) {
  const Platform plat = Platform::from_speeds({1.0, 2.0, 4.0}, 1.0);
  const Allocation alloc = linear_one_port_single_round(plat, 30.0);
  // w_i · n_i = (c_{i+1} + w_{i+1}) · n_{i+1} along the send order.
  for (std::size_t i = 0; i + 1 < plat.size(); ++i) {
    EXPECT_NEAR(plat.w(i) * alloc.amounts[i],
                (plat.c(i + 1) + plat.w(i + 1)) * alloc.amounts[i + 1],
                1e-9);
  }
  EXPECT_NEAR(alloc.total(), 30.0, 1e-9);
}

TEST(LinearOnePort, SimulatorShowsSimultaneousFinish) {
  const Platform plat = Platform::from_speeds({3.0, 1.0, 2.0}, 0.7);
  const Allocation alloc = linear_one_port_single_round(plat, 50.0);
  sim::SimOptions options;
  options.comm_model = sim::CommModel::kOnePort;
  const auto result = sim::simulate(plat, alloc.to_schedule(), options);
  for (const double finish : result.worker_finish) {
    EXPECT_NEAR(finish, result.makespan, 1e-8);
  }
  EXPECT_NEAR(result.makespan, alloc.makespan, 1e-8);
}

TEST(LinearOnePort, CustomOrderIsRespected) {
  const Platform plat = Platform::from_speeds({1.0, 10.0}, 1.0);
  const std::vector<std::size_t> order{1, 0};
  const Allocation alloc = linear_one_port_single_round(plat, 10.0, order);
  sim::SimOptions options;
  options.comm_model = sim::CommModel::kOnePort;
  const auto result = sim::simulate(plat, alloc.to_schedule(order), options);
  for (const double finish : result.worker_finish) {
    EXPECT_NEAR(finish, result.makespan, 1e-8);
  }
}

TEST(LinearOnePort, RejectsBadOrder) {
  const Platform plat = Platform::homogeneous(3);
  EXPECT_THROW(
      (void)linear_one_port_single_round(plat, 1.0, {0, 1}),
      util::PreconditionError);
  EXPECT_THROW(
      (void)linear_one_port_single_round(plat, 1.0, {0, 1, 1}),
      util::PreconditionError);
  EXPECT_THROW(
      (void)linear_one_port_single_round(plat, 1.0, {0, 1, 3}),
      util::PreconditionError);
}

TEST(OnePortOptimalOrder, SortsByBandwidth) {
  std::vector<platform::Processor> workers{
      {3.0, 1.0}, {1.0, 1.0}, {2.0, 1.0}};
  const Platform plat{std::move(workers)};
  const auto order = one_port_optimal_order(plat);
  EXPECT_EQ(order, (std::vector<std::size_t>{1, 2, 0}));
}

TEST(OnePortOptimalOrder, BeatsOrEqualsReversedOrder) {
  util::Rng rng(1234);
  for (int rep = 0; rep < 20; ++rep) {
    std::vector<platform::Processor> workers;
    for (int i = 0; i < 5; ++i) {
      workers.push_back(
          {rng.uniform(0.1, 3.0), rng.uniform(0.1, 3.0)});
    }
    const Platform plat{std::move(workers)};
    const auto good = one_port_optimal_order(plat);
    auto bad = good;
    std::reverse(bad.begin(), bad.end());
    const double t_good =
        linear_one_port_single_round(plat, 100.0, good).makespan;
    const double t_bad =
        linear_one_port_single_round(plat, 100.0, bad).makespan;
    EXPECT_LE(t_good, t_bad + 1e-9);
  }
}

TEST(MultiRound, SplitsIntoEqualPieces) {
  Allocation alloc;
  alloc.amounts = {8.0, 4.0};
  const auto schedule = multi_round_schedule(alloc, 4);
  ASSERT_EQ(schedule.size(), 8U);
  EXPECT_DOUBLE_EQ(schedule[0].size, 2.0);
  EXPECT_DOUBLE_EQ(schedule[1].size, 1.0);
  double total = 0.0;
  for (const auto& chunk : schedule) total += chunk.size;
  EXPECT_DOUBLE_EQ(total, 12.0);
}

TEST(MultiRound, ReducesRampUpOnOnePort) {
  // With one-port comms and several workers, multi-round lets late workers
  // start earlier, never hurting the makespan for linear loads.
  const Platform plat = Platform::from_speeds({1.0, 1.0, 1.0}, 1.0);
  const Allocation alloc = linear_one_port_single_round(plat, 30.0);
  sim::SimOptions options;
  options.comm_model = sim::CommModel::kOnePort;
  const double single = sim::simulate(plat, alloc.to_schedule(), options)
                            .makespan;
  const double multi =
      sim::simulate(plat, multi_round_schedule(alloc, 8), options).makespan;
  EXPECT_LE(multi, single + 1e-9);
}

// Property sweep: the parallel-links closed form is optimal — no transfer
// of load between any pair of workers can reduce the makespan.
class LinearOptimalityProperty : public ::testing::TestWithParam<int> {};

TEST_P(LinearOptimalityProperty, PerturbationNeverImproves) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 31 + 7);
  platform::SpeedModelParams params;
  const platform::Platform plat = platform::make_platform(
      platform::SpeedModel::kUniform, 6, rng, params);
  const Allocation alloc = linear_parallel_single_round(plat, 100.0);

  auto makespan_of = [&](const std::vector<double>& amounts) {
    double worst = 0.0;
    for (std::size_t i = 0; i < amounts.size(); ++i) {
      worst = std::max(worst,
                       (plat.c(i) + plat.w(i)) * amounts[i]);
    }
    return worst;
  };

  const double base = makespan_of(alloc.amounts);
  for (int rep = 0; rep < 30; ++rep) {
    auto perturbed = alloc.amounts;
    const auto from = static_cast<std::size_t>(rng.uniform_int(0, 5));
    const auto to = static_cast<std::size_t>(rng.uniform_int(0, 5));
    if (from == to) continue;
    const double delta = rng.uniform(0.0, perturbed[from]);
    perturbed[from] -= delta;
    perturbed[to] += delta;
    EXPECT_GE(makespan_of(perturbed), base - 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomPlatforms, LinearOptimalityProperty,
                         ::testing::Range(0, 10));

}  // namespace
}  // namespace nldl::dlt
