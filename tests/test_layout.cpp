// Unit + property tests for integer grid layouts (exact-cover discretization).
#include "partition/layout.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "platform/speed_distributions.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace nldl::partition {
namespace {

TEST(Apportion, ExactDivision) {
  EXPECT_EQ(apportion({1.0, 1.0, 2.0}, 8),
            (std::vector<long long>{2, 2, 4}));
}

TEST(Apportion, LargestRemainderWins) {
  // Shares 3.6 / 2.4: remainders 0.6 vs 0.4 → 4 / 2.
  EXPECT_EQ(apportion({0.6, 0.4}, 6), (std::vector<long long>{4, 2}));
}

TEST(Apportion, SumIsExact) {
  util::Rng rng(8);
  for (int rep = 0; rep < 50; ++rep) {
    const auto parts = static_cast<std::size_t>(rng.uniform_int(1, 20));
    std::vector<double> weights;
    for (std::size_t i = 0; i < parts; ++i) {
      weights.push_back(rng.uniform(0.0, 1.0) + 1e-9);
    }
    const long long total = rng.uniform_int(0, 1000);
    const auto out = apportion(weights, total);
    EXPECT_EQ(std::accumulate(out.begin(), out.end(), 0LL), total);
  }
}

TEST(Apportion, RejectsBadInput) {
  EXPECT_THROW((void)apportion({}, 5), util::PreconditionError);
  EXPECT_THROW((void)apportion({1.0}, -1), util::PreconditionError);
  EXPECT_THROW((void)apportion({-1.0, 2.0}, 5), util::PreconditionError);
  EXPECT_THROW((void)apportion({0.0, 0.0}, 5), util::PreconditionError);
}

TEST(Discretize, EqualQuadrants) {
  const auto part = peri_sum_partition(std::vector<double>(4, 1.0));
  const auto layout = discretize(part, 100);
  EXPECT_TRUE(verify_exact_cover(layout));
  for (const IRect& rect : layout.rects) {
    EXPECT_EQ(rect.area(), 2500);
  }
  EXPECT_EQ(layout.total_half_perimeter, 4 * 100);
  EXPECT_NEAR(layout.max_share_error, 0.0, 1e-12);
}

TEST(Discretize, CoverSurvivesAwkwardN) {
  const auto part = peri_sum_partition({0.37, 0.21, 0.42});
  for (const long long n : {7LL, 13LL, 100LL, 101LL}) {
    const auto layout = discretize(part, n);
    EXPECT_TRUE(verify_exact_cover(layout)) << "n = " << n;
  }
}

TEST(Discretize, ShareErrorShrinksWithN) {
  const auto part = peri_sum_partition({0.123, 0.456, 0.421});
  const auto coarse = discretize(part, 10);
  const auto fine = discretize(part, 1000);
  EXPECT_LT(fine.max_share_error, coarse.max_share_error + 1e-12);
  EXPECT_LT(fine.max_share_error, 0.01);
}

TEST(Discretize, RejectsBadGrid) {
  const auto part = peri_sum_partition({1.0});
  EXPECT_THROW((void)discretize(part, 0), util::PreconditionError);
}

TEST(VerifyExactCover, DetectsOverlap) {
  GridLayout layout;
  layout.n = 10;
  layout.rects = {{0, 0, 6, 10}, {5, 0, 5, 10}};  // overlap in column 5
  EXPECT_FALSE(verify_exact_cover(layout));
}

TEST(VerifyExactCover, DetectsGap) {
  GridLayout layout;
  layout.n = 10;
  layout.rects = {{0, 0, 4, 10}, {5, 0, 5, 10}};  // column 4 uncovered
  EXPECT_FALSE(verify_exact_cover(layout));
}

TEST(VerifyExactCover, DetectsOutOfBounds) {
  GridLayout layout;
  layout.n = 10;
  layout.rects = {{0, 0, 11, 10}};
  EXPECT_FALSE(verify_exact_cover(layout));
}

// Property: discretized PERI-SUM layouts exactly cover the grid and their
// integer half-perimeter stays close to the continuous cost × N.
class LayoutProperty
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(LayoutProperty, CoverAndCost) {
  const auto [p, n] = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(p) * 1000 +
                static_cast<std::uint64_t>(n));
  const auto plat = platform::make_platform(
      platform::SpeedModel::kLogNormal, static_cast<std::size_t>(p), rng);
  const auto part = peri_sum_partition(plat.speeds());
  const auto layout = discretize(part, n);
  ASSERT_TRUE(verify_exact_cover(layout));
  const double continuous_cost =
      part.total_half_perimeter * static_cast<double>(n);
  // Discretization adds at most ~2 units per rectangle.
  EXPECT_NEAR(static_cast<double>(layout.total_half_perimeter),
              continuous_cost, 2.0 * static_cast<double>(p) + 4.0);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, LayoutProperty,
    ::testing::Combine(::testing::Values(2, 5, 12, 40),
                       ::testing::Values(64, 100, 257, 1024)));

}  // namespace
}  // namespace nldl::partition
