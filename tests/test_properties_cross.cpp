// Cross-module metamorphic and conservation properties: invariances that
// must hold across the library's moving parts, regardless of parameters.
#include <gtest/gtest.h>

#include <cmath>

#include "core/nldl.hpp"

namespace nldl {
namespace {

// --- Simulator scaling: multiplying every chunk size by s multiplies all
// linear-cost times by s (and by s^alpha for the compute part).
class SimulatorScaling : public ::testing::TestWithParam<int> {};

TEST_P(SimulatorScaling, LinearTimesScaleLinearly) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 37 + 5);
  const auto plat = platform::make_platform(
      platform::SpeedModel::kUniform, 4, rng);
  std::vector<sim::ChunkAssignment> schedule;
  for (int i = 0; i < 10; ++i) {
    schedule.push_back(
        {static_cast<std::size_t>(rng.uniform_int(0, 3)),
         rng.uniform(0.1, 5.0)});
  }
  const double base = sim::simulate(plat, schedule).makespan;
  const double scale = 3.5;
  for (auto& chunk : schedule) chunk.size *= scale;
  const double scaled = sim::simulate(plat, schedule).makespan;
  EXPECT_NEAR(scaled, scale * base, 1e-9 * scaled);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimulatorScaling, ::testing::Range(0, 6));

// --- MapReduce mass conservation: with a sum reducer, the total output
// value equals the total emitted value, for any reducer count, pool, or
// combiner setting.
class EngineConservation : public ::testing::TestWithParam<int> {};

TEST_P(EngineConservation, SumIsPreserved) {
  const int variant = GetParam();
  util::ThreadPool pool(2);
  mapreduce::JobConfig config;
  config.num_splits = 25;
  config.num_reducers = static_cast<std::size_t>(1 + variant % 7);
  config.use_combiner = (variant % 2) == 0;
  config.pool = (variant % 3) == 0 ? &pool : nullptr;

  double emitted = 0.0;
  std::mutex mutex;
  const auto result = mapreduce::run_job(
      config,
      [&](std::size_t split, std::vector<mapreduce::KV>& out) {
        util::Rng rng(split * 1000 + static_cast<std::size_t>(variant));
        double local = 0.0;
        for (int i = 0; i < 40; ++i) {
          const auto key =
              static_cast<std::uint64_t>(rng.uniform_int(0, 12));
          const double value = rng.uniform(-5.0, 5.0);
          out.push_back({key, value});
          local += value;
        }
        std::lock_guard lock(mutex);
        emitted += local;
      },
      [](std::uint64_t, std::span<const double> values) {
        double sum = 0.0;
        for (const double v : values) sum += v;
        return sum;
      });

  double reduced = 0.0;
  for (const auto& kv : result.output) reduced += kv.value;
  EXPECT_NEAR(reduced, emitted, 1e-9 * std::max(1.0, std::abs(emitted)));
}

INSTANTIATE_TEST_SUITE_P(Variants, EngineConservation,
                         ::testing::Range(0, 12));

// --- Blocked outer product and the demand-driven counts must agree on
// who computes how many blocks.
TEST(CrossChecks, BlockedOuterProductUsesDemandDrivenCounts) {
  const std::size_t n = 120;
  const long long block = 12;
  const std::vector<double> speeds{1.0, 2.0, 3.0};
  std::vector<double> a(n, 1.0);
  std::vector<double> b(n, 1.0);
  const auto dist = linalg::outer_product_blocked(a, b, block, speeds);

  std::vector<double> tau(speeds.size());
  for (std::size_t i = 0; i < speeds.size(); ++i) {
    tau[i] = double(block) * double(block) / speeds[i];
  }
  const auto counts = partition::demand_driven_counts(tau, 100);
  for (std::size_t w = 0; w < speeds.size(); ++w) {
    EXPECT_EQ(dist.elements_per_worker[w], counts[w] * 2 * block);
  }
}

// --- Strategy evaluation consistency: Comm_het's volume equals the
// continuous PERI-SUM partition cost times N, and the discretized layout
// converges to it.
TEST(CrossChecks, StrategyVolumeMatchesGeometry) {
  const std::vector<double> speeds{1.0, 4.0, 4.0, 7.0};
  const double n = 2048.0;
  const auto eval = core::evaluate_strategy(
      core::Strategy::kHeterogeneousBlocks, speeds, n);
  const auto part = partition::peri_sum_partition(speeds);
  EXPECT_NEAR(eval.comm_volume, n * part.total_half_perimeter, 1e-9 * n);
  const auto layout =
      partition::discretize(part, static_cast<long long>(n));
  EXPECT_NEAR(static_cast<double>(layout.total_half_perimeter),
              eval.comm_volume,
              2.0 * static_cast<double>(speeds.size()) + 4.0);
}

// --- Nonlinear DLT degenerates continuously: alpha → 1⁺ approaches the
// linear closed form (no discontinuity at the boundary).
TEST(CrossChecks, NonlinearApproachesLinearAsAlphaTendsToOne) {
  const auto plat = platform::Platform::from_speeds({1.0, 2.0, 5.0}, 0.5);
  const auto linear = dlt::linear_parallel_single_round(plat, 60.0);
  double previous_gap = std::numeric_limits<double>::infinity();
  for (const double alpha : {1.5, 1.1, 1.01, 1.001}) {
    const auto nonlinear =
        dlt::nonlinear_parallel_single_round(plat, 60.0, alpha);
    double gap = 0.0;
    for (std::size_t i = 0; i < plat.size(); ++i) {
      gap = std::max(gap,
                     std::abs(nonlinear.amounts[i] - linear.amounts[i]));
    }
    EXPECT_LT(gap, previous_gap + 1e-12);
    previous_gap = gap;
  }
  EXPECT_LT(previous_gap, 0.05);
}

// --- Sample sort is invariant to a global shift of the keys (ordering
// is all that matters).
TEST(CrossChecks, SampleSortShiftInvariance) {
  util::Rng rng(11);
  std::vector<double> data(20000);
  for (double& v : data) v = rng.uniform();
  sort::SampleSortConfig config;
  config.num_buckets = 6;
  config.seed = 77;
  const auto sorted = sort::sample_sort(data, config);
  for (double& v : data) v += 1000.0;
  const auto shifted = sort::sample_sort(data, config);
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    ASSERT_NEAR(shifted[i], sorted[i] + 1000.0, 1e-9);
  }
}

// --- The Fig-4 runner's Comm_hom ratio must be reproducible from the
// strategy API on the same platform draw (no hidden state).
TEST(CrossChecks, ExperimentRunnerMatchesDirectEvaluation) {
  core::Fig4Config config;
  config.model = platform::SpeedModel::kUniform;
  config.processor_counts = {10};
  config.trials = 1;
  config.seed = 4242;
  const auto rows = core::run_fig4(config);

  util::Rng master(config.seed);
  util::Rng trial_rng = master.split();
  const auto plat = platform::make_platform(
      config.model, 10, trial_rng, config.model_params);
  const auto het = core::evaluate_strategy(
      core::Strategy::kHeterogeneousBlocks, plat.speeds(), 1.0);
  EXPECT_DOUBLE_EQ(rows[0].het.mean(), het.ratio_to_lower_bound);
}

}  // namespace
}  // namespace nldl
