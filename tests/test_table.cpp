// Unit tests for the tabular output writer.
#include "util/table.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>

#include "util/assert.hpp"

namespace nldl::util {
namespace {

TEST(FormatDouble, Precision) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(3.0, 0), "3");
  EXPECT_EQ(format_double(-0.5, 3), "-0.500");
}

TEST(Table, RejectsEmptyHeader) {
  EXPECT_THROW(Table({}), PreconditionError);
}

TEST(Table, RejectsRaggedRow) {
  Table table({"a", "b"});
  EXPECT_THROW(table.add_row({"1"}), PreconditionError);
  EXPECT_THROW(table.add_row({"1", "2", "3"}), PreconditionError);
}

TEST(Table, RowBuilderTypes) {
  Table table({"s", "d", "z", "ll", "i"});
  table.row()
      .cell("x")
      .cell(1.5, 1)
      .cell(std::size_t{7})
      .cell(9LL)
      .cell(-3)
      .done();
  ASSERT_EQ(table.num_rows(), 1U);
  EXPECT_EQ(table.cell(0, 0), "x");
  EXPECT_EQ(table.cell(0, 1), "1.5");
  EXPECT_EQ(table.cell(0, 2), "7");
  EXPECT_EQ(table.cell(0, 3), "9");
  EXPECT_EQ(table.cell(0, 4), "-3");
}

TEST(Table, CellAccessBounds) {
  Table table({"a"});
  table.add_row({"v"});
  EXPECT_THROW((void)table.cell(1, 0), PreconditionError);
  EXPECT_THROW((void)table.cell(0, 1), PreconditionError);
}

TEST(Table, PrintAlignsColumns) {
  Table table({"name", "v"});
  table.add_row({"a", "1"});
  table.add_row({"longer", "2"});
  std::ostringstream out;
  table.print(out);
  const std::string text = out.str();
  // Header row, separator, two data rows.
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 4);
  // All lines equal width (alignment).
  std::istringstream lines(text);
  std::string line;
  std::size_t width = 0;
  while (std::getline(lines, line)) {
    if (width == 0) width = line.size();
    EXPECT_EQ(line.size(), width);
  }
}

TEST(Table, CsvEscaping) {
  Table table({"a", "b"});
  table.add_row({"plain", "with,comma"});
  table.add_row({"quote\"inside", "line\nbreak"});
  std::ostringstream out;
  table.write_csv(out);
  const std::string csv = out.str();
  EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"quote\"\"inside\""), std::string::npos);
  EXPECT_NE(csv.find("\"line\nbreak\""), std::string::npos);
}

TEST(Table, SaveCsvRoundTrip) {
  Table table({"x"});
  table.add_row({"1"});
  const std::string path = ::testing::TempDir() + "nldl_table_test.csv";
  table.save_csv(path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "x");
  std::getline(in, line);
  EXPECT_EQ(line, "1");
}

}  // namespace
}  // namespace nldl::util
