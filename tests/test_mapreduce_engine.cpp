// Unit tests for the mini MapReduce engine.
#include "mapreduce/engine.hpp"

#include <gtest/gtest.h>

#include "util/assert.hpp"

namespace nldl::mapreduce {
namespace {

double sum_reducer(std::uint64_t, std::span<const double> values) {
  double sum = 0.0;
  for (const double v : values) sum += v;
  return sum;
}

TEST(Engine, WordCountStyleJob) {
  // Splits emit (key = value mod 3, 1.0); reduce counts occurrences.
  JobConfig config;
  config.num_splits = 9;
  config.num_reducers = 2;
  const auto result = run_job(
      config,
      [](std::size_t split, std::vector<KV>& out) {
        out.push_back(KV{split % 3, 1.0});
      },
      sum_reducer);
  ASSERT_EQ(result.output.size(), 3U);
  for (const KV& kv : result.output) {
    EXPECT_DOUBLE_EQ(kv.value, 3.0);
  }
  EXPECT_EQ(result.counters.map_tasks, 9U);
  EXPECT_EQ(result.counters.map_output_records, 9U);
  EXPECT_EQ(result.counters.reduce_groups, 3U);
}

TEST(Engine, OutputSortedByKey) {
  JobConfig config;
  config.num_splits = 10;
  config.num_reducers = 4;
  const auto result = run_job(
      config,
      [](std::size_t split, std::vector<KV>& out) {
        out.push_back(KV{9 - split, static_cast<double>(split)});
      },
      sum_reducer);
  for (std::size_t i = 1; i < result.output.size(); ++i) {
    EXPECT_LT(result.output[i - 1].key, result.output[i].key);
  }
}

TEST(Engine, CombinerShrinksShuffle) {
  JobConfig plain;
  plain.num_splits = 8;
  plain.num_reducers = 2;
  auto map_fn = [](std::size_t, std::vector<KV>& out) {
    for (int i = 0; i < 100; ++i) out.push_back(KV{7, 1.0});
  };
  const auto without = run_job(plain, map_fn, sum_reducer);

  JobConfig combined = plain;
  combined.use_combiner = true;
  const auto with = run_job(combined, map_fn, sum_reducer);

  EXPECT_EQ(without.counters.shuffle_bytes, 800U * sizeof(KV));
  EXPECT_EQ(with.counters.shuffle_bytes, 8U * sizeof(KV));
  // Same final answer.
  ASSERT_EQ(with.output.size(), 1U);
  EXPECT_DOUBLE_EQ(with.output[0].value, 800.0);
  EXPECT_DOUBLE_EQ(without.output[0].value, 800.0);
}

TEST(Engine, ParallelMatchesSerial) {
  auto map_fn = [](std::size_t split, std::vector<KV>& out) {
    for (std::size_t i = 0; i < 50; ++i) {
      out.push_back(KV{(split * 31 + i) % 17,
                       static_cast<double>(split) + 0.5});
    }
  };
  JobConfig serial;
  serial.num_splits = 40;
  serial.num_reducers = 5;
  const auto expected = run_job(serial, map_fn, sum_reducer);

  util::ThreadPool pool(2);
  JobConfig parallel = serial;
  parallel.pool = &pool;
  const auto actual = run_job(parallel, map_fn, sum_reducer);

  ASSERT_EQ(actual.output.size(), expected.output.size());
  for (std::size_t i = 0; i < actual.output.size(); ++i) {
    EXPECT_EQ(actual.output[i].key, expected.output[i].key);
    EXPECT_NEAR(actual.output[i].value, expected.output[i].value, 1e-9);
  }
}

TEST(Engine, EmptyJob) {
  JobConfig config;
  config.num_splits = 0;
  const auto result = run_job(
      config, [](std::size_t, std::vector<KV>&) {}, sum_reducer);
  EXPECT_TRUE(result.output.empty());
  EXPECT_EQ(result.counters.map_output_records, 0U);
}

TEST(Engine, RejectsBadConfig) {
  JobConfig config;
  config.num_reducers = 0;
  EXPECT_THROW((void)run_job(config,
                             [](std::size_t, std::vector<KV>&) {},
                             sum_reducer),
               util::PreconditionError);
  JobConfig ok;
  EXPECT_THROW((void)run_job(ok, MapFn{}, sum_reducer),
               util::PreconditionError);
  EXPECT_THROW((void)run_job(ok,
                             [](std::size_t, std::vector<KV>&) {},
                             ReduceFn{}),
               util::PreconditionError);
}

TEST(Engine, ReducerSeesAllValuesOfItsKey) {
  JobConfig config;
  config.num_splits = 6;
  config.num_reducers = 3;
  std::size_t max_group = 0;
  const auto result = run_job(
      config,
      [](std::size_t split, std::vector<KV>& out) {
        out.push_back(KV{0, static_cast<double>(split)});
      },
      [&](std::uint64_t, std::span<const double> values) {
        max_group = std::max(max_group, values.size());
        double sum = 0.0;
        for (const double v : values) sum += v;
        return sum;
      });
  EXPECT_EQ(max_group, 6U);
  ASSERT_EQ(result.output.size(), 1U);
  EXPECT_DOUBLE_EQ(result.output[0].value, 15.0);
}

}  // namespace
}  // namespace nldl::mapreduce
