// Tests for the 2.5D matmul communication model (ref [42] context).
#include "linalg/matmul_25d.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/assert.hpp"

namespace nldl::linalg {
namespace {

TEST(Grid25D, Validity) {
  EXPECT_TRUE(valid_25d_grid(16, 1));   // 4x4x1
  EXPECT_TRUE(valid_25d_grid(32, 2));   // 4x4x2
  EXPECT_TRUE(valid_25d_grid(64, 4));   // 4x4x4
  EXPECT_FALSE(valid_25d_grid(20, 2));  // 10 not a square
  EXPECT_FALSE(valid_25d_grid(16, 3));  // 3 does not divide 16
  EXPECT_FALSE(valid_25d_grid(0, 1));
  EXPECT_FALSE(valid_25d_grid(16, 0));
}

TEST(Comm25D, CEqualsOneIsClassical2D) {
  // 2N²/√p per processor — the SUMMA broadcast volume.
  const double words =
      matmul_25d_words_per_proc(1024.0, {16, 1});
  EXPECT_NEAR(words, 2.0 * 1024.0 * 1024.0 / 4.0, 1e-6);
}

TEST(Comm25D, ReplicationCutsBandwidth) {
  const double n = 4096.0;
  const double c1 = matmul_25d_words_per_proc(n, {64, 1});
  const double c4 = matmul_25d_words_per_proc(n, {64, 4});
  // Ideal factor √c = 2 on the broadcast term; reduction adds back a bit.
  EXPECT_LT(c4, c1);
  EXPECT_GT(c4, c1 / 2.5);
}

TEST(Comm25D, MemoryGrowsLinearlyInC) {
  const double n = 1024.0;
  const double m1 = matmul_25d_memory_per_proc(n, {64, 1});
  const double m4 = matmul_25d_memory_per_proc(n, {64, 4});
  EXPECT_NEAR(m4 / m1, 9.0 / 3.0, 1e-9);  // (2c+1)/3
}

TEST(Comm25D, TotalIsPerProcTimesP) {
  const Matmul25DParams params{36, 4};
  EXPECT_NEAR(matmul_25d_total_words(512.0, params),
              36.0 * matmul_25d_words_per_proc(512.0, params), 1e-9);
}

TEST(Comm25D, TracksBandwidthLowerBound) {
  // With M = memory_per_proc, the ITT bound is N³/(p·√M); 2.5D should sit
  // within a small constant of it for valid c.
  const double n = 8192.0;
  for (const std::size_t c : {1UL, 2UL, 4UL}) {
    const std::size_t p = 16 * c;
    const Matmul25DParams params{p, c};
    const double memory = matmul_25d_memory_per_proc(n, params);
    const double bound = matmul_bandwidth_lower_bound(n, p, memory);
    const double words = matmul_25d_words_per_proc(n, params);
    EXPECT_GE(words, 0.5 * bound);   // not magically below the bound
    EXPECT_LE(words, 8.0 * bound);   // within a small constant
  }
}

TEST(Comm25D, RejectsBadShapes) {
  EXPECT_THROW((void)matmul_25d_words_per_proc(16.0, {20, 2}),
               util::PreconditionError);
  EXPECT_THROW((void)matmul_25d_memory_per_proc(16.0, {20, 2}),
               util::PreconditionError);
  EXPECT_THROW((void)matmul_bandwidth_lower_bound(16.0, 4, 0.0),
               util::PreconditionError);
}

}  // namespace
}  // namespace nldl::linalg
