// Unit tests for the master→worker schedule simulator.
#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "sim/trace.hpp"
#include "util/assert.hpp"

namespace nldl::sim {
namespace {

using platform::Platform;

TEST(Simulate, SingleChunkTimeline) {
  const Platform plat = Platform::from_speeds({2.0}, 3.0);  // c=3, w=0.5
  const SimResult result = simulate(plat, {{0, 4.0}});
  ASSERT_EQ(result.spans.size(), 1U);
  const ChunkSpan& span = result.spans[0];
  EXPECT_DOUBLE_EQ(span.comm_start, 0.0);
  EXPECT_DOUBLE_EQ(span.comm_end, 12.0);       // 3 · 4
  EXPECT_DOUBLE_EQ(span.compute_start, 12.0);  // starts after full receipt
  EXPECT_DOUBLE_EQ(span.compute_end, 14.0);    // + 0.5 · 4
  EXPECT_DOUBLE_EQ(result.makespan, 14.0);
}

TEST(Simulate, ParallelLinksOverlapAcrossWorkers) {
  const Platform plat = Platform::homogeneous(2, 1.0, 1.0);
  const SimResult result = simulate(plat, {{0, 5.0}, {1, 5.0}});
  // Both communications start at t = 0 under parallel links.
  EXPECT_DOUBLE_EQ(result.spans[0].comm_start, 0.0);
  EXPECT_DOUBLE_EQ(result.spans[1].comm_start, 0.0);
  EXPECT_DOUBLE_EQ(result.makespan, 10.0);
}

TEST(Simulate, OnePortSerializesComms) {
  const Platform plat = Platform::homogeneous(2, 1.0, 1.0);
  SimOptions options;
  options.comm_model = CommModel::kOnePort;
  const SimResult result = simulate(plat, {{0, 5.0}, {1, 5.0}}, options);
  EXPECT_DOUBLE_EQ(result.spans[0].comm_start, 0.0);
  EXPECT_DOUBLE_EQ(result.spans[1].comm_start, 5.0);  // waits for port
  EXPECT_DOUBLE_EQ(result.makespan, 15.0);
}

TEST(Simulate, NonlinearComputeCost) {
  const Platform plat = Platform::homogeneous(1, 1.0, 2.0);
  SimOptions options;
  options.alpha = 2.0;
  const SimResult result = simulate(plat, {{0, 3.0}}, options);
  // comm 3, compute 2 · 3² = 18.
  EXPECT_DOUBLE_EQ(result.makespan, 21.0);
}

TEST(Simulate, MultiRoundPipelinesCommAndCompute) {
  // One worker, two chunks: the second chunk's comm overlaps the first
  // chunk's compute.
  const Platform plat = Platform::homogeneous(1, 1.0, 2.0);
  const SimResult result = simulate(plat, {{0, 2.0}, {0, 2.0}});
  const ChunkSpan& second = result.spans[1];
  EXPECT_DOUBLE_EQ(second.comm_start, 2.0);  // link free after first comm
  EXPECT_DOUBLE_EQ(second.comm_end, 4.0);
  // First compute runs [2, 6]; second starts at max(4, 6) = 6.
  EXPECT_DOUBLE_EQ(second.compute_start, 6.0);
  EXPECT_DOUBLE_EQ(result.makespan, 10.0);
}

TEST(Simulate, ZeroSizeChunksAreFree) {
  const Platform plat = Platform::homogeneous(2);
  const SimResult result = simulate(plat, {{0, 0.0}, {1, 3.0}});
  EXPECT_DOUBLE_EQ(result.worker_compute_time[0], 0.0);
  EXPECT_DOUBLE_EQ(result.makespan, 6.0);
}

TEST(Simulate, RejectsBadInput) {
  const Platform plat = Platform::homogeneous(1);
  EXPECT_THROW((void)simulate(plat, {{1, 1.0}}), util::PreconditionError);
  EXPECT_THROW((void)simulate(plat, {{0, -1.0}}), util::PreconditionError);
  SimOptions options;
  options.alpha = 0.5;
  EXPECT_THROW((void)simulate(plat, {{0, 1.0}}, options),
               util::PreconditionError);
}

TEST(Simulate, PerWorkerAccounting) {
  const Platform plat = Platform::from_speeds({1.0, 2.0});
  const SimResult result = simulate(plat, {{0, 2.0}, {1, 4.0}, {0, 1.0}});
  EXPECT_DOUBLE_EQ(result.worker_comm_time[0], 3.0);
  EXPECT_DOUBLE_EQ(result.worker_compute_time[0], 3.0);  // w=1
  EXPECT_DOUBLE_EQ(result.worker_compute_time[1], 2.0);  // w=0.5 · 4
}

TEST(LoadImbalance, PerfectBalanceIsZero) {
  SimResult result;
  result.worker_compute_time = {5.0, 5.0, 5.0};
  EXPECT_DOUBLE_EQ(result.load_imbalance(), 0.0);
}

TEST(LoadImbalance, MatchesDefinition) {
  SimResult result;
  result.worker_compute_time = {4.0, 5.0};
  EXPECT_DOUBLE_EQ(result.load_imbalance(), 0.25);
}

TEST(LoadImbalance, IdleWorkerIsExcludedAndCounted) {
  SimResult result;
  result.worker_compute_time = {0.0, 5.0};
  // The idle worker doesn't poison e with +inf; it is reported separately.
  EXPECT_DOUBLE_EQ(result.load_imbalance(), 0.0);
  EXPECT_EQ(result.idle_workers(), 1U);
  result.worker_compute_time = {0.0, 4.0, 5.0};
  EXPECT_DOUBLE_EQ(result.load_imbalance(), 0.25);
}

TEST(AsciiGantt, RendersOneRowPerWorker) {
  const Platform plat = Platform::from_speeds({1.0, 2.0});
  const SimResult result = simulate(plat, {{0, 4.0}, {1, 4.0}});
  const std::string art = ascii_gantt(plat, result, 40);
  EXPECT_EQ(std::count(art.begin(), art.end(), '\n'), 3);  // 2 rows + footer
  EXPECT_NE(art.find('#'), std::string::npos);  // some compute drawn
  EXPECT_NE(art.find('-'), std::string::npos);  // some comm drawn
}

}  // namespace
}  // namespace nldl::sim
