// Tests for the contract-checking macros themselves.
#include "util/assert.hpp"

#include <gtest/gtest.h>

#include <string>

namespace nldl::util {
namespace {

TEST(Contracts, RequirePassesOnTrue) {
  EXPECT_NO_THROW(NLDL_REQUIRE(1 + 1 == 2, "math works"));
}

TEST(Contracts, RequireThrowsPreconditionError) {
  EXPECT_THROW(NLDL_REQUIRE(false, "nope"), PreconditionError);
}

TEST(Contracts, RequireMessageCarriesContext) {
  try {
    NLDL_REQUIRE(2 < 1, "two is not less than one");
    FAIL() << "should have thrown";
  } catch (const PreconditionError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("2 < 1"), std::string::npos);
    EXPECT_NE(what.find("two is not less than one"), std::string::npos);
    EXPECT_NE(what.find("test_assert_contracts.cpp"), std::string::npos);
  }
}

TEST(Contracts, AssertThrowsInvariantError) {
  EXPECT_THROW(NLDL_ASSERT(false, "bug"), InvariantError);
}

TEST(Contracts, InvariantIsLogicError) {
  // Catchable as std::logic_error — callers can distinguish user errors
  // (invalid_argument) from library bugs (logic_error).
  EXPECT_THROW(NLDL_ASSERT(false, "bug"), std::logic_error);
  EXPECT_THROW(NLDL_REQUIRE(false, "user"), std::invalid_argument);
}

TEST(Contracts, SideEffectsEvaluateOnce) {
  int calls = 0;
  auto count = [&] {
    ++calls;
    return true;
  };
  NLDL_REQUIRE(count(), "");
  EXPECT_EQ(calls, 1);
  NLDL_ASSERT(count(), "");
  EXPECT_EQ(calls, 2);
}

}  // namespace
}  // namespace nldl::util
