// Unit + property tests for the PERI-SUM column-based partitioner
// (reference [41]) — the engine behind Comm_het.
#include "partition/peri_sum.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "partition/lower_bound.hpp"
#include "platform/speed_distributions.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace nldl::partition {
namespace {

constexpr double kTol = 1e-9;

void expect_valid_partition(const ColumnPartition& part,
                            const std::vector<double>& areas) {
  const double total =
      std::accumulate(areas.begin(), areas.end(), 0.0);
  // Areas proportional to the prescription.
  for (std::size_t i = 0; i < areas.size(); ++i) {
    EXPECT_NEAR(part.rects[i].area(), areas[i] / total, 1e-6)
        << "rect " << i;
  }
  // Total area is the unit square.
  double area_sum = 0.0;
  for (const Rect& rect : part.rects) area_sum += rect.area();
  EXPECT_NEAR(area_sum, 1.0, 1e-9);
  // No pairwise overlap.
  for (std::size_t i = 0; i < part.rects.size(); ++i) {
    for (std::size_t j = i + 1; j < part.rects.size(); ++j) {
      EXPECT_FALSE(part.rects[i].overlaps(part.rects[j]))
          << "rects " << i << " and " << j << " overlap";
    }
  }
  // All inside the unit square.
  for (const Rect& rect : part.rects) {
    EXPECT_GE(rect.x, -kTol);
    EXPECT_GE(rect.y, -kTol);
    EXPECT_LE(rect.x + rect.width, 1.0 + kTol);
    EXPECT_LE(rect.y + rect.height, 1.0 + kTol);
  }
}

TEST(PeriSumLowerBound, SquaresAreOptimal) {
  // Four equal areas: four half-unit squares achieve the bound exactly.
  const std::vector<double> areas(4, 0.25);
  EXPECT_NEAR(peri_sum_lower_bound(areas), 4.0, 1e-12);
  const auto part = peri_sum_partition(areas);
  EXPECT_NEAR(part.total_half_perimeter, 4.0, 1e-9);
}

TEST(PeriSum, SingleProcessorGetsTheWholeSquare) {
  const auto part = peri_sum_partition({7.0});
  ASSERT_EQ(part.rects.size(), 1U);
  EXPECT_NEAR(part.rects[0].area(), 1.0, 1e-12);
  EXPECT_NEAR(part.total_half_perimeter, 2.0, 1e-12);
}

TEST(PeriSum, TwoEqualProcessors) {
  const auto part = peri_sum_partition({1.0, 1.0});
  expect_valid_partition(part, {1.0, 1.0});
  // Best is two 1×½ rectangles: total half-perimeter 3.
  EXPECT_NEAR(part.total_half_perimeter, 3.0, 1e-9);
}

TEST(PeriSum, NormalizesUnscaledAreas) {
  const auto scaled = peri_sum_partition({10.0, 30.0, 60.0});
  const auto unit = peri_sum_partition({0.1, 0.3, 0.6});
  EXPECT_NEAR(scaled.total_half_perimeter, unit.total_half_perimeter, 1e-9);
}

TEST(PeriSum, InputOrderIsPreserved) {
  // Areas deliberately unsorted; rect i must match areas[i].
  const std::vector<double> areas{0.5, 0.1, 0.4};
  const auto part = peri_sum_partition(areas);
  expect_valid_partition(part, areas);
}

TEST(PeriSum, GuaranteeHoldsOnPaperPlatforms) {
  // Ĉ <= 1 + (5/4)·LB (and hence <= 7/4·LB) on the paper's random speeds.
  util::Rng rng(42);
  for (const auto model : {platform::SpeedModel::kUniform,
                           platform::SpeedModel::kLogNormal}) {
    for (const std::size_t p : {10UL, 40UL, 100UL}) {
      const auto plat = platform::make_platform(model, p, rng);
      const auto speeds = plat.speeds();
      const auto part = peri_sum_partition(speeds);
      const double lb = comm_lower_bound_unit(speeds);
      EXPECT_LE(part.total_half_perimeter, 1.0 + 1.25 * lb + 1e-9);
      EXPECT_GE(part.total_half_perimeter, lb - 1e-9);
    }
  }
}

TEST(PeriSum, NearOptimalInPractice) {
  // The paper observes Comm_het within ~2 % of the lower bound.
  util::Rng rng(7);
  for (int rep = 0; rep < 20; ++rep) {
    const auto plat = platform::make_platform(
        platform::SpeedModel::kUniform, 50, rng);
    const auto speeds = plat.speeds();
    const auto part = peri_sum_partition(speeds);
    const double lb = comm_lower_bound_unit(speeds);
    EXPECT_LE(part.total_half_perimeter / lb, 1.05);
  }
}

TEST(PeriSum, RejectsBadInput) {
  EXPECT_THROW((void)peri_sum_partition({}), util::PreconditionError);
  EXPECT_THROW((void)peri_sum_partition({1.0, 0.0}),
               util::PreconditionError);
  EXPECT_THROW((void)peri_sum_partition({1.0, -2.0}),
               util::PreconditionError);
}

TEST(ColumnPartitionWithSizes, HonorsStructure) {
  const std::vector<double> areas{0.1, 0.2, 0.3, 0.4};
  const auto part = column_partition_with_sizes(areas, {2, 2});
  expect_valid_partition(part, areas);
  EXPECT_EQ(part.columns.size(), 2U);
  EXPECT_EQ(part.columns[0].size(), 2U);
  EXPECT_EQ(part.columns[1].size(), 2U);
}

TEST(ColumnPartitionWithSizes, RejectsMismatchedSizes) {
  EXPECT_THROW((void)column_partition_with_sizes({0.5, 0.5}, {1}),
               util::PreconditionError);
  EXPECT_THROW((void)column_partition_with_sizes({0.5, 0.5}, {1, 1, 1}),
               util::PreconditionError);
  EXPECT_THROW((void)column_partition_with_sizes({0.5, 0.5}, {0, 2}),
               util::PreconditionError);
}

TEST(ColumnPartitionWithSizes, DpBeatsOrMatchesFixedStructures) {
  util::Rng rng(11);
  for (int rep = 0; rep < 10; ++rep) {
    std::vector<double> areas;
    const auto p = static_cast<std::size_t>(rng.uniform_int(4, 16));
    for (std::size_t i = 0; i < p; ++i) {
      areas.push_back(rng.uniform(0.1, 10.0));
    }
    const double dp_cost =
        peri_sum_partition(areas).total_half_perimeter;
    // Single column.
    const double one_col =
        column_partition_with_sizes(areas, {p}).total_half_perimeter;
    EXPECT_LE(dp_cost, one_col + 1e-9);
    // Even split into two columns (when possible).
    if (p % 2 == 0) {
      const double two_col =
          column_partition_with_sizes(areas, {p / 2, p / 2})
              .total_half_perimeter;
      EXPECT_LE(dp_cost, two_col + 1e-9);
    }
  }
}

// Property sweep across sizes and distributions: structural invariants and
// the 7/4 guarantee.
class PeriSumProperty
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(PeriSumProperty, InvariantsHold) {
  const auto [p, seed] = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(seed) * 7919 + 3);
  std::vector<double> areas;
  areas.reserve(static_cast<std::size_t>(p));
  for (int i = 0; i < p; ++i) {
    areas.push_back(seed % 2 == 0 ? rng.uniform(0.5, 1.5)
                                  : rng.lognormal(0.0, 1.0));
  }
  const auto part = peri_sum_partition(areas);
  expect_valid_partition(part, areas);
  const double lb = comm_lower_bound_unit(areas);
  EXPECT_LE(part.total_half_perimeter, 1.75 * lb + 1e-9);
  EXPECT_GE(part.total_half_perimeter, lb - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, PeriSumProperty,
    ::testing::Combine(::testing::Values(2, 3, 5, 10, 30, 100),
                       ::testing::Range(0, 6)));

}  // namespace
}  // namespace nldl::partition
