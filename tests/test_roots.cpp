// Unit and property tests for the scalar root-finders.
#include "util/roots.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace nldl::util {
namespace {

TEST(Bisect, FindsSqrtTwo) {
  const auto result = bisect([](double x) { return x * x - 2.0; }, 0.0, 2.0);
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.x, std::sqrt(2.0), 1e-10);
}

TEST(Bisect, ExactRootAtBoundary) {
  const auto at_lo = bisect([](double x) { return x; }, 0.0, 1.0);
  EXPECT_TRUE(at_lo.converged);
  EXPECT_EQ(at_lo.x, 0.0);
  const auto at_hi = bisect([](double x) { return x - 1.0; }, 0.0, 1.0);
  EXPECT_TRUE(at_hi.converged);
  EXPECT_EQ(at_hi.x, 1.0);
}

TEST(Bisect, RequiresSignChange) {
  EXPECT_THROW(
      (void)bisect([](double x) { return x * x + 1.0; }, -1.0, 1.0),
      PreconditionError);
}

TEST(Bisect, DecreasingFunction) {
  const auto result =
      bisect([](double x) { return 1.0 - x * x * x; }, 0.0, 4.0);
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.x, 1.0, 1e-9);
}

TEST(NewtonSafeguarded, QuadraticConvergesFast) {
  int evals = 0;
  auto f = [&](double x) {
    ++evals;
    return x * x - 2.0;
  };
  auto df = [](double x) { return 2.0 * x; };
  const auto result = newton_safeguarded(f, df, 0.0, 2.0);
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.x, std::sqrt(2.0), 1e-12);
  EXPECT_LT(result.iterations, 12);
}

TEST(NewtonSafeguarded, SurvivesZeroDerivative) {
  // f(x) = x³ has f'(0) = 0; safeguard must fall back to bisection.
  auto f = [](double x) { return x * x * x; };
  auto df = [](double x) { return 3.0 * x * x; };
  const auto result = newton_safeguarded(f, df, -1.0, 2.0);
  EXPECT_TRUE(result.converged);
  // The cubic is flat at its root, so |f| <= f_tol is reached while x is
  // still ~1e-4 away; that is the documented convergence criterion.
  EXPECT_NEAR(result.x, 0.0, 1e-4);
}

TEST(NewtonSafeguarded, StaysInsideBracket) {
  // Steep function whose Newton step overshoots from most points.
  auto f = [](double x) { return std::tanh(20.0 * (x - 0.7)); };
  auto df = [](double x) {
    const double t = std::tanh(20.0 * (x - 0.7));
    return 20.0 * (1.0 - t * t);
  };
  const auto result = newton_safeguarded(f, df, 0.0, 1.0);
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.x, 0.7, 1e-8);
}

TEST(SolveIncreasing, ExpandsBracket) {
  // Root at 1000, initial guess far too small.
  const auto result =
      solve_increasing([](double x) { return x - 1000.0; }, 0.0, 1.0);
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.x, 1000.0, 1e-6);
}

TEST(SolveIncreasing, ThrowsWhenNoRoot) {
  EXPECT_THROW((void)solve_increasing([](double) { return -1.0; }, 0.0, 1.0),
               PreconditionError);
}

// Property sweep: both solvers find the root of c·x + w·x^a − T (the
// nonlinear DLT chunk equation) across random parameters.
class ChunkEquationProperty : public ::testing::TestWithParam<int> {};

TEST_P(ChunkEquationProperty, BothSolversAgree) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
  for (int rep = 0; rep < 50; ++rep) {
    const double c = rng.uniform(0.01, 10.0);
    const double w = rng.uniform(0.01, 10.0);
    const double a = rng.uniform(1.0, 4.0);
    const double t = rng.uniform(0.1, 1000.0);
    auto f = [&](double x) { return c * x + w * std::pow(x, a) - t; };
    auto df = [&](double x) {
      return c + w * a * std::pow(x, a - 1.0);
    };
    double hi = std::min(t / c, std::pow(t / w, 1.0 / a));
    while (f(hi) < 0.0) hi *= 2.0;
    const auto by_bisect = bisect(f, 0.0, hi);
    const auto by_newton = newton_safeguarded(f, df, 0.0, hi);
    ASSERT_TRUE(by_bisect.converged);
    ASSERT_TRUE(by_newton.converged);
    EXPECT_NEAR(by_bisect.x, by_newton.x,
                1e-7 * std::max(1.0, by_bisect.x));
    EXPECT_NEAR(f(by_newton.x), 0.0, 1e-6 * std::max(1.0, t));
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, ChunkEquationProperty,
                         ::testing::Range(0, 8));

}  // namespace
}  // namespace nldl::util
