// Unit tests for the simulated heterogeneous cluster scheduler.
#include "mapreduce/cluster_sim.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/assert.hpp"

namespace nldl::mapreduce {
namespace {

std::vector<SimTask> identical_tasks(std::size_t count, double cost,
                                     std::vector<BlockId> inputs = {}) {
  std::vector<SimTask> tasks(count);
  for (auto& task : tasks) {
    task.compute_cost = cost;
    task.inputs = inputs;
  }
  return tasks;
}

TEST(Cluster, FasterWorkerTakesMoreTasks) {
  ClusterConfig config;
  config.speeds = {1.0, 3.0};
  const auto outcome = run_cluster(identical_tasks(40, 1.0), config);
  std::size_t fast = 0;
  for (const std::size_t owner : outcome.owner) {
    if (owner == 1) ++fast;
  }
  EXPECT_NEAR(static_cast<double>(fast), 30.0, 2.0);
}

TEST(Cluster, MakespanIsMaxWorkerTime) {
  ClusterConfig config;
  config.speeds = {1.0, 2.0};
  const auto outcome = run_cluster(identical_tasks(9, 2.0), config);
  EXPECT_DOUBLE_EQ(
      outcome.makespan,
      std::max(outcome.worker_time[0], outcome.worker_time[1]));
}

TEST(Cluster, BytesCountedOncePerWorkerBlock) {
  // Two tasks sharing one input block, single worker: the block ships once.
  ClusterConfig config;
  config.speeds = {1.0};
  config.bytes_per_block = 8.0;
  const auto outcome =
      run_cluster(identical_tasks(2, 1.0, {42}), config);
  EXPECT_DOUBLE_EQ(outcome.total_bytes, 8.0);
}

TEST(Cluster, DistinctBlocksAllShip) {
  ClusterConfig config;
  config.speeds = {1.0};
  std::vector<SimTask> tasks(3);
  for (std::size_t t = 0; t < 3; ++t) {
    tasks[t].compute_cost = 1.0;
    tasks[t].inputs = {static_cast<BlockId>(t)};
  }
  const auto outcome = run_cluster(tasks, config);
  EXPECT_DOUBLE_EQ(outcome.total_bytes, 3.0);
}

TEST(Cluster, AffinityReducesBytes) {
  // Three task families on two workers: the affinity-blind scheduler's
  // alternation smears every family over both workers (3 + 3 fetches);
  // the affinity-aware one keeps families together and only shares the
  // leftover third family (at most 4 fetches).
  std::vector<SimTask> tasks;
  for (int i = 0; i < 21; ++i) {
    SimTask task;
    task.compute_cost = 1.0;
    task.inputs = {static_cast<BlockId>(i % 3)};
    tasks.push_back(task);
  }
  ClusterConfig plain;
  plain.speeds = {1.0, 1.0};
  const auto blind = run_cluster(tasks, plain);

  ClusterConfig aware = plain;
  aware.affinity_aware = true;
  const auto smart = run_cluster(tasks, aware);

  EXPECT_DOUBLE_EQ(blind.total_bytes, 6.0);
  EXPECT_LE(smart.total_bytes, 4.0);
  EXPECT_LT(smart.total_bytes, blind.total_bytes);
}

TEST(Cluster, AffinityPreservesLoadBalance) {
  std::vector<SimTask> tasks;
  for (int i = 0; i < 100; ++i) {
    SimTask task;
    task.compute_cost = 1.0;
    task.inputs = {static_cast<BlockId>(i % 4)};
    tasks.push_back(task);
  }
  ClusterConfig aware;
  aware.speeds = {1.0, 1.0, 2.0};
  aware.affinity_aware = true;
  const auto outcome = run_cluster(tasks, aware);
  EXPECT_LT(outcome.imbalance, 0.15);
}

TEST(Cluster, IdleWorkersExcludedFromImbalanceAndCounted) {
  ClusterConfig config;
  config.speeds = {1.0, 1.0, 1.0};
  // One task, three workers: two stay idle. The shared busy-worker
  // definition keeps e finite and reports the idle count instead.
  const auto outcome = run_cluster(identical_tasks(1, 1.0), config);
  EXPECT_DOUBLE_EQ(outcome.imbalance, 0.0);
  EXPECT_EQ(outcome.idle_workers, 2U);
}

TEST(Cluster, EmptyTaskListIsFine) {
  ClusterConfig config;
  config.speeds = {1.0};
  const auto outcome = run_cluster({}, config);
  EXPECT_DOUBLE_EQ(outcome.makespan, 0.0);
  EXPECT_DOUBLE_EQ(outcome.total_bytes, 0.0);
}

TEST(Cluster, RejectsBadConfig) {
  ClusterConfig empty;
  EXPECT_THROW((void)run_cluster({}, empty), util::PreconditionError);
  ClusterConfig negative;
  negative.speeds = {1.0, -1.0};
  EXPECT_THROW((void)run_cluster({}, negative), util::PreconditionError);
}

}  // namespace
}  // namespace nldl::mapreduce
