// Tests for the nldl-lint v2 engine internals: the token-stream lexer,
// the layer-DAG configuration and validator, include resolution and
// graph export, and the iwyu-lite export harvest. The fixture-level
// behavior (pinned finding lines) lives in test_nldl_lint.cpp; this
// suite exercises the building blocks directly.
#include "project.hpp"

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "layers.hpp"
#include "lexer.hpp"
#include "lint.hpp"

namespace nldl::lint {
namespace {

std::unique_ptr<FileScan> make_scan(std::string path, std::string source) {
  auto scan = std::make_unique<FileScan>();
  scan->path = std::move(path);
  scan->source = std::move(source);
  scan_file(*scan);
  return scan;
}

std::vector<Finding> settle(FileSet& files) {
  std::vector<Finding> all;
  for (const auto& file : files) {
    finish_file(*file);
    all.insert(all.end(), file->findings.begin(), file->findings.end());
  }
  return all;
}

// --- lexer ------------------------------------------------------------------

TEST(LintLexer, TokenKindsSpansAndLines) {
  const TokenStream stream = lex("int x = 1.5; // note\n\"str\" y2\n");
  ASSERT_EQ(stream.tokens.size(), 7u);
  EXPECT_EQ(stream.tokens[0].kind, TokenKind::kIdentifier);
  EXPECT_EQ(stream.tokens[0].text, "int");
  EXPECT_EQ(stream.tokens[0].line, 1u);
  EXPECT_EQ(stream.tokens[2].kind, TokenKind::kPunct);
  EXPECT_EQ(stream.tokens[2].text, "=");
  EXPECT_EQ(stream.tokens[3].kind, TokenKind::kNumber);
  EXPECT_EQ(stream.tokens[3].text, "1.5");
  EXPECT_EQ(stream.tokens[5].kind, TokenKind::kString);
  EXPECT_EQ(stream.tokens[5].line, 2u);
  EXPECT_EQ(stream.tokens[6].text, "y2");
  ASSERT_EQ(stream.line_count, 3u);
  EXPECT_NE(stream.comment_by_line[0].find("// note"), std::string::npos);
  EXPECT_TRUE(stream.comment_by_line[1].empty());
}

TEST(LintLexer, ShiftsStayUnmergedSoTemplateAnglesBalance) {
  const TokenStream stream = lex("std::map<int, std::vector<int>> m;\n");
  const auto count = [&](std::string_view text) {
    return std::count_if(stream.tokens.begin(), stream.tokens.end(),
                         [&](const Token& t) {
                           return t.kind == TokenKind::kPunct &&
                                  t.text == text;
                         });
  };
  // The closing >> of the nested template is two '>' tokens, so bare
  // angle counting balances: two '<', two '>'.
  EXPECT_EQ(count("<"), 2);
  EXPECT_EQ(count(">"), 2);
}

TEST(LintLexer, BlockCommentDistributesTextPerLine) {
  const TokenStream stream = lex("a /* one\ntwo */ b\n");
  ASSERT_EQ(stream.tokens.size(), 2u);
  EXPECT_EQ(stream.tokens[0].text, "a");
  EXPECT_EQ(stream.tokens[0].line, 1u);
  EXPECT_EQ(stream.tokens[1].text, "b");
  EXPECT_EQ(stream.tokens[1].line, 2u);
  EXPECT_NE(stream.comment_by_line[0].find("one"), std::string::npos);
  EXPECT_NE(stream.comment_by_line[1].find("two"), std::string::npos);
}

TEST(LintLexer, RawStringIsOneOpaqueToken) {
  const TokenStream stream = lex("auto r = R\"x(a \" )\" b)x\"; int z;\n");
  const auto strings = std::count_if(
      stream.tokens.begin(), stream.tokens.end(),
      [](const Token& t) { return t.kind == TokenKind::kString; });
  EXPECT_EQ(strings, 1);
  EXPECT_EQ(stream.tokens.back().text, ";");
}

TEST(LintLexer, MaximalMunchPunctuators) {
  const TokenStream stream = lex("x+=1; y->z; a==b;\n");
  std::vector<std::string_view> puncts;
  for (const Token& t : stream.tokens) {
    if (t.kind == TokenKind::kPunct) puncts.push_back(t.text);
  }
  EXPECT_EQ(puncts, (std::vector<std::string_view>{"+=", ";", "->", ";",
                                                   "==", ";"}));
}

// --- layer configuration ----------------------------------------------------

TEST(LintLayers, DefaultConfigIsValidAndOrdersTheStack) {
  const LayerConfig& config = default_layer_config();
  EXPECT_EQ(validate_layer_config(config), "");
  EXPECT_EQ(layer_rank(config, "util"), 0);
  EXPECT_LT(layer_rank(config, "util"), layer_rank(config, "platform"));
  EXPECT_LT(layer_rank(config, "obs"), layer_rank(config, "sim"));
  EXPECT_LT(layer_rank(config, "platform"), layer_rank(config, "sim"));
  EXPECT_LT(layer_rank(config, "partition"), layer_rank(config, "linalg"));
  EXPECT_LT(layer_rank(config, "sim"), layer_rank(config, "dlt"));
  EXPECT_LT(layer_rank(config, "dlt"), layer_rank(config, "sort"));
  EXPECT_LT(layer_rank(config, "dlt"), layer_rank(config, "online"));
  EXPECT_LT(layer_rank(config, "online"), layer_rank(config, "qos"));
  EXPECT_LT(layer_rank(config, "sort"), layer_rank(config, "core"));
  EXPECT_LT(layer_rank(config, "qos"), layer_rank(config, "bench"));
  EXPECT_LT(layer_rank(config, "bench"), kDriverRank);
  EXPECT_EQ(layer_rank(config, "no-such-layer"), -1);
}

TEST(LintLayers, ValidatorRejectsEachMalformation) {
  EXPECT_NE(validate_layer_config({{}, {}}), "");
  EXPECT_NE(validate_layer_config({{{"", 0}}, {}}), "");
  EXPECT_NE(validate_layer_config({{{"src/util", 0}}, {}}), "");
  EXPECT_NE(validate_layer_config({{{"util", -1}}, {}}), "");
  EXPECT_NE(validate_layer_config({{{"util", kDriverRank}}, {}}), "");
  EXPECT_NE(validate_layer_config({{{"util", 0}, {"util", 1}}, {}}), "");
  EXPECT_NE(
      validate_layer_config({{{"util", 0}}, {{"util", "util"}}}), "");
  EXPECT_NE(
      validate_layer_config({{{"util", 0}}, {{"util", "mystery"}}}), "");
  EXPECT_EQ(validate_layer_config({{{"util", 0}, {"sim", 2}},
                                   {{"util", "sim"}}}),
            "");
}

TEST(LintLayers, ClassifyPathMapsLayersAndDrivers) {
  const LayerConfig& config = default_layer_config();
  DirRank dr = classify_path(config, "src/util/rng.hpp");
  EXPECT_EQ(dr.dir, "src/util");
  EXPECT_EQ(dr.rank, 0);
  dr = classify_path(config, "src/qos/admission.cpp");
  EXPECT_EQ(dr.dir, "src/qos");
  EXPECT_EQ(dr.rank, 5);
  dr = classify_path(config, "tests/test_sim.cpp");
  EXPECT_EQ(dr.dir, "tests");
  EXPECT_EQ(dr.rank, kDriverRank);
  dr = classify_path(config, "tools/nldl_lint/lint.cpp");
  EXPECT_EQ(dr.dir, "tools");
  EXPECT_EQ(dr.rank, kDriverRank);
  // src/ directories missing from the table surface as rank -1, which
  // analyze_project escalates to a configuration error.
  EXPECT_EQ(classify_path(config, "src/mystery/x.hpp").rank, -1);
  EXPECT_EQ(classify_path(config, "src/orphan.hpp").rank, -1);
}

TEST(LintLayers, ExceptionLegalizesExactlyItsEdge) {
  LayerConfig config = default_layer_config();
  config.exceptions.push_back({"util", "sim"});
  FileSet files;
  files.push_back(make_scan("src/sim/eng.hpp",
                            "#pragma once\ninline int eng_fn() { return 1; }\n"));
  files.push_back(make_scan(
      "src/util/up.hpp",
      "#pragma once\n#include \"sim/eng.hpp\"\n"
      "inline int up_fn() { return eng_fn(); }\n"));
  EXPECT_EQ(analyze_project(files, config, nullptr), "");
  EXPECT_TRUE(settle(files).empty());
}

// --- include resolution and graph export ------------------------------------

TEST(LintGraph, ResolvesProjectIncludesAndExportsBothFormats) {
  FileSet files;
  files.push_back(make_scan(
      "src/util/a.hpp", "#pragma once\ninline int a_fn() { return 1; }\n"));
  files.push_back(make_scan("src/sim/b.cpp",
                            "#include \"util/a.hpp\"\n#include <vector>\n"
                            "int b_run() { return a_fn(); }\n"));
  ProjectGraph graph;
  ASSERT_EQ(analyze_project(files, default_layer_config(), &graph), "");
  EXPECT_TRUE(settle(files).empty());

  ASSERT_EQ(graph.nodes.size(), 2u);
  // Angle includes are external: exactly one resolved edge.
  ASSERT_EQ(graph.edges.size(), 1u);
  EXPECT_EQ(graph.nodes[graph.edges[0].from].path, "src/sim/b.cpp");
  EXPECT_EQ(graph.nodes[graph.edges[0].to].path, "src/util/a.hpp");
  EXPECT_EQ(graph.edges[0].line, 1u);

  const std::string dot = graph_to_dot(graph);
  EXPECT_NE(dot.find("src_sim -> src_util [label=\"1\"]"), std::string::npos);
  EXPECT_NE(dot.find("src/util (rank 0)"), std::string::npos);

  const std::string json = graph_to_json(graph, default_layer_config());
  EXPECT_NE(json.find("\"from\": \"src/sim/b.cpp\""), std::string::npos);
  EXPECT_NE(json.find("\"to\": \"src/util/a.hpp\""), std::string::npos);
  EXPECT_NE(json.find("{\"dir\": \"util\", \"rank\": 0}"), std::string::npos);
}

TEST(LintGraph, IncluderRelativeResolutionWinsOverSrc) {
  FileSet files;
  files.push_back(make_scan(
      "bench/fig_common.hpp",
      "#pragma once\ninline int fig_jobs() { return 8; }\n"));
  files.push_back(make_scan("bench/fig_a.cpp",
                            "#include \"fig_common.hpp\"\n"
                            "int main() { return fig_jobs(); }\n"));
  ProjectGraph graph;
  ASSERT_EQ(analyze_project(files, default_layer_config(), &graph), "");
  EXPECT_TRUE(settle(files).empty());
  ASSERT_EQ(graph.edges.size(), 1u);
  EXPECT_EQ(graph.nodes[graph.edges[0].to].path, "bench/fig_common.hpp");
}

// --- iwyu-lite export harvest ------------------------------------------------

TEST(LintHarvest, ExportsDeclarationsNotBodiesOrParams) {
  const auto header = make_scan(
      "src/util/widget.hpp",
      "#pragma once\n"
      "#define MAX_N 4\n"
      "namespace demo {\n"
      "class Widget {\n"
      " public:\n"
      "  int size() const;\n"
      "};\n"
      "enum class Mode { kFast, kSafe };\n"
      "using Alias = int;\n"
      "inline int helper(int param) { int local = param; return local; }\n"
      "constexpr int kMax = 3;\n"
      "}  // namespace demo\n");
  const std::vector<std::string> exports = harvest_exports(*header);
  const auto has = [&](std::string_view name) {
    return std::find(exports.begin(), exports.end(), name) != exports.end();
  };
  EXPECT_TRUE(has("MAX_N"));
  EXPECT_TRUE(has("Widget"));
  EXPECT_TRUE(has("size"));
  EXPECT_TRUE(has("Mode"));
  EXPECT_TRUE(has("kFast"));
  EXPECT_TRUE(has("kSafe"));
  EXPECT_TRUE(has("Alias"));
  EXPECT_TRUE(has("helper"));
  EXPECT_TRUE(has("kMax"));
  // Namespace names, parameters, and function-body locals are not exports.
  EXPECT_FALSE(has("demo"));
  EXPECT_FALSE(has("param"));
  EXPECT_FALSE(has("local"));
}

TEST(LintHarvest, PragmaExportPropagatesThroughUmbrellas) {
  FileSet files;
  files.push_back(make_scan(
      "src/util/impl.hpp",
      "#pragma once\ninline int impl_fn() { return 1; }\n"));
  files.push_back(make_scan(
      "src/util/umbrella.hpp",
      "#pragma once\n#include \"util/impl.hpp\"  // IWYU pragma: export\n"));
  files.push_back(make_scan("src/sim/user_ok.cpp",
                            "#include \"util/umbrella.hpp\"\n"
                            "int go() { return impl_fn(); }\n"));
  files.push_back(make_scan("src/sim/user_stale.cpp",
                            "#include \"util/umbrella.hpp\"\n"
                            "int stop() { return 0; }\n"));
  ASSERT_EQ(analyze_project(files, default_layer_config(), nullptr), "");
  const std::vector<Finding> findings = settle(files);
  // user_ok reaches impl_fn THROUGH the umbrella: no finding. user_stale
  // uses nothing the umbrella re-exports: one iwyu-lite finding.
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].file, "src/sim/user_stale.cpp");
  EXPECT_EQ(findings[0].rule, "iwyu-lite");
  EXPECT_EQ(findings[0].line, 1u);
}

TEST(LintHarvest, SelfHeaderPairIsNeverStale) {
  FileSet files;
  files.push_back(make_scan(
      "src/util/thing.hpp", "#pragma once\nint thing_fn();\n"));
  files.push_back(make_scan("src/util/thing.cpp",
                            "#include \"util/thing.hpp\"\n"
                            "int unrelated() { return 2; }\n"));
  ASSERT_EQ(analyze_project(files, default_layer_config(), nullptr), "");
  EXPECT_TRUE(settle(files).empty());
}

}  // namespace
}  // namespace nldl::lint
