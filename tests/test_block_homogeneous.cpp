// Unit + property tests for the Homogeneous Blocks strategy and the
// Comm_hom/k refinement (paper Sections 4.1.1 and 4.3).
#include "partition/block_homogeneous.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "platform/speed_distributions.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace nldl::partition {
namespace {

TEST(Formula, HomogeneousPlatformIsOneBlockPerWorker) {
  // p equal workers: x₁ = 1/p, D = N/√p, #blocks = p, volume 2N√p.
  const std::vector<double> speeds(9, 2.0);
  const auto formula = homogeneous_blocks_formula(speeds, 300.0);
  EXPECT_NEAR(formula.block_dim, 100.0, 1e-9);
  EXPECT_NEAR(formula.num_blocks, 9.0, 1e-9);
  EXPECT_NEAR(formula.comm_volume, 2.0 * 300.0 * 3.0, 1e-9);
}

TEST(Formula, MatchesPaperExpression) {
  // Comm_hom = 2N·√(Σ s_i / s₁).
  const std::vector<double> speeds{1.0, 4.0, 5.0};
  const double n = 50.0;
  const auto formula = homogeneous_blocks_formula(speeds, n);
  EXPECT_NEAR(formula.comm_volume, 2.0 * n * std::sqrt(10.0 / 1.0), 1e-9);
}

TEST(DemandDrivenCounts, FastWorkerGetsProportionallyMore) {
  // tau = per-block time; speeds 1 and 3 → counts ~ 1:3.
  const auto counts = demand_driven_counts({3.0, 1.0}, 40);
  EXPECT_EQ(counts[0] + counts[1], 40);
  EXPECT_NEAR(static_cast<double>(counts[1]) /
                  static_cast<double>(counts[0]),
              3.0, 0.35);
}

TEST(DemandDrivenCounts, ZeroBlocks) {
  const auto counts = demand_driven_counts({1.0, 1.0}, 0);
  EXPECT_EQ(counts[0], 0);
  EXPECT_EQ(counts[1], 0);
}

TEST(DemandDrivenCounts, MatchesEventSimulation) {
  util::Rng rng(21);
  for (int rep = 0; rep < 25; ++rep) {
    const auto p = static_cast<std::size_t>(rng.uniform_int(1, 12));
    std::vector<double> tau;
    for (std::size_t i = 0; i < p; ++i) {
      tau.push_back(rng.uniform(0.1, 5.0));
    }
    const auto blocks = rng.uniform_int(0, 500);
    const auto fast = demand_driven_counts(tau, blocks);
    const auto slow = demand_driven_counts_simulated(tau, blocks);
    // Counts must agree exactly except possibly at exact-tie boundaries;
    // with continuous random tau, ties have measure zero.
    EXPECT_EQ(fast, slow) << "rep " << rep;
  }
}

TEST(DemandDrivenCounts, RejectsBadInput) {
  EXPECT_THROW((void)demand_driven_counts({}, 3), util::PreconditionError);
  EXPECT_THROW((void)demand_driven_counts({0.0}, 3),
               util::PreconditionError);
  EXPECT_THROW((void)demand_driven_counts({1.0}, -1),
               util::PreconditionError);
}

TEST(DemandDriven, HomogeneousKOneIsPerfect) {
  const std::vector<double> speeds(16, 1.0);
  const auto result = homogeneous_blocks_demand_driven(speeds, 160.0, 1);
  EXPECT_EQ(result.num_blocks, 16);
  for (const long long b : result.blocks_per_worker) EXPECT_EQ(b, 1);
  EXPECT_NEAR(result.imbalance, 0.0, 1e-12);
  // Volume equals the closed formula on homogeneous platforms.
  const auto formula = homogeneous_blocks_formula(speeds, 160.0);
  EXPECT_NEAR(result.comm_volume, formula.comm_volume, 1e-6);
}

TEST(DemandDriven, VolumeScalesAsSqrtK) {
  const std::vector<double> speeds{1.0, 3.0, 7.0};
  const double n = 100.0;
  const auto k1 = homogeneous_blocks_demand_driven(speeds, n, 1);
  const auto k4 = homogeneous_blocks_demand_driven(speeds, n, 4);
  // #blocks grows ~k, block perimeter shrinks ~1/√k → volume grows ~√k.
  EXPECT_NEAR(k4.comm_volume / k1.comm_volume, 2.0, 0.1);
}

TEST(DemandDriven, ImbalanceImprovesWithK) {
  // A strongly heterogeneous platform where k = 1 rounds badly.
  const std::vector<double> speeds{1.0, 1.5, 2.2, 9.7};
  const double n = 1000.0;
  const auto coarse = homogeneous_blocks_demand_driven(speeds, n, 1);
  const auto fine = homogeneous_blocks_demand_driven(speeds, n, 16);
  EXPECT_LT(fine.imbalance, coarse.imbalance);
  EXPECT_LT(fine.imbalance, 0.05);
}

TEST(RefineUntilBalanced, ReachesTarget) {
  util::Rng rng(31);
  for (int rep = 0; rep < 10; ++rep) {
    const auto plat = platform::make_platform(
        platform::SpeedModel::kUniform, 20, rng);
    const auto result = refine_until_balanced(plat.speeds(), 100.0, 0.01);
    EXPECT_LE(result.imbalance, 0.01) << "rep " << rep;
    EXPECT_GE(result.k, 1);
  }
}

TEST(RefineUntilBalanced, HomogeneousNeedsNoRefinement) {
  const std::vector<double> speeds(10, 5.0);
  const auto result = refine_until_balanced(speeds, 100.0);
  EXPECT_EQ(result.k, 1);
  EXPECT_NEAR(result.imbalance, 0.0, 1e-12);
}

TEST(RefineUntilBalanced, GivesUpAtMaxK) {
  // An irrational speed ratio cannot balance to 1e-9 with a handful of
  // blocks, so the loop must stop at max_k.
  const std::vector<double> speeds{1.0, 3.14159265358979};
  const auto result = refine_until_balanced(speeds, 100.0, 1e-9, 2);
  EXPECT_EQ(result.k, 2);
  EXPECT_GT(result.imbalance, 1e-9);
}

// Property: demand-driven never leaves the makespan worse than
// (perfect share) + one block on the slowest worker, and total assigned
// blocks is exact.
class DemandDrivenProperty : public ::testing::TestWithParam<int> {};

TEST_P(DemandDrivenProperty, GreedyIsNearBalanced) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 53 + 11);
  const auto p = static_cast<std::size_t>(rng.uniform_int(2, 30));
  std::vector<double> tau;
  for (std::size_t i = 0; i < p; ++i) tau.push_back(rng.uniform(0.2, 4.0));
  const long long blocks = rng.uniform_int(1, 2000);
  const auto counts = demand_driven_counts(tau, blocks);

  long long total = 0;
  double makespan = 0.0;
  for (std::size_t i = 0; i < p; ++i) {
    total += counts[i];
    makespan = std::max(makespan,
                        static_cast<double>(counts[i]) * tau[i]);
  }
  EXPECT_EQ(total, blocks);

  // List-scheduling bound for identical jobs: makespan <= ideal + max tau.
  double rate = 0.0;
  for (const double t : tau) rate += 1.0 / t;
  const double ideal = static_cast<double>(blocks) / rate;
  const double tau_max = *std::max_element(tau.begin(), tau.end());
  EXPECT_LE(makespan, ideal + tau_max + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, DemandDrivenProperty,
                         ::testing::Range(0, 20));

}  // namespace
}  // namespace nldl::partition
