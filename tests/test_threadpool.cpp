// Unit tests for the thread pool.
#include "util/threadpool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "util/assert.hpp"

namespace nldl::util {
namespace {

TEST(ThreadPool, RequiresAtLeastOneThread) {
  EXPECT_THROW(ThreadPool(0), PreconditionError);
}

TEST(ThreadPool, ReportsSize) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3U);
}

TEST(ThreadPool, SubmitReturnsValue) {
  ThreadPool pool(2);
  auto future = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPool, SubmitPropagatesException) {
  ThreadPool pool(2);
  auto future = pool.submit([]() -> int {
    throw std::runtime_error("boom");
  });
  EXPECT_THROW((void)future.get(), std::runtime_error);
}

TEST(ThreadPool, ManyTasksAllRun) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 500; ++i) {
    futures.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 500);
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 100; ++i) {
      (void)pool.submit([&counter] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        ++counter;
      });
    }
  }  // destructor must wait for all 100
  EXPECT_EQ(counter.load(), 100);
}

TEST(ParallelFor, CoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(pool, 0, hits.size(), 7,
               [&](std::size_t i) { ++hits[i]; });
  for (const auto& hit : hits) {
    ASSERT_EQ(hit.load(), 1);
  }
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool touched = false;
  parallel_for(pool, 5, 5, 1, [&](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ParallelFor, RejectsInvertedRange) {
  ThreadPool pool(1);
  EXPECT_THROW(parallel_for(pool, 5, 4, 1, [](std::size_t) {}),
               PreconditionError);
}

TEST(ParallelFor, PropagatesTaskException) {
  ThreadPool pool(2);
  EXPECT_THROW(parallel_for(pool, 0, 10, 1,
                            [](std::size_t i) {
                              if (i == 7) throw std::runtime_error("x");
                            }),
               std::runtime_error);
}

// Regression: parallel_for used to rethrow from the first failed
// future.get() while later queued chunks still held references to `fn`
// and the caller's frame — a use-after-free window once the frame
// unwound (caught by ASan on this test). The fix waits for *all* chunks,
// then rethrows, so every non-throwing chunk must have fully executed
// against live state by the time the exception escapes.
TEST(ParallelFor, WaitsForAllChunksWhenOneThrows) {
  ThreadPool pool(2);
  constexpr std::size_t kCount = 64;
  std::vector<std::atomic<int>> hits(kCount);
  std::atomic<int> completed{0};
  EXPECT_THROW(
      parallel_for(pool, 0, kCount, 1,
                   [&](std::size_t i) {
                     if (i == 5) throw std::runtime_error("mid-range");
                     // Stagger the survivors so plenty of chunks are
                     // still queued when chunk 5 fails.
                     std::this_thread::sleep_for(
                         std::chrono::microseconds(50));
                     ++hits[i];
                     ++completed;
                   }),
      std::runtime_error);
  EXPECT_EQ(completed.load(), static_cast<int>(kCount) - 1);
  for (std::size_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(hits[i].load(), i == 5 ? 0 : 1) << "chunk " << i;
  }
}

TEST(ParallelFor, RethrowsFirstExceptionInChunkOrder) {
  // One worker thread makes chunk execution order deterministic, so the
  // "first captured exception" is the one from the lowest chunk.
  ThreadPool pool(1);
  try {
    parallel_for(pool, 0, 12, 1, [](std::size_t i) {
      if (i == 2) throw std::runtime_error("early");
      if (i == 9) throw std::logic_error("late");
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& error) {
    EXPECT_STREQ(error.what(), "early");
  } catch (const std::logic_error&) {
    FAIL() << "later chunk's exception won over the earlier one";
  }
}

TEST(ParallelFor, SumMatchesSerial) {
  ThreadPool pool(4);
  std::vector<double> values(10000);
  std::iota(values.begin(), values.end(), 0.0);
  std::atomic<long long> sum{0};
  parallel_for(pool, 0, values.size(), 64, [&](std::size_t i) {
    sum += static_cast<long long>(values[i]);  // nldl-lint: allow(parallel-accum): integer atomic sum is order-independent; exercises parallel_for itself
  });
  EXPECT_EQ(sum.load(), 10000LL * 9999 / 2);
}

}  // namespace
}  // namespace nldl::util
