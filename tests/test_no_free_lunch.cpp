// Tests for the Section 2/3 sweep helpers.
#include "core/no_free_lunch.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/assert.hpp"

namespace nldl::core {
namespace {

TEST(RemainingFractionSweep, MatchesClosedForm) {
  const auto points = remaining_fraction_sweep({2, 8, 32}, 2.0, 1000.0);
  ASSERT_EQ(points.size(), 3U);
  for (const auto& point : points) {
    EXPECT_NEAR(point.simulated_parallel, point.closed_form, 1e-6);
    // One-port serialization skews the allocation toward early workers;
    // by convexity of x^α that *slightly* increases the work done, so the
    // one-port remaining fraction sits just below the equal-split closed
    // form — but stays within a percent of it.
    EXPECT_NEAR(point.simulated_one_port, point.closed_form, 0.01);
  }
}

TEST(RemainingFractionSweep, IncreasesWithP) {
  const auto points = remaining_fraction_sweep({2, 4, 8, 16}, 2.0, 500.0);
  for (std::size_t i = 1; i < points.size(); ++i) {
    EXPECT_GT(points[i].closed_form, points[i - 1].closed_form);
    EXPECT_GT(points[i].simulated_parallel,
              points[i - 1].simulated_parallel);
  }
}

TEST(RemainingFractionOn, HeterogeneousStillVanishes) {
  const auto plat = platform::Platform::from_speeds(
      {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0});
  const auto point = remaining_fraction_on(plat, 2.0, 1000.0);
  // Even on heterogeneous platforms most work remains after one round.
  EXPECT_GT(point.simulated_parallel, 0.5);
  EXPECT_LE(point.simulated_parallel, 1.0);
}

TEST(SortingSweep, FractionMatchesFormula) {
  const auto points = sorting_fraction_sweep({1024.0}, {2, 32});
  ASSERT_EQ(points.size(), 2U);
  EXPECT_NEAR(points[0].fraction, 0.1, 1e-9);   // log 2 / log 1024
  EXPECT_NEAR(points[1].fraction, 0.5, 1e-9);   // log 32 / log 1024
}

TEST(SortingSweep, PreprocessingVanishesForLargeN) {
  const auto points =
      sorting_fraction_sweep({1e4, 1e7, 1e10}, {16});
  ASSERT_EQ(points.size(), 3U);
  for (std::size_t i = 1; i < points.size(); ++i) {
    EXPECT_LT(points[i].preprocessing_ratio,
              points[i - 1].preprocessing_ratio);
  }
  EXPECT_LT(points.back().preprocessing_ratio, 0.5);
}

TEST(Tables, RenderWithoutError) {
  const auto nfl = remaining_fraction_sweep({2, 4}, 2.0, 100.0);
  std::ostringstream out;
  nfl_table(nfl).print(out);
  EXPECT_NE(out.str().find("parallel-links"), std::string::npos);

  const auto sorting = sorting_fraction_sweep({4096.0}, {4});
  std::ostringstream out2;
  sorting_table(sorting).print(out2);
  EXPECT_NE(out2.str().find("log p/log N"), std::string::npos);
}

TEST(Sweeps, RejectEmptyInput) {
  EXPECT_THROW((void)remaining_fraction_sweep({}, 2.0, 10.0),
               util::PreconditionError);
  EXPECT_THROW((void)sorting_fraction_sweep({}, {2}),
               util::PreconditionError);
  EXPECT_THROW((void)sorting_fraction_sweep({10.0}, {}),
               util::PreconditionError);
}

}  // namespace
}  // namespace nldl::core
