// Tests for the with-return-messages extension (refs [28]-[30]).
#include "dlt/return_messages.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "dlt/linear_dlt.hpp"
#include "platform/speed_distributions.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace nldl::dlt {
namespace {

using platform::Platform;

std::vector<std::size_t> identity_order(std::size_t p) {
  std::vector<std::size_t> order(p);
  std::iota(order.begin(), order.end(), std::size_t{0});
  return order;
}

TEST(ParallelWithReturn, DeltaZeroMatchesNoReturn) {
  const Platform plat = Platform::from_speeds({1.0, 2.0, 5.0}, 0.5);
  const auto with = linear_parallel_with_return(plat, 30.0, 0.0);
  const auto without = linear_parallel_single_round(plat, 30.0);
  for (std::size_t i = 0; i < plat.size(); ++i) {
    EXPECT_NEAR(with.amounts[i], without.amounts[i], 1e-9);
  }
  EXPECT_NEAR(with.makespan, without.makespan, 1e-9);
}

TEST(ParallelWithReturn, EqualFinishIncludingReturn) {
  const Platform plat = Platform::from_speeds({1.0, 3.0, 7.0}, 2.0);
  const double delta = 0.5;
  const auto alloc = linear_parallel_with_return(plat, 40.0, delta);
  double total = 0.0;
  for (std::size_t i = 0; i < plat.size(); ++i) {
    const double finish =
        (plat.c(i) * (1.0 + delta) + plat.w(i)) * alloc.amounts[i];
    EXPECT_NEAR(finish, alloc.makespan, 1e-9);
    total += alloc.amounts[i];
  }
  EXPECT_NEAR(total, 40.0, 1e-9);
}

TEST(ParallelWithReturn, ReturnsSlowTheSchedule) {
  const Platform plat = Platform::from_speeds({1.0, 2.0}, 1.0);
  const auto small = linear_parallel_with_return(plat, 10.0, 0.1);
  const auto large = linear_parallel_with_return(plat, 10.0, 1.0);
  EXPECT_LT(small.makespan, large.makespan);
}

TEST(ParallelWithReturn, RejectsNegativeDelta) {
  const Platform plat = Platform::homogeneous(2);
  EXPECT_THROW((void)linear_parallel_with_return(plat, 1.0, -0.1),
               util::PreconditionError);
}

TEST(SimulateOnePortWithReturn, HandComputedTimeline) {
  // Two identical workers (c = 1, w = 1), 1 unit each, delta = 1.
  // Sends: [0,1] to w0, [1,2] to w1. Computes: w0 [1,2], w1 [2,3].
  // Returns cannot start before all sends end (t = 2).
  // FIFO (w0 then w1): w0 returns [2,3]; w1 ready at 3, returns [3,4].
  const Platform plat = Platform::homogeneous(2, 1.0, 1.0);
  const double makespan = simulate_one_port_with_return(
      plat, {1.0, 1.0}, 1.0, identity_order(2), identity_order(2));
  EXPECT_DOUBLE_EQ(makespan, 4.0);
}

TEST(SimulateOnePortWithReturn, LifoCanBeatFifo) {
  // Classical observation: with large returns, LIFO lets the last-fed
  // (still computing) worker overlap while the early worker's big return
  // waits — orders matter.
  const Platform plat = Platform::from_speeds({1.0, 1.0}, 1.0);
  const std::vector<double> amounts{3.0, 1.0};
  const double delta = 1.0;
  const auto order = identity_order(2);
  const double fifo = simulate_one_port_with_return(plat, amounts, delta,
                                                    order, order);
  const std::vector<std::size_t> reversed{1, 0};
  const double lifo = simulate_one_port_with_return(plat, amounts, delta,
                                                    order, reversed);
  EXPECT_NE(fifo, lifo);  // the return permutation is load-bearing
}

TEST(OnePortWithReturn, AllocationsUseTheWholeLoad) {
  const Platform plat = Platform::from_speeds({1.0, 2.0, 4.0}, 0.3);
  for (const double delta : {0.0, 0.25, 1.0}) {
    const auto fifo =
        one_port_fifo_with_return(plat, 20.0, delta, identity_order(3));
    const auto lifo =
        one_port_lifo_with_return(plat, 20.0, delta, identity_order(3));
    double fifo_total = 0.0;
    double lifo_total = 0.0;
    for (std::size_t i = 0; i < 3; ++i) {
      ASSERT_GE(fifo.amounts[i], 0.0);
      ASSERT_GE(lifo.amounts[i], 0.0);
      fifo_total += fifo.amounts[i];
      lifo_total += lifo.amounts[i];
    }
    EXPECT_NEAR(fifo_total, 20.0, 1e-6);
    EXPECT_NEAR(lifo_total, 20.0, 1e-6);
  }
}

TEST(OnePortWithReturn, MakespanMatchesItsOwnSimulation) {
  const Platform plat = Platform::from_speeds({2.0, 3.0}, 0.5);
  const auto alloc =
      one_port_fifo_with_return(plat, 12.0, 0.5, identity_order(2));
  const double simulated = simulate_one_port_with_return(
      plat, alloc.amounts, 0.5, identity_order(2), identity_order(2));
  EXPECT_NEAR(alloc.makespan, simulated, 1e-9);
}

TEST(OnePortWithReturn, DeltaZeroApproachesClassicalOnePort) {
  const Platform plat = Platform::from_speeds({1.0, 2.0, 3.0}, 0.4);
  const auto with =
      one_port_fifo_with_return(plat, 25.0, 0.0, identity_order(3));
  const auto classical = linear_one_port_single_round(plat, 25.0);
  EXPECT_NEAR(with.makespan, classical.makespan,
              1e-4 * classical.makespan);
}

// Documented phenomenon (ref [29]): with return messages, a fixed
// all-workers one-port order can lose to the best worker running alone —
// participation of every processor is *not* always optimal. We pin one
// such instance so the behaviour stays visible.
TEST(OnePortWithReturn, FixedOrderCanLoseToSoloWorker) {
  util::Rng rng(2 * 271 + 9);  // the seed that exhibited it
  const auto p = static_cast<std::size_t>(rng.uniform_int(2, 6));
  const auto plat = platform::make_platform(
      platform::SpeedModel::kUniform, p, rng);
  const double delta = rng.uniform(0.0, 1.5);
  const double load = rng.uniform(1.0, 100.0);
  const auto fifo =
      one_port_fifo_with_return(plat, load, delta, identity_order(p));
  double solo = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < p; ++i) {
    solo = std::min(solo, (plat.c(i) * (1.0 + delta) + plat.w(i)) * load);
  }
  EXPECT_GT(fifo.makespan, solo);
}

// Property: allocations stay feasible and self-consistent, and no
// schedule beats the parallel-links (contention-free) lower bound.
class ReturnMessagesProperty : public ::testing::TestWithParam<int> {};

TEST_P(ReturnMessagesProperty, SolversProduceFeasibleSchedules) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 271 + 9);
  const auto p = static_cast<std::size_t>(rng.uniform_int(2, 6));
  const auto plat = platform::make_platform(
      platform::SpeedModel::kUniform, p, rng);
  const double delta = rng.uniform(0.0, 1.5);
  const double load = rng.uniform(1.0, 100.0);
  const auto order = identity_order(p);

  const auto fifo = one_port_fifo_with_return(plat, load, delta, order);
  const auto lifo = one_port_lifo_with_return(plat, load, delta, order);

  // Self-consistency: reported makespan equals the simulated one.
  std::vector<std::size_t> reversed(order.rbegin(), order.rend());
  EXPECT_NEAR(fifo.makespan,
              simulate_one_port_with_return(plat, fifo.amounts, delta,
                                            order, order),
              1e-9 * fifo.makespan);
  EXPECT_NEAR(lifo.makespan,
              simulate_one_port_with_return(plat, lifo.amounts, delta,
                                            order, reversed),
              1e-9 * lifo.makespan);

  // Never better than the contention-free equal-finish bound.
  const auto ideal = linear_parallel_with_return(plat, load, delta);
  EXPECT_GE(fifo.makespan, ideal.makespan * (1.0 - 1e-9));
  EXPECT_GE(lifo.makespan, ideal.makespan * (1.0 - 1e-9));

  // All load distributed, non-negatively.
  double fifo_total = 0.0;
  double lifo_total = 0.0;
  for (std::size_t i = 0; i < p; ++i) {
    ASSERT_GE(fifo.amounts[i], 0.0);
    ASSERT_GE(lifo.amounts[i], 0.0);
    fifo_total += fifo.amounts[i];
    lifo_total += lifo.amounts[i];
  }
  EXPECT_NEAR(fifo_total, load, 1e-6 * load);
  EXPECT_NEAR(lifo_total, load, 1e-6 * load);
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, ReturnMessagesProperty,
                         ::testing::Range(0, 10));

}  // namespace
}  // namespace nldl::dlt
