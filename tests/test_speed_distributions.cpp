// Unit and statistical tests for the Section 4.3 platform generators.
#include "platform/speed_distributions.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/assert.hpp"
#include "util/stats.hpp"

namespace nldl::platform {
namespace {

TEST(SpeedModel, Names) {
  EXPECT_EQ(to_string(SpeedModel::kHomogeneous), "homogeneous");
  EXPECT_EQ(to_string(SpeedModel::kUniform), "uniform[1,100]");
  EXPECT_EQ(to_string(SpeedModel::kLogNormal), "lognormal(0,1)");
  EXPECT_EQ(to_string(SpeedModel::kTwoClass), "two-class(1,k)");
}

TEST(MakePlatform, HomogeneousIsUniform) {
  util::Rng rng(1);
  const Platform plat = make_platform(SpeedModel::kHomogeneous, 10, rng);
  EXPECT_EQ(plat.size(), 10U);
  EXPECT_DOUBLE_EQ(plat.heterogeneity(), 1.0);
}

TEST(MakePlatform, UniformStaysInRange) {
  util::Rng rng(2);
  const Platform plat = make_platform(SpeedModel::kUniform, 1000, rng);
  for (std::size_t i = 0; i < plat.size(); ++i) {
    ASSERT_GE(plat.speed(i), 1.0);
    ASSERT_LT(plat.speed(i), 100.0);
  }
}

TEST(MakePlatform, UniformMeanIsCentered) {
  util::Rng rng(3);
  util::RunningStats stats;
  for (int rep = 0; rep < 50; ++rep) {
    const Platform plat = make_platform(SpeedModel::kUniform, 1000, rng);
    for (std::size_t i = 0; i < plat.size(); ++i) stats.push(plat.speed(i));
  }
  EXPECT_NEAR(stats.mean(), 50.5, 0.5);
}

TEST(MakePlatform, LogNormalMedianNearOne) {
  util::Rng rng(4);
  std::vector<double> speeds;
  for (int rep = 0; rep < 50; ++rep) {
    const Platform plat = make_platform(SpeedModel::kLogNormal, 1000, rng);
    for (std::size_t i = 0; i < plat.size(); ++i) {
      speeds.push_back(plat.speed(i));
    }
  }
  EXPECT_NEAR(util::quantile(std::move(speeds), 0.5), 1.0, 0.05);
}

TEST(MakePlatform, LogNormalIsHeavyTailed) {
  util::Rng rng(5);
  const Platform plat = make_platform(SpeedModel::kLogNormal, 2000, rng);
  // With 2000 draws of exp(N(0,1)), heterogeneity far exceeds 10 w.h.p.
  EXPECT_GT(plat.heterogeneity(), 10.0);
}

TEST(MakePlatform, TwoClassUsesParamK) {
  util::Rng rng(6);
  SpeedModelParams params;
  params.two_class_k = 16.0;
  const Platform plat =
      make_platform(SpeedModel::kTwoClass, 8, rng, params);
  EXPECT_DOUBLE_EQ(plat.heterogeneity(), 16.0);
}

TEST(MakePlatform, DeterministicGivenSeed) {
  util::Rng rng_a(99);
  util::Rng rng_b(99);
  const Platform a = make_platform(SpeedModel::kLogNormal, 50, rng_a);
  const Platform b = make_platform(SpeedModel::kLogNormal, 50, rng_b);
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_DOUBLE_EQ(a.speed(i), b.speed(i));
  }
}

TEST(MakePlatform, CommCostParameter) {
  util::Rng rng(7);
  SpeedModelParams params;
  params.comm_cost = 4.0;
  const Platform plat =
      make_platform(SpeedModel::kUniform, 5, rng, params);
  for (std::size_t i = 0; i < plat.size(); ++i) {
    EXPECT_DOUBLE_EQ(plat.c(i), 4.0);
  }
}

TEST(MakePlatform, RejectsZeroWorkers) {
  util::Rng rng(8);
  EXPECT_THROW((void)make_platform(SpeedModel::kUniform, 0, rng),
               util::PreconditionError);
}

}  // namespace
}  // namespace nldl::platform
