// Unit tests for the online (open-system) scheduling subsystem: arrival
// determinism, scheduler orderings, queue stability, service metrics.
#include "online/server.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "online/arrivals.hpp"
#include "online/metrics.hpp"
#include "online/scheduler.hpp"
#include "util/assert.hpp"
#include "util/stats.hpp"

namespace nldl::online {
namespace {

JobMix linear_mix(double lo = 50.0, double hi = 150.0) {
  JobMix mix;
  mix.load_lo = lo;
  mix.load_hi = hi;
  return mix;
}

JobMix mixed_alpha_mix() {
  JobMix mix;
  mix.alphas = {1.0, 2.0};
  mix.alpha_weights = {0.5, 0.5};
  return mix;
}

void expect_same_jobs(const std::vector<Job>& a, const std::vector<Job>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id);
    EXPECT_DOUBLE_EQ(a[i].arrival, b[i].arrival);
    EXPECT_DOUBLE_EQ(a[i].load, b[i].load);
    EXPECT_DOUBLE_EQ(a[i].alpha, b[i].alpha);
  }
}

TEST(Arrivals, PoissonIsDeterministicPerSeed) {
  const PoissonArrivals process(2.0, mixed_alpha_mix());
  util::Rng rng_a(42);
  util::Rng rng_b(42);
  const auto a = process.generate(200.0, rng_a);
  const auto b = process.generate(200.0, rng_b);
  expect_same_jobs(a, b);

  util::Rng rng_c(43);
  const auto c = process.generate(200.0, rng_c);
  ASSERT_FALSE(c.empty());
  EXPECT_NE(a.front().arrival, c.front().arrival);
}

TEST(Arrivals, PoissonHitsTheConfiguredRate) {
  const double rate = 3.0;
  const PoissonArrivals process(rate, linear_mix());
  util::Rng rng(7);
  const auto jobs = process.generate(2000.0, rng);
  const double empirical = static_cast<double>(jobs.size()) / 2000.0;
  EXPECT_NEAR(empirical, rate, 0.15);
  for (std::size_t i = 1; i < jobs.size(); ++i) {
    EXPECT_GE(jobs[i].arrival, jobs[i - 1].arrival);
    EXPECT_EQ(jobs[i].id, i);
  }
  for (const Job& job : jobs) {
    EXPECT_LT(job.arrival, 2000.0);
    EXPECT_GE(job.load, 50.0);
    EXPECT_LE(job.load, 150.0);
  }
}

TEST(Arrivals, DeterministicProcessHasExactSpacing) {
  const DeterministicArrivals process(2.5, linear_mix(100.0, 100.0));
  util::Rng rng(1);
  const auto jobs = process.generate(10.0, rng);
  ASSERT_EQ(jobs.size(), 4u);  // t = 0, 2.5, 5, 7.5
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_DOUBLE_EQ(jobs[i].arrival, 2.5 * static_cast<double>(i));
    EXPECT_DOUBLE_EQ(jobs[i].load, 100.0);
  }

  // No accumulated-sum drift: 0.1 is inexact in binary, but the t = 1.0
  // tick must still be excluded from [0, 1).
  const DeterministicArrivals fine(0.1, linear_mix(100.0, 100.0));
  EXPECT_EQ(fine.generate(1.0, rng).size(), 10u);
}

TEST(Arrivals, MmppIsBurstierThanPoissonAtTheSameMeanRate) {
  // Quiet rate 0.5, burst rate 20, equal dwell: strongly bimodal gaps.
  const MmppArrivals mmpp(0.5, 20.0, 20.0, 20.0, linear_mix());
  util::Rng rng_m(11);
  const auto bursty = mmpp.generate(4000.0, rng_m);
  ASSERT_GT(bursty.size(), 100u);

  const double mean_rate =
      static_cast<double>(bursty.size()) / 4000.0;
  const PoissonArrivals poisson(mean_rate, linear_mix());
  util::Rng rng_p(11);
  const auto smooth = poisson.generate(4000.0, rng_p);

  const auto gap_cv = [](const std::vector<Job>& jobs) {
    std::vector<double> gaps;
    for (std::size_t i = 1; i < jobs.size(); ++i) {
      gaps.push_back(jobs[i].arrival - jobs[i - 1].arrival);
    }
    return util::stddev_of(gaps) / util::mean_of(gaps);
  };
  // Poisson inter-arrivals have CV = 1; the MMPP mix is overdispersed.
  EXPECT_GT(gap_cv(bursty), 1.3);
  EXPECT_NEAR(gap_cv(smooth), 1.0, 0.2);

  util::Rng rng_m2(11);
  expect_same_jobs(bursty, mmpp.generate(4000.0, rng_m2));
}

TEST(Arrivals, TraceReplaySortsAndRenumbers) {
  const TraceArrivals trace({{7, 5.0, 10.0, 1.0},
                             {9, 1.0, 20.0, 2.0},
                             {3, 3.0, 30.0, 1.0}});
  const auto& jobs = trace.trace();
  ASSERT_EQ(jobs.size(), 3u);
  EXPECT_DOUBLE_EQ(jobs[0].arrival, 1.0);
  EXPECT_DOUBLE_EQ(jobs[1].arrival, 3.0);
  EXPECT_DOUBLE_EQ(jobs[2].arrival, 5.0);
  for (std::size_t i = 0; i < jobs.size(); ++i) EXPECT_EQ(jobs[i].id, i);

  util::Rng rng(1);
  const auto clipped = trace.generate(4.0, rng);
  ASSERT_EQ(clipped.size(), 2u);
  EXPECT_DOUBLE_EQ(clipped[1].load, 30.0);
}

TEST(Arrivals, TraceReplayParsesFiles) {
  const std::string path = testing::TempDir() + "nldl_trace_test.txt";
  {
    std::ofstream out(path);
    out << "# arrival load alpha\n"
        << "2.5 100 1\n"
        << "\n"
        << "0.5 60 2.0\n";
  }
  const TraceArrivals trace = TraceArrivals::from_file(path);
  ASSERT_EQ(trace.trace().size(), 2u);
  EXPECT_DOUBLE_EQ(trace.trace()[0].arrival, 0.5);
  EXPECT_DOUBLE_EQ(trace.trace()[0].alpha, 2.0);
  EXPECT_DOUBLE_EQ(trace.trace()[1].load, 100.0);
  std::remove(path.c_str());

  EXPECT_THROW(TraceArrivals::from_file("/nonexistent/trace.txt"),
               util::PreconditionError);
}

TEST(Arrivals, ValidatesParameters) {
  EXPECT_THROW(PoissonArrivals(0.0, linear_mix()), util::PreconditionError);
  EXPECT_THROW(DeterministicArrivals(-1.0, linear_mix()),
               util::PreconditionError);
  JobMix bad = linear_mix();
  bad.alphas = {0.5};
  bad.alpha_weights = {1.0};
  EXPECT_THROW(PoissonArrivals(1.0, bad), util::PreconditionError);
  EXPECT_THROW(TraceArrivals({{0, -1.0, 10.0, 1.0}}),
               util::PreconditionError);
}

// --- Server -----------------------------------------------------------------

std::vector<Job> make_jobs(
    const std::vector<std::array<double, 3>>& rows) {
  std::vector<Job> jobs;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    jobs.push_back({i, rows[i][0], rows[i][1], rows[i][2]});
  }
  return jobs;
}

TEST(Server, UncontendedJobsNeverWait) {
  // Period far beyond any service time: every job finds an idle server.
  const auto plat = platform::Platform::homogeneous(4);
  const Server server(plat);
  const DeterministicArrivals process(500.0, linear_mix(80.0, 120.0));
  util::Rng rng(3);
  const auto jobs = process.generate(5000.0, rng);
  ASSERT_GE(jobs.size(), 5u);

  const FcfsScheduler fcfs;
  const auto stats = server.run(jobs, fcfs);
  for (const JobStats& record : stats) {
    EXPECT_DOUBLE_EQ(record.wait(), 0.0);
    // Alone on the full platform, latency IS the isolated makespan (up to
    // the rounding of arrival + service − arrival).
    EXPECT_NEAR(record.slowdown(), 1.0, 1e-9);
    EXPECT_EQ(record.workers, plat.size());
  }
}

TEST(Server, QueueStaysStableAtLowLoad) {
  const auto plat = platform::Platform::homogeneous(8);
  const Server server(plat);
  // Mean isolated makespan ~ a few time units; rate chosen well below
  // the service capacity.
  const PoissonArrivals process(0.02, linear_mix(80.0, 120.0));
  util::Rng rng(17);
  const auto jobs = process.generate(20000.0, rng);
  ASSERT_GT(jobs.size(), 100u);

  const FcfsScheduler fcfs;
  const ServiceMetrics metrics = summarize(server.run(jobs, fcfs),
                                           plat.size());
  EXPECT_LT(metrics.utilization, 0.6);
  EXPECT_LT(metrics.mean_slowdown, 2.0);
  EXPECT_GE(metrics.p99_latency, metrics.p95_latency);
  EXPECT_GE(metrics.p95_latency, metrics.p50_latency);
}

TEST(Server, FcfsServesInArrivalOrder) {
  const auto plat = platform::Platform::homogeneous(4);
  const Server server(plat);
  const auto jobs =
      make_jobs({{0.0, 50.0, 1.0}, {1.0, 60.0, 2.0}, {2.0, 400.0, 1.0}});
  const FcfsScheduler fcfs;
  const auto stats = server.run(jobs, fcfs);
  EXPECT_LT(stats[0].dispatch, stats[1].dispatch);
  EXPECT_LT(stats[1].dispatch, stats[2].dispatch);
  EXPECT_DOUBLE_EQ(stats[1].dispatch, stats[0].finish);
  EXPECT_DOUBLE_EQ(stats[2].dispatch, stats[1].finish);
}

TEST(Server, SpmfPrefersThePredictedShorterJobNotTheSmallerOne) {
  const auto plat = platform::Platform::homogeneous(4);

  // The crux: a 400-unit LINEAR job is predicted faster (T = 200) than a
  // 60-unit QUADRATIC job (T = 240) — smallest-size-first mis-ranks under
  // superlinear cost.
  const Job small_quadratic{1, 1.0, 60.0, 2.0};
  const Job big_linear{2, 2.0, 400.0, 1.0};
  EXPECT_LT(predicted_makespan(big_linear, plat),
            predicted_makespan(small_quadratic, plat));

  const auto jobs =
      make_jobs({{0.0, 50.0, 1.0}, {1.0, 60.0, 2.0}, {2.0, 400.0, 1.0}});
  const Server server(plat);
  const SpmfScheduler spmf;
  const auto spmf_stats = server.run(jobs, spmf);
  const FcfsScheduler fcfs;
  const auto fcfs_stats = server.run(jobs, fcfs);

  // FCFS takes the small quadratic job first; SPMF reorders and serves
  // the big linear job first.
  EXPECT_LT(fcfs_stats[1].dispatch, fcfs_stats[2].dispatch);
  EXPECT_LT(spmf_stats[2].dispatch, spmf_stats[1].dispatch);
}

TEST(Server, SpmfPredictionsMatchTheServersCommModel) {
  // Under one-port the serial feed reverses the parallel-links ranking of
  // these two jobs on a slow shared link (c = 0.7): a comm-matched SPMF
  // must rank by the one-port prediction, not the parallel-links one.
  const auto plat = platform::Platform::from_speeds({1, 1, 1, 1}, 0.7);
  const Job big_linear{0, 0.0, 400.0, 1.0};
  const Job small_quadratic{1, 0.0, 60.0, 2.0};
  using sim::CommModelKind;
  EXPECT_LT(predicted_makespan(big_linear, plat,
                               CommModelKind::kParallelLinks),
            predicted_makespan(small_quadratic, plat,
                               CommModelKind::kParallelLinks));
  EXPECT_GT(predicted_makespan(big_linear, plat, CommModelKind::kOnePort),
            predicted_makespan(small_quadratic, plat,
                               CommModelKind::kOnePort));

  const auto jobs =
      make_jobs({{0.0, 10.0, 1.0}, {1.0, 400.0, 1.0}, {1.5, 60.0, 2.0}});
  ServerOptions one_port;
  one_port.comm = CommModelKind::kOnePort;
  const Server server(plat, one_port);
  const SpmfScheduler matched(CommModelKind::kOnePort);
  const auto stats = server.run(jobs, matched);
  // The one-port prediction says the quadratic job is shorter: it goes
  // first even though a parallel-links (or size-based) ranking disagrees.
  EXPECT_LT(stats[2].dispatch, stats[1].dispatch);
}

TEST(Server, FairShareOverlapsJobsOnDisjointPartitions) {
  const auto plat = platform::Platform::homogeneous(4);
  const Server server(plat);
  const auto jobs = make_jobs({{0.0, 100.0, 1.0}, {0.5, 100.0, 1.0}});

  const FcfsScheduler fcfs;
  const auto serial = server.run(jobs, fcfs);
  EXPECT_DOUBLE_EQ(serial[1].dispatch, serial[0].finish);
  EXPECT_EQ(serial[0].workers, 4u);

  const FairShareScheduler fair(2);
  const auto shared = server.run(jobs, fair);
  EXPECT_DOUBLE_EQ(shared[0].dispatch, 0.0);
  EXPECT_DOUBLE_EQ(shared[1].dispatch, 0.5);  // before job 0 finishes
  EXPECT_LT(shared[1].dispatch, shared[0].finish);
  EXPECT_EQ(shared[0].workers, 2u);
  EXPECT_EQ(shared[1].workers, 2u);
  EXPECT_NE(shared[0].slot, shared[1].slot);
  // Half the platform, zero wait: slowdown comes from the smaller share.
  EXPECT_GT(shared[0].slowdown(), 1.0);
}

TEST(Server, SharesAreClampedToThePlatform) {
  const auto plat = platform::Platform::homogeneous(2);
  const Server server(plat);
  const auto jobs = make_jobs({{0.0, 50.0, 1.0}, {0.0, 50.0, 1.0},
                               {0.0, 50.0, 1.0}});
  const FairShareScheduler fair(8);  // more shares than workers
  const auto stats = server.run(jobs, fair);
  for (const JobStats& record : stats) EXPECT_EQ(record.workers, 1u);
}

TEST(Server, RunsUnderEveryCommModel) {
  const auto plat = platform::Platform::two_class(4, 1.0, 3.0);
  const auto jobs =
      make_jobs({{0.0, 80.0, 2.0}, {5.0, 120.0, 1.0}, {6.0, 60.0, 2.0}});
  const FcfsScheduler fcfs;

  ServerOptions parallel;
  ServerOptions one_port;
  one_port.comm = sim::CommModelKind::kOnePort;
  ServerOptions bounded;
  bounded.comm = sim::CommModelKind::kBoundedMultiport;
  bounded.capacity = 2.0;

  for (const ServerOptions& options : {parallel, one_port, bounded}) {
    const Server server(plat, options);
    const auto stats = server.run(jobs, fcfs);
    for (const JobStats& record : stats) {
      EXPECT_TRUE(std::isfinite(record.finish));
      EXPECT_GE(record.finish, record.dispatch);
      EXPECT_GE(record.slowdown(), 1.0 - 1e-12);
    }
    // Bit-identical replay: the server consumes no RNG.
    const auto again = server.run(jobs, fcfs);
    for (std::size_t i = 0; i < stats.size(); ++i) {
      EXPECT_EQ(stats[i].dispatch, again[i].dispatch);
      EXPECT_EQ(stats[i].finish, again[i].finish);
      EXPECT_EQ(stats[i].compute_time, again[i].compute_time);
      EXPECT_EQ(stats[i].isolated_makespan, again[i].isolated_makespan);
    }
  }
}

TEST(Server, ValidatesTheJobStream) {
  const auto plat = platform::Platform::homogeneous(2);
  const Server server(plat);
  const FcfsScheduler fcfs;
  EXPECT_THROW(server.run(make_jobs({{5.0, 10.0, 1.0}, {1.0, 10.0, 1.0}}),
                          fcfs),
               util::PreconditionError);
  auto bad_ids = make_jobs({{0.0, 10.0, 1.0}});
  bad_ids[0].id = 7;
  EXPECT_THROW(server.run(bad_ids, fcfs), util::PreconditionError);
  EXPECT_THROW(server.run(make_jobs({{0.0, 0.0, 1.0}}), fcfs),
               util::PreconditionError);
}

TEST(Server, SkippingIsolatedBaselineZeroesSlowdown) {
  const auto plat = platform::Platform::homogeneous(2);
  ServerOptions options;
  options.record_isolated = false;
  const Server server(plat, options);
  const FcfsScheduler fcfs;
  const auto stats = server.run(make_jobs({{0.0, 10.0, 1.0}}), fcfs);
  EXPECT_DOUBLE_EQ(stats[0].isolated_makespan, 0.0);
  EXPECT_DOUBLE_EQ(stats[0].slowdown(), 1.0);
}

// --- Metrics ----------------------------------------------------------------

TEST(Metrics, SummarizeMatchesHandComputation) {
  // Three jobs on p = 2; percentiles of n <= 5 samples are exact.
  std::vector<JobStats> stats(3);
  for (std::size_t i = 0; i < 3; ++i) {
    stats[i].job = {i, 1.0 * static_cast<double>(i), 10.0, 1.0};
    stats[i].dispatch = stats[i].job.arrival + 1.0;
    stats[i].finish = stats[i].dispatch + 2.0 + static_cast<double>(i);
    stats[i].compute_time = 1.0;
    stats[i].isolated_makespan = 2.0;
  }
  const ServiceMetrics metrics = summarize(stats, 2);
  EXPECT_EQ(metrics.jobs, 3u);
  EXPECT_DOUBLE_EQ(metrics.horizon, stats[2].finish);
  EXPECT_DOUBLE_EQ(metrics.throughput, 3.0 / stats[2].finish);
  EXPECT_DOUBLE_EQ(metrics.utilization, 3.0 / (2.0 * stats[2].finish));
  EXPECT_DOUBLE_EQ(metrics.mean_wait, 1.0);
  EXPECT_DOUBLE_EQ(metrics.mean_latency, 4.0);  // latencies 3, 4, 5
  EXPECT_DOUBLE_EQ(metrics.p50_latency, util::quantile({3, 4, 5}, 0.5));
  EXPECT_DOUBLE_EQ(metrics.p99_latency, util::quantile({3, 4, 5}, 0.99));
  EXPECT_DOUBLE_EQ(metrics.mean_slowdown, 2.0);
  EXPECT_EQ(metrics.signature().size(), 14u);
}

TEST(Metrics, EmptyRunIsAllZeros) {
  const ServiceMetrics metrics = summarize({}, 4);
  EXPECT_EQ(metrics.jobs, 0u);
  EXPECT_DOUBLE_EQ(metrics.throughput, 0.0);
  EXPECT_DOUBLE_EQ(metrics.p99_latency, 0.0);
}

}  // namespace
}  // namespace nldl::online
