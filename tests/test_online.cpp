// Unit tests for the online (open-system) scheduling subsystem: arrival
// determinism, scheduler orderings, queue stability, service metrics.
#include "online/server.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "online/arrivals.hpp"
#include "online/metrics.hpp"
#include "online/scheduler.hpp"
#include "util/assert.hpp"
#include "util/stats.hpp"

namespace nldl::online {
namespace {

JobMix linear_mix(double lo = 50.0, double hi = 150.0) {
  JobMix mix;
  mix.load_lo = lo;
  mix.load_hi = hi;
  return mix;
}

JobMix mixed_alpha_mix() {
  JobMix mix;
  mix.alphas = {1.0, 2.0};
  mix.alpha_weights = {0.5, 0.5};
  return mix;
}

void expect_same_jobs(const std::vector<Job>& a, const std::vector<Job>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id);
    EXPECT_DOUBLE_EQ(a[i].arrival, b[i].arrival);
    EXPECT_DOUBLE_EQ(a[i].load, b[i].load);
    EXPECT_DOUBLE_EQ(a[i].alpha, b[i].alpha);
  }
}

TEST(Arrivals, PoissonIsDeterministicPerSeed) {
  const PoissonArrivals process(2.0, mixed_alpha_mix());
  util::Rng rng_a(42);
  util::Rng rng_b(42);
  const auto a = process.generate(200.0, rng_a);
  const auto b = process.generate(200.0, rng_b);
  expect_same_jobs(a, b);

  util::Rng rng_c(43);
  const auto c = process.generate(200.0, rng_c);
  ASSERT_FALSE(c.empty());
  EXPECT_NE(a.front().arrival, c.front().arrival);
}

TEST(Arrivals, PoissonHitsTheConfiguredRate) {
  const double rate = 3.0;
  const PoissonArrivals process(rate, linear_mix());
  util::Rng rng(7);
  const auto jobs = process.generate(2000.0, rng);
  const double empirical = static_cast<double>(jobs.size()) / 2000.0;
  EXPECT_NEAR(empirical, rate, 0.15);
  for (std::size_t i = 1; i < jobs.size(); ++i) {
    EXPECT_GE(jobs[i].arrival, jobs[i - 1].arrival);
    EXPECT_EQ(jobs[i].id, i);
  }
  for (const Job& job : jobs) {
    EXPECT_LT(job.arrival, 2000.0);
    EXPECT_GE(job.load, 50.0);
    EXPECT_LE(job.load, 150.0);
  }
}

TEST(Arrivals, DeterministicProcessHasExactSpacing) {
  const DeterministicArrivals process(2.5, linear_mix(100.0, 100.0));
  util::Rng rng(1);
  const auto jobs = process.generate(10.0, rng);
  ASSERT_EQ(jobs.size(), 4u);  // t = 0, 2.5, 5, 7.5
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_DOUBLE_EQ(jobs[i].arrival, 2.5 * static_cast<double>(i));
    EXPECT_DOUBLE_EQ(jobs[i].load, 100.0);
  }

  // No accumulated-sum drift: 0.1 is inexact in binary, but the t = 1.0
  // tick must still be excluded from [0, 1).
  const DeterministicArrivals fine(0.1, linear_mix(100.0, 100.0));
  EXPECT_EQ(fine.generate(1.0, rng).size(), 10u);
}

TEST(Arrivals, MmppIsBurstierThanPoissonAtTheSameMeanRate) {
  // Quiet rate 0.5, burst rate 20, equal dwell: strongly bimodal gaps.
  const MmppArrivals mmpp(0.5, 20.0, 20.0, 20.0, linear_mix());
  util::Rng rng_m(11);
  const auto bursty = mmpp.generate(4000.0, rng_m);
  ASSERT_GT(bursty.size(), 100u);

  const double mean_rate =
      static_cast<double>(bursty.size()) / 4000.0;
  const PoissonArrivals poisson(mean_rate, linear_mix());
  util::Rng rng_p(11);
  const auto smooth = poisson.generate(4000.0, rng_p);

  const auto gap_cv = [](const std::vector<Job>& jobs) {
    std::vector<double> gaps;
    for (std::size_t i = 1; i < jobs.size(); ++i) {
      gaps.push_back(jobs[i].arrival - jobs[i - 1].arrival);
    }
    return util::stddev_of(gaps) / util::mean_of(gaps);
  };
  // Poisson inter-arrivals have CV = 1; the MMPP mix is overdispersed.
  EXPECT_GT(gap_cv(bursty), 1.3);
  EXPECT_NEAR(gap_cv(smooth), 1.0, 0.2);

  util::Rng rng_m2(11);
  expect_same_jobs(bursty, mmpp.generate(4000.0, rng_m2));
}

TEST(Arrivals, TraceReplaySortsAndRenumbers) {
  const TraceArrivals trace({{7, 5.0, 10.0, 1.0},
                             {9, 1.0, 20.0, 2.0},
                             {3, 3.0, 30.0, 1.0}});
  const auto& jobs = trace.trace();
  ASSERT_EQ(jobs.size(), 3u);
  EXPECT_DOUBLE_EQ(jobs[0].arrival, 1.0);
  EXPECT_DOUBLE_EQ(jobs[1].arrival, 3.0);
  EXPECT_DOUBLE_EQ(jobs[2].arrival, 5.0);
  for (std::size_t i = 0; i < jobs.size(); ++i) EXPECT_EQ(jobs[i].id, i);

  util::Rng rng(1);
  const auto clipped = trace.generate(4.0, rng);
  ASSERT_EQ(clipped.size(), 2u);
  EXPECT_DOUBLE_EQ(clipped[1].load, 30.0);
}

TEST(Arrivals, TraceReplayParsesFiles) {
  const std::string path = testing::TempDir() + "nldl_trace_test.txt";
  {
    std::ofstream out(path);
    out << "# arrival load alpha\n"
        << "2.5 100 1\n"
        << "\n"
        << "0.5 60 2.0\n";
  }
  const TraceArrivals trace = TraceArrivals::from_file(path);
  ASSERT_EQ(trace.trace().size(), 2u);
  EXPECT_DOUBLE_EQ(trace.trace()[0].arrival, 0.5);
  EXPECT_DOUBLE_EQ(trace.trace()[0].alpha, 2.0);
  EXPECT_DOUBLE_EQ(trace.trace()[1].load, 100.0);
  std::remove(path.c_str());

  EXPECT_THROW(TraceArrivals::from_file("/nonexistent/trace.txt"),
               util::PreconditionError);
}

TEST(Arrivals, ValidatesParameters) {
  EXPECT_THROW(PoissonArrivals(0.0, linear_mix()), util::PreconditionError);
  EXPECT_THROW(DeterministicArrivals(-1.0, linear_mix()),
               util::PreconditionError);
  JobMix bad = linear_mix();
  bad.alphas = {0.5};
  bad.alpha_weights = {1.0};
  EXPECT_THROW(PoissonArrivals(1.0, bad), util::PreconditionError);
  EXPECT_THROW(TraceArrivals({{0, -1.0, 10.0, 1.0}}),
               util::PreconditionError);
}

// --- Server -----------------------------------------------------------------

std::vector<Job> make_jobs(
    const std::vector<std::array<double, 3>>& rows) {
  std::vector<Job> jobs;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    jobs.push_back({i, rows[i][0], rows[i][1], rows[i][2]});
  }
  return jobs;
}

TEST(Server, UncontendedJobsNeverWait) {
  // Period far beyond any service time: every job finds an idle server.
  const auto plat = platform::Platform::homogeneous(4);
  const Server server(plat);
  const DeterministicArrivals process(500.0, linear_mix(80.0, 120.0));
  util::Rng rng(3);
  const auto jobs = process.generate(5000.0, rng);
  ASSERT_GE(jobs.size(), 5u);

  const FcfsScheduler fcfs;
  const auto stats = server.run(jobs, fcfs);
  for (const JobStats& record : stats) {
    EXPECT_DOUBLE_EQ(record.wait(), 0.0);
    // Alone on the full platform, latency IS the isolated makespan (up to
    // the rounding of arrival + service − arrival).
    EXPECT_NEAR(record.slowdown(), 1.0, 1e-9);
    EXPECT_EQ(record.workers, plat.size());
  }
}

TEST(Server, QueueStaysStableAtLowLoad) {
  const auto plat = platform::Platform::homogeneous(8);
  const Server server(plat);
  // Mean isolated makespan ~ a few time units; rate chosen well below
  // the service capacity.
  const PoissonArrivals process(0.02, linear_mix(80.0, 120.0));
  util::Rng rng(17);
  const auto jobs = process.generate(20000.0, rng);
  ASSERT_GT(jobs.size(), 100u);

  const FcfsScheduler fcfs;
  const ServiceMetrics metrics = summarize(server.run(jobs, fcfs),
                                           plat.size());
  EXPECT_LT(metrics.utilization, 0.6);
  EXPECT_LT(metrics.mean_slowdown, 2.0);
  EXPECT_GE(metrics.p99_latency, metrics.p95_latency);
  EXPECT_GE(metrics.p95_latency, metrics.p50_latency);
}

TEST(Server, FcfsServesInArrivalOrder) {
  const auto plat = platform::Platform::homogeneous(4);
  const Server server(plat);
  const auto jobs =
      make_jobs({{0.0, 50.0, 1.0}, {1.0, 60.0, 2.0}, {2.0, 400.0, 1.0}});
  const FcfsScheduler fcfs;
  const auto stats = server.run(jobs, fcfs);
  EXPECT_LT(stats[0].dispatch, stats[1].dispatch);
  EXPECT_LT(stats[1].dispatch, stats[2].dispatch);
  EXPECT_DOUBLE_EQ(stats[1].dispatch, stats[0].finish);
  EXPECT_DOUBLE_EQ(stats[2].dispatch, stats[1].finish);
}

TEST(Server, SpmfPrefersThePredictedShorterJobNotTheSmallerOne) {
  const auto plat = platform::Platform::homogeneous(4);

  // The crux: a 400-unit LINEAR job is predicted faster (T = 200) than a
  // 60-unit QUADRATIC job (T = 240) — smallest-size-first mis-ranks under
  // superlinear cost.
  const Job small_quadratic{1, 1.0, 60.0, 2.0};
  const Job big_linear{2, 2.0, 400.0, 1.0};
  EXPECT_LT(predicted_makespan(big_linear, plat),
            predicted_makespan(small_quadratic, plat));

  const auto jobs =
      make_jobs({{0.0, 50.0, 1.0}, {1.0, 60.0, 2.0}, {2.0, 400.0, 1.0}});
  const Server server(plat);
  const SpmfScheduler spmf;
  const auto spmf_stats = server.run(jobs, spmf);
  const FcfsScheduler fcfs;
  const auto fcfs_stats = server.run(jobs, fcfs);

  // FCFS takes the small quadratic job first; SPMF reorders and serves
  // the big linear job first.
  EXPECT_LT(fcfs_stats[1].dispatch, fcfs_stats[2].dispatch);
  EXPECT_LT(spmf_stats[2].dispatch, spmf_stats[1].dispatch);
}

TEST(Server, SpmfPredictionsMatchTheServersCommModel) {
  // Under one-port the serial feed reverses the parallel-links ranking of
  // these two jobs on a slow shared link (c = 0.7): a comm-matched SPMF
  // must rank by the one-port prediction, not the parallel-links one.
  const auto plat = platform::Platform::from_speeds({1, 1, 1, 1}, 0.7);
  const Job big_linear{0, 0.0, 400.0, 1.0};
  const Job small_quadratic{1, 0.0, 60.0, 2.0};
  using sim::CommModelKind;
  EXPECT_LT(predicted_makespan(big_linear, plat,
                               CommModelKind::kParallelLinks),
            predicted_makespan(small_quadratic, plat,
                               CommModelKind::kParallelLinks));
  EXPECT_GT(predicted_makespan(big_linear, plat, CommModelKind::kOnePort),
            predicted_makespan(small_quadratic, plat,
                               CommModelKind::kOnePort));

  const auto jobs =
      make_jobs({{0.0, 10.0, 1.0}, {1.0, 400.0, 1.0}, {1.5, 60.0, 2.0}});
  ServerOptions one_port;
  one_port.comm = CommModelKind::kOnePort;
  const Server server(plat, one_port);
  const SpmfScheduler matched(CommModelKind::kOnePort);
  const auto stats = server.run(jobs, matched);
  // The one-port prediction says the quadratic job is shorter: it goes
  // first even though a parallel-links (or size-based) ranking disagrees.
  EXPECT_LT(stats[2].dispatch, stats[1].dispatch);
}

TEST(Server, FairShareOverlapsJobsOnDisjointPartitions) {
  const auto plat = platform::Platform::homogeneous(4);
  const Server server(plat);
  const auto jobs = make_jobs({{0.0, 100.0, 1.0}, {0.5, 100.0, 1.0}});

  const FcfsScheduler fcfs;
  const auto serial = server.run(jobs, fcfs);
  EXPECT_DOUBLE_EQ(serial[1].dispatch, serial[0].finish);
  EXPECT_EQ(serial[0].workers, 4u);

  const FairShareScheduler fair(2);
  const auto shared = server.run(jobs, fair);
  EXPECT_DOUBLE_EQ(shared[0].dispatch, 0.0);
  EXPECT_DOUBLE_EQ(shared[1].dispatch, 0.5);  // before job 0 finishes
  EXPECT_LT(shared[1].dispatch, shared[0].finish);
  EXPECT_EQ(shared[0].workers, 2u);
  EXPECT_EQ(shared[1].workers, 2u);
  EXPECT_NE(shared[0].slot, shared[1].slot);
  // Half the platform, zero wait: slowdown comes from the smaller share.
  EXPECT_GT(shared[0].slowdown(), 1.0);
}

TEST(Server, SharesAreClampedToThePlatform) {
  const auto plat = platform::Platform::homogeneous(2);
  const Server server(plat);
  const auto jobs = make_jobs({{0.0, 50.0, 1.0}, {0.0, 50.0, 1.0},
                               {0.0, 50.0, 1.0}});
  const FairShareScheduler fair(8);  // more shares than workers
  const auto stats = server.run(jobs, fair);
  for (const JobStats& record : stats) EXPECT_EQ(record.workers, 1u);
}

TEST(Server, RunsUnderEveryCommModel) {
  const auto plat = platform::Platform::two_class(4, 1.0, 3.0);
  const auto jobs =
      make_jobs({{0.0, 80.0, 2.0}, {5.0, 120.0, 1.0}, {6.0, 60.0, 2.0}});
  const FcfsScheduler fcfs;

  ServerOptions parallel;
  ServerOptions one_port;
  one_port.comm = sim::CommModelKind::kOnePort;
  ServerOptions bounded;
  bounded.comm = sim::CommModelKind::kBoundedMultiport;
  bounded.capacity = 2.0;

  for (const ServerOptions& options : {parallel, one_port, bounded}) {
    const Server server(plat, options);
    const auto stats = server.run(jobs, fcfs);
    for (const JobStats& record : stats) {
      EXPECT_TRUE(std::isfinite(record.finish));
      EXPECT_GE(record.finish, record.dispatch);
      EXPECT_GE(record.slowdown(), 1.0 - 1e-12);
    }
    // Bit-identical replay: the server consumes no RNG.
    const auto again = server.run(jobs, fcfs);
    for (std::size_t i = 0; i < stats.size(); ++i) {
      EXPECT_EQ(stats[i].dispatch, again[i].dispatch);
      EXPECT_EQ(stats[i].finish, again[i].finish);
      EXPECT_EQ(stats[i].compute_time, again[i].compute_time);
      EXPECT_EQ(stats[i].isolated_makespan, again[i].isolated_makespan);
    }
  }
}

TEST(Server, ValidatesTheJobStream) {
  const auto plat = platform::Platform::homogeneous(2);
  const Server server(plat);
  const FcfsScheduler fcfs;
  EXPECT_THROW(server.run(make_jobs({{5.0, 10.0, 1.0}, {1.0, 10.0, 1.0}}),
                          fcfs),
               util::PreconditionError);
  auto bad_ids = make_jobs({{0.0, 10.0, 1.0}});
  bad_ids[0].id = 7;
  EXPECT_THROW(server.run(bad_ids, fcfs), util::PreconditionError);
  EXPECT_THROW(server.run(make_jobs({{0.0, 0.0, 1.0}}), fcfs),
               util::PreconditionError);
}

TEST(Server, SkippingIsolatedBaselineZeroesSlowdown) {
  const auto plat = platform::Platform::homogeneous(2);
  ServerOptions options;
  options.record_isolated = false;
  const Server server(plat, options);
  const FcfsScheduler fcfs;
  const auto stats = server.run(make_jobs({{0.0, 10.0, 1.0}}), fcfs);
  EXPECT_DOUBLE_EQ(stats[0].isolated_makespan, 0.0);
  EXPECT_DOUBLE_EQ(stats[0].slowdown(), 1.0);
}

// --- Metrics ----------------------------------------------------------------

TEST(Metrics, SummarizeMatchesHandComputation) {
  // Three jobs on p = 2; percentiles of n <= 5 samples are exact.
  std::vector<JobStats> stats(3);
  for (std::size_t i = 0; i < 3; ++i) {
    stats[i].job = {i, 1.0 * static_cast<double>(i), 10.0, 1.0};
    stats[i].dispatch = stats[i].job.arrival + 1.0;
    stats[i].finish = stats[i].dispatch + 2.0 + static_cast<double>(i);
    stats[i].compute_time = 1.0;
    stats[i].isolated_makespan = 2.0;
  }
  const ServiceMetrics metrics = summarize(stats, 2);
  EXPECT_EQ(metrics.jobs, 3u);
  EXPECT_DOUBLE_EQ(metrics.horizon, stats[2].finish);
  EXPECT_DOUBLE_EQ(metrics.throughput, 3.0 / stats[2].finish);
  EXPECT_DOUBLE_EQ(metrics.utilization, 3.0 / (2.0 * stats[2].finish));
  EXPECT_DOUBLE_EQ(metrics.mean_wait, 1.0);
  EXPECT_DOUBLE_EQ(metrics.mean_latency, 4.0);  // latencies 3, 4, 5
  EXPECT_DOUBLE_EQ(metrics.p50_latency, util::quantile({3, 4, 5}, 0.5));
  EXPECT_DOUBLE_EQ(metrics.p99_latency, util::quantile({3, 4, 5}, 0.99));
  EXPECT_DOUBLE_EQ(metrics.mean_slowdown, 2.0);
  EXPECT_EQ(metrics.signature().size(), 15u);
  EXPECT_EQ(metrics.degenerate_slowdowns, 0u);
}

TEST(Metrics, EmptyRunIsAllZeros) {
  const ServiceMetrics metrics = summarize({}, 4);
  EXPECT_EQ(metrics.jobs, 0u);
  EXPECT_DOUBLE_EQ(metrics.throughput, 0.0);
  EXPECT_DOUBLE_EQ(metrics.p99_latency, 0.0);
  // EVERY field of the zero-jobs summary is exactly zero — no NaN, no
  // -inf max over an empty accumulator.
  for (const double value : metrics.signature()) {
    EXPECT_DOUBLE_EQ(value, 0.0);
  }
}

TEST(Metrics, SingleJobPercentilesAreThatSample) {
  JobStats only;
  only.job = {0, 1.0, 10.0, 1.0};
  only.dispatch = 2.0;
  only.finish = 5.0;
  only.compute_time = 3.0;
  only.isolated_makespan = 2.0;
  const ServiceMetrics metrics = summarize({only}, 4);
  EXPECT_EQ(metrics.jobs, 1u);
  for (const double value : metrics.signature()) {
    EXPECT_TRUE(std::isfinite(value));
  }
  EXPECT_DOUBLE_EQ(metrics.mean_wait, 1.0);
  EXPECT_DOUBLE_EQ(metrics.max_wait, 1.0);
  // n = 1: every percentile is exactly the one latency sample.
  EXPECT_DOUBLE_EQ(metrics.p50_latency, 4.0);
  EXPECT_DOUBLE_EQ(metrics.p95_latency, 4.0);
  EXPECT_DOUBLE_EQ(metrics.p99_latency, 4.0);
  EXPECT_DOUBLE_EQ(metrics.mean_slowdown, 2.0);
  EXPECT_DOUBLE_EQ(metrics.throughput, 1.0 / 5.0);
  EXPECT_DOUBLE_EQ(metrics.utilization, 3.0 / (4.0 * 5.0));
}

TEST(Metrics, ZeroHorizonSingleJobHasNoDivisionByZero) {
  // A degenerate record finishing at t = 0: throughput and utilization
  // must report 0, not 0/0.
  JobStats instant;
  instant.job = {0, 0.0, 1.0, 1.0};
  const ServiceMetrics metrics = summarize({instant}, 2);
  EXPECT_DOUBLE_EQ(metrics.throughput, 0.0);
  EXPECT_DOUBLE_EQ(metrics.utilization, 0.0);
  for (const double value : metrics.signature()) {
    EXPECT_TRUE(std::isfinite(value));
  }
}

TEST(Metrics, RejectsMalformedRecords) {
  MetricsAccumulator acc(2);
  JobStats bad;
  bad.job = {0, 5.0, 1.0, 1.0};
  bad.dispatch = 1.0;  // dispatch before arrival
  bad.finish = 6.0;
  EXPECT_THROW(acc.push(bad), util::PreconditionError);
  bad.dispatch = 6.0;
  bad.finish = 5.0;  // finish before dispatch
  EXPECT_THROW(acc.push(bad), util::PreconditionError);
  bad.finish = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(acc.push(bad), util::PreconditionError);
  EXPECT_EQ(acc.jobs(), 0u);  // nothing was half-accumulated
}

TEST(Metrics, DegenerateSlowdownSamplesAreExcludedNotPoisonous) {
  // An epsilon isolated baseline overflows latency / baseline to +inf;
  // the documented rule excludes the sample (counting it) so every
  // slowdown statistic stays finite and the P² state never sees a
  // non-finite push (which would throw mid-push and leave the
  // accumulator inconsistent).
  MetricsAccumulator acc(4);
  JobStats sane;
  sane.job = {0, 0.0, 10.0, 1.0};
  sane.dispatch = 1.0;
  sane.finish = 5.0;
  sane.compute_time = 3.0;
  sane.isolated_makespan = 2.0;
  JobStats degenerate = sane;
  degenerate.job.id = 1;
  degenerate.isolated_makespan = 5e-324;  // denormal: latency / it = inf
  ASSERT_TRUE(std::isinf(degenerate.slowdown()));
  acc.push(sane);
  acc.push(degenerate);
  acc.push(sane);
  const ServiceMetrics metrics = acc.finish();
  EXPECT_EQ(metrics.jobs, 3u);
  EXPECT_EQ(metrics.degenerate_slowdowns, 1u);
  for (const double value : metrics.signature()) {
    EXPECT_TRUE(std::isfinite(value));
  }
  // The excluded job still counts toward latency and throughput, and the
  // surviving slowdown samples are unpolluted.
  EXPECT_DOUBLE_EQ(metrics.mean_latency, 5.0);
  EXPECT_DOUBLE_EQ(metrics.mean_slowdown, 2.5);
  EXPECT_DOUBLE_EQ(metrics.p50_slowdown, 2.5);
  EXPECT_DOUBLE_EQ(metrics.p95_slowdown, 2.5);
  EXPECT_DOUBLE_EQ(metrics.p99_slowdown, 2.5);
}

TEST(Metrics, AllDegenerateSlowdownsReportZeroNotEmptyEstimators) {
  MetricsAccumulator acc(2);
  JobStats degenerate;
  degenerate.job = {0, 0.0, 1.0, 1.0};
  degenerate.dispatch = 0.0;
  degenerate.finish = 4.0;
  degenerate.isolated_makespan = 5e-324;
  acc.push(degenerate);
  const ServiceMetrics metrics = acc.finish();
  EXPECT_EQ(metrics.degenerate_slowdowns, 1u);
  EXPECT_DOUBLE_EQ(metrics.mean_slowdown, 0.0);
  EXPECT_DOUBLE_EQ(metrics.p99_slowdown, 0.0);
  for (const double value : metrics.signature()) {
    EXPECT_TRUE(std::isfinite(value));
  }
}

// --- PredictionCache --------------------------------------------------------

TEST(PredictionCache, MemoizesPerJobId) {
  const auto plat = platform::Platform::homogeneous(4);
  PredictionCache cache;
  const Job job{7, 0.0, 100.0, 2.0};
  const double first = cache.predict(job, plat, sim::CommModelKind::kParallelLinks);
  const double second = cache.predict(job, plat, sim::CommModelKind::kParallelLinks);
  EXPECT_EQ(first, second);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(first, predicted_makespan(job, plat));
}

TEST(PredictionCache, CommModelChangeReSolvesTheSameJobId) {
  // The satellite case: the same job id re-ranked after a comm-model
  // change must get the matched prediction, not the stale one.
  const auto plat = platform::Platform::from_speeds({1, 1, 1, 1}, 0.7);
  PredictionCache cache;
  const Job job{3, 0.0, 400.0, 1.0};
  const double parallel =
      cache.predict(job, plat, sim::CommModelKind::kParallelLinks);
  const double one_port =
      cache.predict(job, plat, sim::CommModelKind::kOnePort);
  EXPECT_EQ(cache.misses(), 2u);  // the comm change evicted the entry
  EXPECT_NE(parallel, one_port);
  EXPECT_EQ(one_port,
            predicted_makespan(job, plat, sim::CommModelKind::kOnePort));
  // And flipping back re-solves again (the entry was overwritten).
  EXPECT_EQ(cache.predict(job, plat, sim::CommModelKind::kParallelLinks),
            parallel);
  EXPECT_EQ(cache.misses(), 3u);
}

TEST(PredictionCache, ReusedJobIdWithNewShapeReSolves) {
  const auto plat = platform::Platform::homogeneous(4);
  PredictionCache cache;
  const Job original{0, 0.0, 100.0, 1.0};
  const Job reused{0, 0.0, 60.0, 2.0};  // same id, different job
  const double first = cache.predict(original, plat,
                                     sim::CommModelKind::kParallelLinks);
  const double second =
      cache.predict(reused, plat, sim::CommModelKind::kParallelLinks);
  EXPECT_NE(first, second);
  EXPECT_EQ(second, predicted_makespan(reused, plat));
  EXPECT_EQ(cache.misses(), 2u);
}

TEST(PredictionCache, AggregateTyingPlatformsDoNotCollide) {
  // Same worker count, same Σ speed, same Σ c — only the per-worker
  // values differ. The fingerprint must still tell them apart (it
  // digests exact per-worker bits, not aggregate sums).
  const auto het = platform::Platform::from_speeds({1.0, 3.0});
  const auto hom = platform::Platform::from_speeds({2.0, 2.0});
  PredictionCache cache;
  const Job job{0, 0.0, 100.0, 2.0};
  const double on_het =
      cache.predict(job, het, sim::CommModelKind::kParallelLinks);
  const double on_hom =
      cache.predict(job, hom, sim::CommModelKind::kParallelLinks);
  EXPECT_EQ(cache.misses(), 2u);  // the switch evicted and re-solved
  EXPECT_EQ(on_hom, predicted_makespan(job, hom));
  EXPECT_NE(on_het, on_hom);
}

TEST(PredictionCache, PlatformChangeEvictsEverything) {
  const auto big = platform::Platform::homogeneous(8);
  const auto small = platform::Platform::homogeneous(2);
  PredictionCache cache;
  const Job job{0, 0.0, 100.0, 2.0};
  const double on_big =
      cache.predict(job, big, sim::CommModelKind::kParallelLinks);
  const double on_small =
      cache.predict(job, small, sim::CommModelKind::kParallelLinks);
  EXPECT_LT(on_big, on_small);  // more workers, shorter round
  EXPECT_EQ(cache.size(), 1u);  // the big-platform entry was evicted
  EXPECT_EQ(cache.misses(), 2u);
}

TEST(PredictionCache, SpmfSchedulerExposesItsCache) {
  const auto plat = platform::Platform::homogeneous(4);
  const SpmfScheduler spmf;
  const auto jobs =
      make_jobs({{0.0, 50.0, 1.0}, {1.0, 60.0, 2.0}, {2.0, 400.0, 1.0}});
  (void)spmf.pick(jobs, plat);
  EXPECT_EQ(spmf.cache().misses(), 3u);  // one solve per queued job
  (void)spmf.pick(jobs, plat);
  EXPECT_EQ(spmf.cache().misses(), 3u);  // every re-rank is a hit
  EXPECT_EQ(spmf.cache().hits(), 3u);
}

// --- Heavy-tailed job sizes -------------------------------------------------

TEST(Arrivals, ParetoMixDrawsHeavyTailedLoads) {
  JobMix mix;
  mix.load_lo = 10.0;
  mix.load_hi = 1000.0;
  mix.load_dist = LoadDistribution::kPareto;
  mix.pareto_shape = 1.2;
  const PoissonArrivals process(2.0, mix);
  util::Rng rng(5);
  const auto jobs = process.generate(3000.0, rng);
  ASSERT_GT(jobs.size(), 2000u);

  double max_load = 0.0;
  std::size_t small = 0;
  for (const Job& job : jobs) {
    ASSERT_GE(job.load, 10.0);
    ASSERT_LE(job.load, 1000.0);
    max_load = std::max(max_load, job.load);
    if (job.load < 20.0) ++small;
  }
  // Heavy tail: the cap is actually hit AND most jobs stay small
  // (P(X < 20) = 1 − 2^−1.2 ≈ 56%).
  EXPECT_GT(max_load, 900.0);
  EXPECT_GT(static_cast<double>(small) / static_cast<double>(jobs.size()),
            0.45);

  // Empirical mean tracks the truncated-Pareto closed form mean_load().
  double sum = 0.0;
  for (const Job& job : jobs) sum += job.load;
  const double empirical = sum / static_cast<double>(jobs.size());
  EXPECT_NEAR(empirical / mix.mean_load(), 1.0, 0.1);

  util::Rng replay(5);
  expect_same_jobs(jobs, process.generate(3000.0, replay));
}

TEST(Arrivals, ParetoMixValidatesShape) {
  JobMix bad;
  bad.load_dist = LoadDistribution::kPareto;
  bad.pareto_shape = 0.0;
  EXPECT_THROW(PoissonArrivals(1.0, bad), util::PreconditionError);
}

TEST(Arrivals, UniformMeanLoadIsTheMidpoint) {
  EXPECT_DOUBLE_EQ(linear_mix().mean_load(), 100.0);
  JobMix pareto = linear_mix();
  pareto.load_dist = LoadDistribution::kPareto;
  pareto.pareto_shape = 2.0;
  // Truncated Pareto on [50, 150], a = 2: body + cap·tail
  //   = 2·50²·(1/50 − 1/150)/1 ... spelled out: (a/(a−1))·lo^a·(lo^(1−a)
  //   − hi^(1−a)) + hi·(lo/hi)^a = 2·2500·(1/50 − 1/150) + 150/9.
  const double expected =
      2.0 * 2500.0 * (1.0 / 50.0 - 1.0 / 150.0) + 150.0 / 9.0;
  EXPECT_NEAR(pareto.mean_load(), expected, 1e-9);
}

}  // namespace
}  // namespace nldl::online
