// Tests for the parallel merge sort baseline.
#include "sort/merge_sort.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace nldl::sort {
namespace {

TEST(MergeSort, SortsRandomData) {
  util::Rng rng(1);
  std::vector<double> data(50000);
  for (double& v : data) v = rng.uniform(-100.0, 100.0);
  auto expected = data;
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(parallel_merge_sort(std::move(data), 8), expected);
}

TEST(MergeSort, HandlesNonPowerOfTwoWays) {
  util::Rng rng(2);
  for (const std::size_t ways : {1UL, 2UL, 3UL, 5UL, 7UL, 12UL}) {
    std::vector<std::int64_t> data(10007);
    for (auto& v : data) v = rng.uniform_int(-500, 500);
    auto expected = data;
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(parallel_merge_sort(std::move(data), ways), expected)
        << ways << " ways";
  }
}

TEST(MergeSort, TinyInputs) {
  EXPECT_TRUE(parallel_merge_sort(std::vector<double>{}, 4).empty());
  EXPECT_EQ(parallel_merge_sort(std::vector<double>{1.0}, 4),
            (std::vector<double>{1.0}));
  EXPECT_EQ(parallel_merge_sort(std::vector<double>{2.0, 1.0}, 4),
            (std::vector<double>{1.0, 2.0}));
}

TEST(MergeSort, MoreWaysThanElements) {
  std::vector<double> data{3.0, 1.0, 2.0};
  EXPECT_EQ(parallel_merge_sort(std::move(data), 64),
            (std::vector<double>{1.0, 2.0, 3.0}));
}

TEST(MergeSort, ParallelMatchesSerial) {
  util::Rng rng(3);
  std::vector<double> data(100000);
  for (double& v : data) v = rng.normal(0.0, 10.0);
  const auto serial = parallel_merge_sort(data, 6);
  util::ThreadPool pool(2);
  const auto parallel = parallel_merge_sort(std::move(data), 6, &pool);
  EXPECT_EQ(parallel, serial);
}

TEST(MergeSort, AlreadySortedAndReversed) {
  std::vector<double> ascending(9999);
  std::iota(ascending.begin(), ascending.end(), 0.0);
  EXPECT_EQ(parallel_merge_sort(ascending, 4), ascending);
  std::vector<double> descending(ascending.rbegin(), ascending.rend());
  EXPECT_EQ(parallel_merge_sort(std::move(descending), 4), ascending);
}

TEST(MergeSort, RejectsZeroWays) {
  EXPECT_THROW((void)parallel_merge_sort(std::vector<double>{1.0, 2.0}, 0),
               util::PreconditionError);
}

TEST(MergeSort, DuplicateHeavyInput) {
  util::Rng rng(4);
  std::vector<std::int64_t> data(20000);
  for (auto& v : data) v = rng.uniform_int(0, 3);
  auto expected = data;
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(parallel_merge_sort(std::move(data), 5), expected);
}

}  // namespace
}  // namespace nldl::sort
