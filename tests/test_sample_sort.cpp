// Unit + property tests for the parallel sample sort (paper Section 3).
#include "sort/sample_sort.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/rng.hpp"

namespace nldl::sort {
namespace {

std::vector<double> random_doubles(std::size_t n, util::Rng& rng,
                                   double lo = 0.0, double hi = 1.0) {
  std::vector<double> out(n);
  for (double& v : out) v = rng.uniform(lo, hi);
  return out;
}

TEST(DefaultOversampling, LogSquared) {
  EXPECT_EQ(default_oversampling(1 << 10), 100U);  // log2 = 10
  EXPECT_EQ(default_oversampling(1 << 16), 256U);
  EXPECT_GE(default_oversampling(0), 1U);
  EXPECT_GE(default_oversampling(3), 1U);
}

TEST(HomogeneousRanks, MultiplesOfS) {
  EXPECT_EQ(homogeneous_splitter_ranks(4, 3),
            (std::vector<std::size_t>{3, 6, 9}));
  EXPECT_TRUE(homogeneous_splitter_ranks(1, 5).empty());
}

TEST(HeterogeneousRanks, ProportionalToCumulativeSpeed) {
  // speeds 1,1,2: cum shares 0.25, 0.5 → ranks ~ ¼ and ½ of sample.
  const auto ranks = heterogeneous_splitter_ranks({1.0, 1.0, 2.0}, 101);
  ASSERT_EQ(ranks.size(), 2U);
  EXPECT_EQ(ranks[0], 25U);
  EXPECT_EQ(ranks[1], 50U);
}

TEST(HeterogeneousRanks, StrictlyIncreasingUnderSkew) {
  // A tiny share must still get a distinct splitter rank.
  const auto ranks =
      heterogeneous_splitter_ranks({1e-9, 1e-9, 1.0, 1.0}, 50);
  for (std::size_t i = 1; i < ranks.size(); ++i) {
    EXPECT_GT(ranks[i], ranks[i - 1]);
  }
}

TEST(HeterogeneousRanks, HugeLeadingShareStaysInRange) {
  // Regression: a dominant first share used to push trailing forced
  // ranks past the sample bound.
  const auto ranks =
      heterogeneous_splitter_ranks({1e9, 1e-9, 1e-9, 1e-9}, 8);
  ASSERT_EQ(ranks.size(), 3U);
  for (std::size_t i = 0; i < ranks.size(); ++i) {
    EXPECT_LT(ranks[i], 8U);
    if (i > 0) {
      EXPECT_GT(ranks[i], ranks[i - 1]);
    }
  }
}

TEST(SampleSortHeterogeneous, ExtremeSkewStillSorts) {
  util::Rng rng(99);
  std::vector<double> data(5000);
  for (double& v : data) v = rng.uniform();
  auto expected = data;
  std::sort(expected.begin(), expected.end());
  SampleSortConfig config;
  EXPECT_EQ(sample_sort_heterogeneous(std::move(data),
                                      {1e9, 1e-9, 1e-9, 1e-9}, config),
            expected);
}

TEST(SampleSort, SortsUniformData) {
  util::Rng rng(1);
  auto data = random_doubles(20000, rng);
  auto expected = data;
  std::sort(expected.begin(), expected.end());
  SampleSortConfig config;
  config.num_buckets = 8;
  EXPECT_EQ(sample_sort(std::move(data), config), expected);
}

TEST(SampleSort, SortsAdversarialPatterns) {
  SampleSortConfig config;
  config.num_buckets = 4;
  // Already sorted.
  std::vector<double> ascending(5000);
  std::iota(ascending.begin(), ascending.end(), 0.0);
  const auto resorted = sample_sort(ascending, config);
  EXPECT_TRUE(std::is_sorted(resorted.begin(), resorted.end()));
  // Reverse sorted.
  std::vector<double> descending(ascending.rbegin(), ascending.rend());
  auto sorted = sample_sort(std::move(descending), config);
  EXPECT_EQ(sorted, ascending);
  // All equal keys (degenerate splitters).
  std::vector<double> equal(5000, 3.25);
  EXPECT_EQ(sample_sort(equal, config), equal);
}

TEST(SampleSort, TinyInputs) {
  SampleSortConfig config;
  config.num_buckets = 8;
  EXPECT_TRUE(sample_sort(std::vector<double>{}, config).empty());
  EXPECT_EQ(sample_sort(std::vector<double>{5.0}, config),
            (std::vector<double>{5.0}));
  EXPECT_EQ(sample_sort(std::vector<double>{2.0, 1.0}, config),
            (std::vector<double>{1.0, 2.0}));
}

TEST(SampleSort, IntegersSortToo) {
  util::Rng rng(2);
  std::vector<std::int64_t> data(10000);
  for (auto& v : data) v = rng.uniform_int(-1000, 1000);
  auto expected = data;
  std::sort(expected.begin(), expected.end());
  SampleSortConfig config;
  config.num_buckets = 5;
  EXPECT_EQ(sample_sort(std::move(data), config), expected);
}

TEST(SampleSort, StatsAreConsistent) {
  util::Rng rng(3);
  auto data = random_doubles(50000, rng);
  SampleSortConfig config;
  config.num_buckets = 10;
  SampleSortStats stats;
  const auto sorted = sample_sort(std::move(data), config, &stats);
  EXPECT_EQ(stats.n, 50000U);
  EXPECT_EQ(stats.num_buckets, 10U);
  EXPECT_EQ(stats.bucket_sizes.size(), 10U);
  std::size_t total = 0;
  for (const std::size_t b : stats.bucket_sizes) total += b;
  EXPECT_EQ(total, 50000U);
  EXPECT_EQ(stats.max_bucket,
            *std::max_element(stats.bucket_sizes.begin(),
                              stats.bucket_sizes.end()));
  EXPECT_GE(stats.max_over_expected, 1.0);
}

TEST(SampleSort, OversamplingKeepsBucketsNearEqual) {
  // With the paper's s = log²N, the largest bucket should stay within ~25 %
  // of N/p w.h.p. for this size.
  util::Rng rng(4);
  auto data = random_doubles(200000, rng);
  SampleSortConfig config;
  config.num_buckets = 16;
  SampleSortStats stats;
  (void)sample_sort(std::move(data), config, &stats);
  EXPECT_LT(stats.max_over_expected, 1.25);
}

TEST(SampleSort, ParallelMatchesSerial) {
  util::Rng rng(5);
  auto data = random_doubles(100000, rng);
  SampleSortConfig serial;
  serial.num_buckets = 8;
  const auto expected = sample_sort(data, serial);

  util::ThreadPool pool(2);
  SampleSortConfig parallel = serial;
  parallel.pool = &pool;
  EXPECT_EQ(sample_sort(std::move(data), parallel), expected);
}

TEST(SampleSort, DeterministicGivenSeed) {
  util::Rng rng(6);
  const auto data = random_doubles(10000, rng);
  SampleSortConfig config;
  config.num_buckets = 6;
  config.seed = 12345;
  SampleSortStats a;
  SampleSortStats b;
  (void)sample_sort(data, config, &a);
  (void)sample_sort(data, config, &b);
  EXPECT_EQ(a.bucket_sizes, b.bucket_sizes);
}

TEST(SampleSortHeterogeneous, SortsCorrectly) {
  util::Rng rng(7);
  auto data = random_doubles(30000, rng);
  auto expected = data;
  std::sort(expected.begin(), expected.end());
  SampleSortConfig config;
  EXPECT_EQ(sample_sort_heterogeneous(std::move(data), {1.0, 2.0, 4.0},
                                      config),
            expected);
}

TEST(SampleSortHeterogeneous, BucketsTrackSpeeds) {
  util::Rng rng(8);
  auto data = random_doubles(400000, rng);
  const std::vector<double> speeds{1.0, 3.0};
  SampleSortConfig config;
  SampleSortStats stats;
  (void)sample_sort_heterogeneous(std::move(data), speeds, config, &stats);
  ASSERT_EQ(stats.bucket_sizes.size(), 2U);
  const double share0 =
      static_cast<double>(stats.bucket_sizes[0]) / 400000.0;
  EXPECT_NEAR(share0, 0.25, 0.05);  // x₀ = 1/4
}

TEST(SampleSortHeterogeneous, BalancesModelTime) {
  // With speed-proportional buckets, bucket_size/speed should be nearly
  // equal across workers — the Section 3.2 claim.
  util::Rng rng(9);
  auto data = random_doubles(500000, rng);
  const std::vector<double> speeds{1.0, 2.0, 3.0, 6.0};
  SampleSortConfig config;
  SampleSortStats stats;
  (void)sample_sort_heterogeneous(std::move(data), speeds, config, &stats);
  std::vector<double> model_time;
  for (std::size_t i = 0; i < speeds.size(); ++i) {
    model_time.push_back(
        static_cast<double>(stats.bucket_sizes[i]) / speeds[i]);
  }
  const double t_max =
      *std::max_element(model_time.begin(), model_time.end());
  const double t_min =
      *std::min_element(model_time.begin(), model_time.end());
  EXPECT_LT((t_max - t_min) / t_min, 0.15);
}

// Property sweep over input distributions: output sorted and a permutation
// of the input.
class SampleSortProperty : public ::testing::TestWithParam<int> {};

TEST_P(SampleSortProperty, SortedPermutation) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 977 + 1);
  std::vector<double> data(30000);
  switch (GetParam() % 4) {
    case 0:
      for (double& v : data) v = rng.uniform();
      break;
    case 1:
      for (double& v : data) v = rng.normal(0.0, 100.0);
      break;
    case 2:
      for (double& v : data) v = rng.lognormal(0.0, 2.0);
      break;
    default:
      // Heavily duplicated keys.
      for (double& v : data) {
        v = static_cast<double>(rng.uniform_int(0, 9));
      }
      break;
  }
  auto expected = data;
  std::sort(expected.begin(), expected.end());
  SampleSortConfig config;
  config.num_buckets =
      static_cast<std::size_t>(2 + GetParam() % 15);
  config.seed = static_cast<std::uint64_t>(GetParam());
  EXPECT_EQ(sample_sort(std::move(data), config), expected);
}

INSTANTIATE_TEST_SUITE_P(Distributions, SampleSortProperty,
                         ::testing::Range(0, 16));

}  // namespace
}  // namespace nldl::sort
