// Unit + property tests for the PERI-MAX column-based partitioner.
#include "partition/peri_max.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "util/assert.hpp"
#include "util/rng.hpp"

namespace nldl::partition {
namespace {

TEST(PeriMaxLowerBound, LargestAreaDominates) {
  // Normalized largest area 0.5 → bound 2·√0.5.
  EXPECT_NEAR(peri_max_lower_bound({1.0, 1.0}), 2.0 * std::sqrt(0.5), 1e-12);
  EXPECT_NEAR(peri_max_lower_bound({3.0, 1.0}), 2.0 * std::sqrt(0.75), 1e-12);
}

TEST(PeriMax, SingleProcessor) {
  const auto part = peri_max_partition({5.0});
  EXPECT_NEAR(part.max_half_perimeter, 2.0, 1e-12);
}

TEST(PeriMax, EqualAreasAreBalanced) {
  const auto part = peri_max_partition(std::vector<double>(4, 1.0));
  // Four quarter-squares: every half-perimeter is 1.
  EXPECT_NEAR(part.max_half_perimeter, 1.0, 1e-9);
}

TEST(PeriMax, RespectsLowerBound) {
  util::Rng rng(3);
  for (int rep = 0; rep < 20; ++rep) {
    std::vector<double> areas;
    const auto p = static_cast<std::size_t>(rng.uniform_int(2, 20));
    for (std::size_t i = 0; i < p; ++i) {
      areas.push_back(rng.lognormal(0.0, 1.0));
    }
    const auto part = peri_max_partition(areas);
    EXPECT_GE(part.max_half_perimeter,
              peri_max_lower_bound(areas) - 1e-9);
  }
}

TEST(PeriMax, NeverWorseThanPeriSumOnMaxObjective) {
  // peri_sum optimizes the sum; peri_max must do at least as well on the
  // max objective over the same column-structure space.
  util::Rng rng(4);
  for (int rep = 0; rep < 20; ++rep) {
    std::vector<double> areas;
    const auto p = static_cast<std::size_t>(rng.uniform_int(2, 25));
    for (std::size_t i = 0; i < p; ++i) {
      areas.push_back(rng.uniform(0.2, 5.0));
    }
    const auto by_max = peri_max_partition(areas);
    const auto by_sum = peri_sum_partition(areas);
    EXPECT_LE(by_max.max_half_perimeter,
              by_sum.max_half_perimeter + 1e-9);
  }
}

TEST(PeriMax, AreasAreProportional) {
  const std::vector<double> areas{0.4, 0.1, 0.25, 0.25};
  const auto part = peri_max_partition(areas);
  for (std::size_t i = 0; i < areas.size(); ++i) {
    EXPECT_NEAR(part.rects[i].area(), areas[i], 1e-6);
  }
}

TEST(PeriMax, RejectsBadInput) {
  EXPECT_THROW((void)peri_max_partition({}), util::PreconditionError);
  EXPECT_THROW((void)peri_max_partition({0.0}), util::PreconditionError);
  EXPECT_THROW((void)peri_max_lower_bound({}), util::PreconditionError);
}

// Property: the heuristic stays within a modest constant of the lower
// bound across random instances (ref [41] proves ~2/√3 for PERI-MAX's
// column heuristic under mild conditions; we assert a loose 3×).
class PeriMaxProperty : public ::testing::TestWithParam<int> {};

TEST_P(PeriMaxProperty, WithinConstantOfLowerBound) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 101 + 5);
  std::vector<double> areas;
  const auto p = static_cast<std::size_t>(rng.uniform_int(2, 64));
  for (std::size_t i = 0; i < p; ++i) {
    areas.push_back(rng.lognormal(0.0, 1.0));
  }
  const auto part = peri_max_partition(areas);
  EXPECT_LE(part.max_half_perimeter,
            3.0 * peri_max_lower_bound(areas) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, PeriMaxProperty,
                         ::testing::Range(0, 15));

}  // namespace
}  // namespace nldl::partition
